"""A1 (extension) -- incremental site maintenance vs rebuild-from-scratch.

Section 7 lists "computing incremental updates of site graphs" as an
open problem the prototype sidestepped by full recomputation.  Our
:class:`~repro.core.maintenance.SiteMaintainer` implements
insert-maintenance with safe fallbacks; this bench quantifies the win
over the prototype's behaviour for the common update kinds, and shows
the honest fallback costs.

Expected shape: seeded updates cost orders of magnitude less than a full
rebuild and are independent of site size; nested/path matches degrade to
single-query recomputes; deletions and negation pay the full price.
"""

import time

import pytest

from repro.core import SiteMaintainer
from repro.graph import integer, string
from repro.struql import evaluate, parse
from repro.workloads import NEWS_SITE_QUERY, bibliography_graph, news_graph

FLAT_NEWS_QUERY = """
create FrontPage()
where Articles(a), a -> "headline" -> h
create ArticlePage(a)
link ArticlePage(a) -> "headline" -> h, FrontPage() -> "Story" -> ArticlePage(a)
collect ArticlePages(ArticlePage(a))
where Articles(a), a -> "category" -> c
create CategoryPage(c)
link CategoryPage(c) -> "Name" -> c, CategoryPage(c) -> "Story" -> ArticlePage(a)
collect CategoryPages(CategoryPage(c))
"""


@pytest.mark.parametrize("articles", [100, 400])
def test_a1_update_cost(report, benchmark, articles):
    data = news_graph(articles, seed=61)
    program = parse(FLAT_NEWS_QUERY)

    start = time.perf_counter()
    maintainer = SiteMaintainer(program, data)
    initial_build = time.perf_counter() - start

    # seeded update: one new article object
    start = time.perf_counter()
    maintainer.add_object(
        "Articles",
        [("headline", string("Breaking story")), ("category", string("world")),
         ("date", string("1998-06-01"))],
    )
    seeded_time = time.perf_counter() - start
    seeded_report = maintainer.last_report

    # full rebuild for comparison (what the prototype always did)
    start = time.perf_counter()
    evaluate(program, maintainer.data_graph)
    rebuild_time = time.perf_counter() - start

    # deletion: forced rebuild
    member = maintainer.data_graph.collection("Articles")[0]
    target = maintainer.data_graph.attribute(member, "headline")
    start = time.perf_counter()
    maintainer.remove_edge(member, "headline", target)
    deletion_time = time.perf_counter() - start

    rows = [
        {"operation": "initial materialization", "seconds": round(initial_build, 4),
         "disposition": "n/a"},
        {"operation": "insert article (incremental)",
         "seconds": round(seeded_time, 5),
         "disposition": f"{seeded_report.queries_seeded} seeded, "
                        f"{seeded_report.queries_skipped} skipped"},
        {"operation": "insert article (prototype: full rebuild)",
         "seconds": round(rebuild_time, 4), "disposition": "rebuild"},
        {"operation": "delete edge (falls back to rebuild)",
         "seconds": round(deletion_time, 4), "disposition": "rebuild"},
    ]
    report(f"A1_maintenance_{articles}_articles", rows,
           note="Insert maintenance is delta-seeded; deletions and negation "
                "honestly pay the prototype's full-recompute price.")
    assert seeded_time < rebuild_time / 3
    assert seeded_report.full_rebuilds == 0

    benchmark.pedantic(
        lambda: maintainer.add_object(
            "Articles", [("headline", string("another")),
                         ("category", string("sports"))]
        ),
        rounds=3, iterations=1,
    )


def test_a1_seeded_cost_is_size_independent(report, benchmark):
    """The seeded path's cost should not grow with the existing site."""
    times = {}
    for articles in (50, 400):
        data = news_graph(articles, seed=62)
        maintainer = SiteMaintainer(FLAT_NEWS_QUERY, data)
        start = time.perf_counter()
        for index in range(10):
            maintainer.add_object(
                "Articles",
                [("headline", string(f"story {index}")),
                 ("category", string("us"))],
            )
        times[articles] = (time.perf_counter() - start) / 10
    report(
        "A1_size_independence",
        [{"site articles": size, "seconds per insert": round(seconds, 5)}
         for size, seconds in times.items()],
        note="Per-insert cost should be flat across site sizes "
             "(index lookups, not scans).",
    )
    assert times[400] < times[50] * 8  # generous bound for noise

    data = news_graph(100, seed=63)
    maintainer = SiteMaintainer(FLAT_NEWS_QUERY, data)
    benchmark.pedantic(
        lambda: maintainer.add_object(
            "Articles", [("headline", string("benchmarked"))]
        ),
        rounds=5, iterations=1,
    )
