"""A2 (extension) -- the click-time page server vs static pre-generation.

Section 7: dynamic sites were served by "often large sets of loosely
related CGI programs"; Strudel's promise was to generate those pages
from the same declarative definition.  :class:`~repro.core.PageServer`
does exactly that.  This bench measures:

* time-to-first-page (server) vs time-to-generate-everything (static);
* per-request latency as a session proceeds (caching effects);
* how little of the site a short session materializes.
"""

import random
import time

import pytest

from repro.core import PageServer
from repro.struql import evaluate, parse
from repro.template import generate_site
from repro.workloads import NEWS_SITE_QUERY, news_graph, news_templates


@pytest.mark.parametrize("articles", [100, 400])
def test_a2_first_page_latency(report, benchmark, articles):
    data = news_graph(articles, seed=71)
    program = parse(NEWS_SITE_QUERY)

    start = time.perf_counter()
    server = PageServer(program, data, news_templates())
    first_page = server.get("/")
    first_page_time = time.perf_counter() - start

    start = time.perf_counter()
    site_graph = evaluate(program, data)
    static = generate_site(site_graph, news_templates(), ["FrontPage()"])
    static_time = time.perf_counter() - start

    # a 15-request session
    rng = random.Random(0)
    request_times = []
    path = "/"
    for _ in range(15):
        links = [l for l in server.links_of(path)]
        start = time.perf_counter()
        if links:
            path = rng.choice(links)
        server.get(path)
        request_times.append(time.perf_counter() - start)

    total_instances = sum(
        len(server.dynamic.instances_of(f))
        for f in server.dynamic.schema.functions
    )
    rows = [
        {"metric": "time to first page (dynamic server)",
         "value": f"{first_page_time:.4f} s"},
        {"metric": "time to generate the whole site statically",
         "value": f"{static_time:.4f} s ({static.page_count} pages)"},
        {"metric": "mean request latency over a 15-click session",
         "value": f"{1e3 * sum(request_times) / len(request_times):.2f} ms"},
        {"metric": "site fraction materialized by the session",
         "value": f"{server.graph.expansions}/{total_instances} nodes"},
    ]
    report(f"A2_server_{articles}_articles", rows,
           note="The server touches only what is browsed; first-page "
                "latency is independent of site size.")
    assert first_page_time < static_time
    assert server.graph.expansions < total_instances

    benchmark.pedantic(lambda: server.get("/"), rounds=10, iterations=1)


def test_a2_warm_server_invalidation(report, json_report, benchmark):
    """After ``invalidate()`` the server keeps its warm engine: the next
    request re-runs incremental queries but plans are cache hits, vs the
    seed's behaviour of constructing a whole new DynamicSite (stats
    re-scan + re-planning) per invalidation."""
    from repro.repository import IndexStatistics
    from repro.struql import PlanCache, QueryEngine

    data = news_graph(200, seed=73)
    program = parse(NEWS_SITE_QUERY)
    templates = news_templates()

    cold_server = PageServer(program, data, templates)
    first = cold_server.get("/")

    def cold_cycle():
        # seed behaviour: the new DynamicSite's engine re-scans
        # statistics and starts with an empty plan cache
        cold_server.invalidate()
        cold_server.dynamic._engine = QueryEngine(
            data, stats=IndexStatistics.from_graph(data), plan_cache=PlanCache()
        )
        return cold_server.get("/")

    server = PageServer(program, data, templates)
    server.get("/")

    def warm_cycle():
        server.invalidate()
        return server.get("/")

    assert warm_cycle() == first  # invalidation preserves output
    assert cold_cycle() == first

    rounds = 5
    cold_time = min(_timed(cold_cycle) for _ in range(rounds))
    warm_time = min(_timed(warm_cycle) for _ in range(rounds))
    engine = server.dynamic._engine
    rows = [
        {"path": "invalidate + cold engine (seed behaviour)",
         "first page s": round(cold_time, 4)},
        {"path": "invalidate on a warm server",
         "first page s": round(warm_time, 4)},
    ]
    report("A2_warm_invalidation", rows,
           note="200-article site; each cycle drops cached expansions and "
                "re-serves the front page -- the warm server re-queries but "
                "does not re-plan or re-scan statistics.")
    json_report("A2", {
        "experiment": "A2 warm-server invalidation",
        "graph": {"nodes": data.node_count, "edges": data.edge_count},
        "rounds": rounds,
        "cold_first_page_s": round(cold_time, 6),
        "warm_first_page_s": round(warm_time, 6),
        "speedup": round(cold_time / max(warm_time, 1e-9), 2),
        "warm_plan_cache_hits": engine.metrics.plan_cache_hits,
        "warm_plan_cache_misses": engine.metrics.plan_cache_misses,
        "warm_stats_snapshots": engine.metrics.stats_snapshots,
    })
    assert engine.metrics.plan_cache_hits > 0
    benchmark.pedantic(warm_cycle, rounds=3, iterations=1)


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_a2_served_pages_match_static(report, benchmark):
    """Correctness contract at bench scale: every served page equals the
    statically generated page for the same object."""
    data = news_graph(80, seed=72)
    program = parse(NEWS_SITE_QUERY)
    server = PageServer(program, data, news_templates())
    static = generate_site(
        evaluate(program, data), news_templates(), ["FrontPage()"]
    )

    def normalize(html):
        return html.replace('href="/"', 'href="index.html"').replace(
            'href="/', 'href="'
        )

    checked = 0
    mismatches = 0
    frontier = ["/"]
    seen = set()
    while frontier and checked < 40:
        path = frontier.pop(0)
        if path in seen:
            continue
        seen.add(path)
        html = server.get(path)
        static_name = "index.html" if path == "/" else path.lstrip("/")
        if static_name in static.pages:
            checked += 1
            if normalize(html) != static.pages[static_name]:
                mismatches += 1
        frontier.extend(server.links_of(path))
    report(
        "A2_server_correctness",
        [{"pages compared": checked, "mismatches": mismatches}],
        note="Dynamic pages must be byte-identical to static generation "
             "(modulo URL prefix).",
    )
    assert checked >= 20
    assert mismatches == 0
    benchmark.pedantic(lambda: server.get("/"), rounds=3, iterations=1)
