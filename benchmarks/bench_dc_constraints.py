"""DC -- delta-driven incremental data-constraint checking.

A declared constraint set is cheap to check once, but a live site
re-ingests continuously (the paper's AT&T and CNN sites), and re-running
every check after every edit makes the constraint layer the bottleneck.
The :class:`~repro.constraints.IncrementalChecker` records what each
verdict read and, on a warm graph, re-checks only the subjects the
delta touched.

This bench builds a bibliography site, declares a mixed constraint set
(required / range / exclusive), then measures:

* the cold full check over every (constraint, member) pair;
* a 1-edge edit followed by an incremental re-check.

Expected shape: the re-check cost is proportional to the delta (one
subject re-verified, everything else skipped), and the incremental
verdicts are identical to a fresh full check.
"""

import os
import time

from repro.constraints import (
    CheckCounters,
    IncrementalChecker,
    parse_constraints,
)
from repro.graph.values import integer
from repro.workloads.bibliography import bibliography_graph

#: CI runs the bench at a tiny size (fail-on-crash smoke); locally the
#: default reproduces the committed BENCH_DC.json numbers.
DC_ARTICLES = int(os.environ.get("DC_ARTICLES", "400"))

RULES = """
on Publications {
  required title
  range year 1900 2100
  exclusive postscript
}
"""


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_dc_incremental_recheck_scales_with_delta(report, json_report, benchmark):
    graph = bibliography_graph(DC_ARTICLES, seed=11)
    cset = parse_constraints(RULES, "bench.dc")
    assert cset.ok

    counters = CheckCounters()
    inc = IncrementalChecker(graph, cset, counters)
    full_time = _timed(inc.full_check)
    total = inc.subject_count

    # the 1-edge edit: one publication gains an out-of-range year
    target = sorted(
        graph.collection("Publications"), key=lambda o: o.name
    )[DC_ARTICLES // 2]
    graph.add_edge(target, "year", integer(1897))

    recheck_time = _timed(inc.recheck)
    rechecked = inc.last_rechecked
    skipped = inc.last_skipped

    # a fresh checker must agree with the incrementally maintained one
    fresh = IncrementalChecker(graph, cset)
    fresh_full_time = _timed(fresh.full_check)
    assert inc.verdicts() == fresh.verdicts()
    assert counters.coarse_fallbacks == 0
    # only the delta-touched subject was re-verified
    assert rechecked == 1
    assert skipped == total - 1
    assert any(
        v.subject == target and v.constraint.kind == "range"
        for v in inc.violations()
    )

    speedup = fresh_full_time / max(recheck_time, 1e-9)
    if DC_ARTICLES >= 200:  # tiny CI sizes only smoke-test for crashes
        assert speedup >= 5.0

    rows = [
        {"pass": "cold full check", "seconds": round(full_time, 4),
         "subjects checked": total},
        {"pass": "full re-check after edit", "seconds": round(fresh_full_time, 4),
         "subjects checked": total},
        {"pass": "incremental re-check after edit",
         "seconds": round(recheck_time, 4), "subjects checked": rechecked},
    ]
    report("DC_incremental_recheck", rows,
           note=f"1-edge edit to a {DC_ARTICLES}-article site "
                f"({total} constraint subjects); speedup {speedup:.1f}x "
                f"over a full re-check.")
    json_report("DC", {
        "experiment": "DC incremental constraint re-check after a 1-edge edit",
        "articles": DC_ARTICLES,
        "constraints": [str(c) for c in cset],
        "subjects": total,
        "edit": "one out-of-range year edge added to one publication",
        "full_check_s": round(full_time, 6),
        "full_recheck_s": round(fresh_full_time, 6),
        "incremental_recheck_s": round(recheck_time, 6),
        "speedup": round(speedup, 2),
        "rechecked": rechecked,
        "skipped": skipped,
        "counters": counters.as_dict(),
    })
    benchmark.pedantic(inc.recheck, rounds=1, iterations=1)
