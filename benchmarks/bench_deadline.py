"""Deadline-check overhead on the warm E5 optimizer workload.

The robustness PR threads a request-scoped deadline through every
evaluation layer; the hot-loop form (:meth:`Deadline.tick`) is one
integer increment and a mask, with a clock read every 1024 ticks.  This
bench proves the tax is negligible: the warm E5 query suite under a
far-future ambient deadline must run within 3% of the same suite with
no deadline installed.

Min-of-runs on both sides filters scheduler noise; both measurements
reuse one warm engine (plan cache + statistics snapshot hot), so the
only difference between the two timings is the deadline plumbing.
"""

import time

from repro.resilience import Deadline, deadline_scope
from repro.struql import QueryEngine, parse_query
from repro.workloads import build_mediator

QUERY_SUITE = [
    ("collection scan + copy", "where People(p), p -> l -> v"),
    ("selective value lookup",
     'where People(p), p -> "dept" -> g, g = "d0", p -> "name" -> n'),
    ("join people-departments",
     'where Departments(d), d -> "directorPerson" -> p, p -> "name" -> n'),
    ("path reachability",
     'where Departments(d), d -> * -> v, isPostScript(v)'),
    ("arc-variable join",
     'where Projects(j), j -> "memberPerson" -> p, p -> l -> v'),
]

RUNS = 9
FAR_FUTURE = 3600.0
OVERHEAD_GATE = 0.03


def _suite_once(engine, queries):
    rows_total = 0
    for _, conditions in queries:
        rows_total += len(engine.bindings(conditions))
    return rows_total


def _min_of_runs(engine, queries, runs=RUNS):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        _suite_once(engine, queries)
        best = min(best, time.perf_counter() - start)
    return best


def test_deadline_overhead_on_warm_e5(report, json_report):
    graph = build_mediator(people=200, seed=13).materialize()
    engine = QueryEngine(graph)
    queries = [
        (name, parse_query(text + " create Probe()").where)
        for name, text in QUERY_SUITE
    ]
    expected = _suite_once(engine, queries)  # warm plans, indexes, stats
    assert expected > 0

    baseline = _min_of_runs(engine, queries)
    with deadline_scope(Deadline(FAR_FUTURE)):
        under_deadline = _min_of_runs(engine, queries)
        assert _suite_once(engine, queries) == expected  # same answers

    overhead = (under_deadline - baseline) / baseline
    rows = [
        {
            "suite": "E5 (warm, 5 queries)",
            "no deadline ms": round(baseline * 1e3, 3),
            "far-future deadline ms": round(under_deadline * 1e3, 3),
            "overhead %": round(overhead * 100, 2),
            "gate %": OVERHEAD_GATE * 100,
        }
    ]
    report("DEADLINE_overhead", rows,
           note="min of %d runs per side; identical warm engine, the only "
                "delta is the ambient-deadline plumbing." % RUNS)
    json_report("DEADLINE_overhead", {
        "baseline_s": baseline,
        "under_deadline_s": under_deadline,
        "overhead": overhead,
        "gate": OVERHEAD_GATE,
    })

    if overhead > OVERHEAD_GATE:
        # one re-measure before failing: a single scheduler hiccup on a
        # shared CI box should not fail the build
        baseline = _min_of_runs(engine, queries)
        with deadline_scope(Deadline(FAR_FUTURE)):
            under_deadline = _min_of_runs(engine, queries)
        overhead = (under_deadline - baseline) / baseline
    assert overhead <= OVERHEAD_GATE, (
        f"deadline checks cost {overhead * 100:.2f}% on the warm E5 suite "
        f"(gate {OVERHEAD_GATE * 100:.0f}%)"
    )
