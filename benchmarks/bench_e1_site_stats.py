"""E1 -- section 5.1 site statistics ("Table 1" of the experience report).

The paper reports, per site: query lines, number of templates, template
lines, and scale (people / articles / pages).  We rebuild each site shape
with synthetic data at the paper's scale and print our measurements next
to the reported ones.

Paper-reported values:

=================  ===========  =========  ==============  =======
site               query lines  templates  template lines  scale
AT&T internal      115          17         380             ~400 people, 5 sources
AT&T external      +0           5 changed  --              same site graph
mff homepage       48           13         202             2 sources
CNN demo           44           9          --              ~300 articles
=================  ===========  =========  ==============  =======
"""

import pytest

from repro import SiteBuilder, SiteDefinition
from repro.workloads import (
    HOMEPAGE_QUERY,
    NEWS_SITE_QUERY,
    bibliography_graph,
    build_mediator,
    homepage_templates,
    news_graph,
    news_templates,
)

# import the example org-site definition (shared shape)
import importlib.util
import os

_ORG = os.path.join(os.path.dirname(__file__), os.pardir, "examples", "org_site.py")
_spec = importlib.util.spec_from_file_location("org_site_example", _ORG)
org_site = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(org_site)

PAPER_ROWS = [
    {"site": "AT&T internal (paper)", "query lines": 115, "link clauses": "n/a",
     "templates": 17, "template lines": 380, "pages": "~420", "sources": 5},
    {"site": "mff homepage (paper)", "query lines": 48, "link clauses": "n/a",
     "templates": 13, "template lines": 202, "pages": "n/a", "sources": 2},
    {"site": "CNN demo (paper)", "query lines": 44, "link clauses": "n/a",
     "templates": 9, "template lines": "n/a", "pages": "~300 articles", "sources": 1},
]


def _build_org(people: int):
    mediator = build_mediator(people=people, seed=5)
    data = mediator.materialize()
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition(
            "AT&T-shape internal", org_site.ORG_SITE_QUERY,
            org_site.build_templates(org_site.INTERNAL_PERSON),
            roots=["OrgRoot()"],
        )
    )
    return builder.build("AT&T-shape internal"), len(mediator.last_report.source_sizes)


def _build_homepage(publications: int):
    data = bibliography_graph(publications, seed=7)
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition("mff-shape homepage", HOMEPAGE_QUERY,
                       homepage_templates(), roots=["RootPage()"])
    )
    return builder.build("mff-shape homepage"), 2


def _build_news(articles: int):
    data = news_graph(articles, seed=7)
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition("CNN-shape demo", NEWS_SITE_QUERY,
                       news_templates(), roots=["FrontPage()"])
    )
    return builder.build("CNN-shape demo"), 1


@pytest.mark.parametrize(
    "label, build, scale",
    [
        ("org", _build_org, 400),
        ("homepage", _build_homepage, 40),
        ("news", _build_news, 300),
    ],
    ids=["att-internal-400-people", "mff-homepage", "cnn-300-articles"],
)
def test_e1_site_statistics(benchmark, report, label, build, scale):
    built, sources = benchmark.pedantic(build, args=(scale,), rounds=1, iterations=1)
    measured = built.stats(sources=sources).as_row()
    measured["site"] = f"{measured['site']} (ours)"
    report(f"E1_{label}", PAPER_ROWS + [measured],
           note="Shape check: our query/template sizes should sit in the same "
                "range as the paper's; absolute page counts depend on the "
                "synthetic data.")
    assert built.generated.page_count > 0
    assert built.generated.dangling_links() == []
