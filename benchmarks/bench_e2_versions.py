"""E2 -- the multiple-versions economy (sections 5.1 / 6.1).

Paper claims:

* AT&T external site: "no new queries were written for that site ...
  only five HTML template files differ" (we use a smaller template set,
  so ours differs in one of five);
* CNN sports-only: the query "only differs in two extra predicates in
  one where clause; both sites use the same templates";
* template-only versions share one site graph, so re-rendering a new
  version is much cheaper than rebuilding from the data.
"""

import importlib.util
import os

import pytest

from repro import SiteBuilder, SiteDefinition, derive_version, diff_definitions
from repro.workloads import (
    NEWS_SITE_QUERY,
    SPORTS_SITE_QUERY,
    build_mediator,
    news_graph,
    news_templates,
)

_ORG = os.path.join(os.path.dirname(__file__), os.pardir, "examples", "org_site.py")
_spec = importlib.util.spec_from_file_location("org_site_example_e2", _ORG)
org_site = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(org_site)

PAPER_ROWS = [
    {"derivation": "AT&T internal -> external (paper)",
     "query lines +": 0, "templates changed": "5 of 17", "templates shared": 12},
    {"derivation": "CNN general -> sports-only (paper)",
     "query lines +": "2 predicates / 1 clause", "templates changed": 0,
     "templates shared": 9},
]


def test_e2_org_external_version(benchmark, report):
    data = build_mediator(people=150, seed=5).materialize()
    builder = SiteBuilder(data)
    internal = builder.define(
        SiteDefinition("internal", org_site.ORG_SITE_QUERY,
                       org_site.build_templates(org_site.INTERNAL_PERSON),
                       roots=["OrgRoot()"])
    )
    external = builder.define(
        derive_version(internal, "external",
                       template_overrides={"person": org_site.EXTERNAL_PERSON})
    )
    site_graph = builder.site_graph("internal")

    def rebuild_from_data():
        return builder.build("internal")

    def rerender_only():
        return builder.build("external", site_graph=site_graph)

    rerendered = benchmark.pedantic(rerender_only, rounds=3, iterations=1)
    diff = diff_definitions(internal, external)
    measured = diff.as_row()
    measured["derivation"] = "AT&T-shape internal -> external (ours)"
    measured["templates changed"] = f"{diff.templates_changed} of " \
        f"{diff.templates_changed + diff.templates_shared}"
    report("E2_versions_org", PAPER_ROWS + [measured],
           note="0 new query lines, template-only delta: matches the paper.")
    assert diff.query_lines_added == 0
    assert rerendered.generated.page_count > 0


def test_e2_news_sports_version(report, benchmark):
    data = news_graph(150, seed=5)
    builder = SiteBuilder(data)
    general = builder.define(
        SiteDefinition("news", NEWS_SITE_QUERY, news_templates(),
                       roots=["FrontPage()"])
    )
    sports = builder.define(
        derive_version(general, "sports", query=SPORTS_SITE_QUERY)
    )
    built_sports = benchmark.pedantic(
        lambda: builder.build("sports"), rounds=1, iterations=1
    )
    diff = diff_definitions(general, sports)
    measured = diff.as_row()
    measured["derivation"] = "CNN-shape general -> sports-only (ours)"
    report("E2_versions_news", PAPER_ROWS + [measured],
           note="One where clause changed (two extra predicates), all nine "
                "templates shared: matches the paper.")
    assert diff.query_lines_added == 1 and diff.query_lines_removed == 1
    assert diff.templates_changed == 0
    assert built_sports.generated.page_count > 0


def test_e2_rerender_cheaper_than_rebuild(report, benchmark):
    import time

    data = build_mediator(people=150, seed=5).materialize()
    builder = SiteBuilder(data)
    internal = builder.define(
        SiteDefinition("internal", org_site.ORG_SITE_QUERY,
                       org_site.build_templates(org_site.INTERNAL_PERSON),
                       roots=["OrgRoot()"])
    )
    builder.define(
        derive_version(internal, "external",
                       template_overrides={"person": org_site.EXTERNAL_PERSON})
    )
    start = time.perf_counter()
    builder.build("internal")
    full = time.perf_counter() - start
    site_graph = builder.site_graph("internal")
    start = time.perf_counter()
    benchmark.pedantic(
        lambda: builder.build("external", site_graph=site_graph),
        rounds=1, iterations=1,
    )
    rerender = time.perf_counter() - start
    report(
        "E2_rerender_cost",
        [
            {"path": "full rebuild (query + render)", "seconds": round(full, 4)},
            {"path": "re-render shared site graph", "seconds": round(rerender, 4)},
        ],
        note="Template-only versions skip query evaluation entirely.",
    )
    assert rerender < full
