"""E3 -- Fig. 8: which authoring technology suits which site?

Fig. 8 plots sites on (amount of data x structural complexity) and
claims: WYSIWYG/static tools fit small-and-simple, DB-with-web-interface
fits large-data-simple-structure, and Strudel fits the large-data /
complex-structure corner.  "One possible measure of structural
complexity is the number of link clauses in the site-definition query."

We regenerate the figure as a grid: for each (items N, features K) cell
we compute the *specification size* a site builder must write and
maintain under each technology (the same site, same page set -- see
repro.baselines.family), and mark the cell's winner.  Expected shape:

* static HTML wins only the tiny corner (its spec grows with N*K);
* DB-template and Strudel are close at low K;
* Strudel wins as K grows (group templates and link clauses are shared
  declaratively, while procedural/page-embedded code grows per feature).

A generation-time comparison at the heavy corner is benchmarked too.
"""

import pytest

from repro.baselines import (
    dbtemplate_spec_lines,
    family_graph,
    procedural_spec_lines,
    run_dbtemplate,
    run_procedural,
    run_strudel,
    static_html_lines,
    strudel_spec_lines,
)
from repro.baselines.family import SETUP_OVERHEAD

DATA_SIZES = [5, 100, 1000]
COMPLEXITIES = [1, 4, 8, 16]


def test_e3_fig8_grid(report, benchmark):
    rows = []
    for items in DATA_SIZES:
        for features in COMPLEXITIES:
            graph = family_graph(min(items, 120), features, seed=1)
            pages = run_strudel(graph, features)
            # static spec grows with the page set: extrapolate to full N
            scale = items / min(items, 120)
            specs = {
                "static HTML": int(static_html_lines(pages) * scale),
                "db-template": dbtemplate_spec_lines(features),
                "procedural": procedural_spec_lines(features),
                "strudel": strudel_spec_lines(features),
            }
            totals = {
                name: lines + SETUP_OVERHEAD[name] for name, lines in specs.items()
            }
            winner = min(totals, key=lambda name: totals[name])
            rows.append(
                {
                    "items": items,
                    "features (link-clause groups)": features,
                    **totals,
                    "winner": winner,
                }
            )
    report(
        "E3_fig8_spec_size_grid", rows,
        note="Total authored lines (setup substrate + site spec). Paper's "
             "Fig. 8 shape: static/WYSIWYG wins only the tiny corner; the "
             "DB-backed approach holds large-data/simple-structure; strudel "
             "wins once structure is complex, and its cost never depends on "
             "the data size.",
    )
    # Fig. 8 shape assertions: the three regions
    tiny = next(r for r in rows
                if r["items"] == 5 and r["features (link-clause groups)"] == 1)
    db_corner = next(r for r in rows
                     if r["items"] == 1000 and r["features (link-clause groups)"] == 1)
    heavy = next(r for r in rows
                 if r["items"] == 1000 and r["features (link-clause groups)"] == 16)
    assert tiny["winner"] == "static HTML"
    assert db_corner["winner"] in ("db-template", "strudel")
    assert heavy["winner"] == "strudel"
    # declarative beats procedural at every complexity level >= 4
    for row in rows:
        if row["features (link-clause groups)"] >= 4:
            assert row["strudel"] < row["procedural"]

    # generation-time comparison at a heavy cell
    graph = family_graph(300, 8, seed=2)
    strudel_pages = benchmark.pedantic(
        lambda: run_strudel(graph, 8), rounds=1, iterations=1
    )
    assert len(strudel_pages) == len(run_procedural(graph, 8))


def test_e3_generation_time_parity(report, benchmark):
    """Declarative evaluation is slower than hand-tuned procedural code,
    but stays within a practical factor (it is doing query evaluation)."""
    import time

    graph = family_graph(300, 6, seed=3)
    start = time.perf_counter()
    procedural_pages = run_procedural(graph, 6)
    procedural_time = time.perf_counter() - start
    start = time.perf_counter()
    dbtemplate_pages = run_dbtemplate(graph, 6)
    dbtemplate_time = time.perf_counter() - start
    start = time.perf_counter()
    strudel_pages = benchmark.pedantic(
        lambda: run_strudel(graph, 6), rounds=1, iterations=1
    )
    strudel_time = time.perf_counter() - start
    report(
        "E3_generation_time",
        [
            {"technology": "procedural", "seconds": round(procedural_time, 4),
             "pages": len(procedural_pages)},
            {"technology": "db-template", "seconds": round(dbtemplate_time, 4),
             "pages": len(dbtemplate_pages)},
            {"technology": "strudel", "seconds": round(strudel_time, 4),
             "pages": len(strudel_pages)},
        ],
        note="All three emit the same page set; strudel pays for generality.",
    )
    assert len(strudel_pages) == len(procedural_pages) == len(dbtemplate_pages)
