"""E4 -- the section 2.3 homepage pipeline: site-graph shape and scaling.

Fig. 4 of the paper shows the site graph generated from the bibliography
data graph: one RootPage and AbstractsPage, one PaperPresentation and
AbstractPage per publication, one YearPage per distinct year, one
CategoryPage per category.  We verify that shape and measure end-to-end
generation time as the bibliography grows (the paper reports no numbers;
the claim under test is that static generation is cheap at the paper's
scales and grows roughly linearly).
"""

import time

import pytest

from repro import SiteBuilder, SiteDefinition
from repro.struql import evaluate, parse
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph, homepage_templates

SIZES = [10, 50, 200, 500]


def _page_type_counts(site_graph):
    counts = {}
    for oid in site_graph.nodes():
        function = oid.name.split("(", 1)[0]
        counts[function] = counts.get(function, 0) + 1
    return counts


def test_e4_site_graph_shape(report, benchmark):
    data = bibliography_graph(100, seed=20)
    program = parse(HOMEPAGE_QUERY)
    site_graph = benchmark.pedantic(
        lambda: evaluate(program, data), rounds=3, iterations=1
    )
    counts = _page_type_counts(site_graph)
    distinct_years = {
        str(t) for _, t in data.edges_with_label("year")
    }
    distinct_categories = {
        str(t) for _, t in data.edges_with_label("category")
    }
    rows = [
        {"page type": "RootPage", "expected": 1, "measured": counts["RootPage"]},
        {"page type": "AbstractsPage", "expected": 1,
         "measured": counts["AbstractsPage"]},
        {"page type": "PaperPresentation", "expected": 100,
         "measured": counts["PaperPresentation"]},
        {"page type": "AbstractPage", "expected": 100,
         "measured": counts["AbstractPage"]},
        {"page type": "YearPage", "expected": len(distinct_years),
         "measured": counts["YearPage"]},
        {"page type": "CategoryPage", "expected": len(distinct_categories),
         "measured": counts["CategoryPage"]},
    ]
    report("E4_site_graph_shape", rows,
           note="Fig. 4 shape: one presentation+abstract page per "
                "publication, one page per distinct year/category.")
    for row in rows:
        assert row["expected"] == row["measured"], row


def test_e4_end_to_end_scaling(report, benchmark):
    rows = []
    for size in SIZES:
        data = bibliography_graph(size, seed=21)
        builder = SiteBuilder(data)
        builder.define(
            SiteDefinition("home", HOMEPAGE_QUERY, homepage_templates(),
                           roots=["RootPage()"])
        )
        start = time.perf_counter()
        site_graph = builder.site_graph("home")
        query_time = time.perf_counter() - start
        start = time.perf_counter()
        built = builder.build("home", site_graph=site_graph)
        render_time = time.perf_counter() - start
        rows.append(
            {
                "publications": size,
                "site nodes": site_graph.node_count,
                "site edges": site_graph.edge_count,
                "pages": built.generated.page_count,
                "query s": round(query_time, 3),
                "render s": round(render_time, 3),
            }
        )
    report("E4_homepage_scaling", rows,
           note="Both stages should grow roughly linearly in the number of "
                "publications (pages per pub is constant).")
    # roughly linear: 50x data should not cost more than ~250x time
    small = rows[0]
    large = rows[-1]
    data_factor = large["publications"] / small["publications"]
    time_factor = (large["query s"] + large["render s"]) / max(
        small["query s"] + small["render s"], 1e-9
    )
    assert time_factor < data_factor * 6
    # one more timed run for the benchmark table
    data = bibliography_graph(200, seed=22)
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition("home", HOMEPAGE_QUERY, homepage_templates(),
                       roots=["RootPage()"])
    )
    benchmark.pedantic(lambda: builder.build("home"), rounds=1, iterations=1)
