"""E5 -- the full-indexing / optimizer claim (section 2.1).

"Without schema information, we fully index both the schema and the
data ... Obviously, maintaining these indexes is expensive, but they
provide many benefits to our query language."

We compare the real evaluator (index lookups + greedy cost ordering)
against the ablation (written-order evaluation over full scans) on a
query suite over the mediated org-site data graph, reporting wall time
and edges examined.  The expected shape: indexes win by one to three
orders of magnitude on selective queries, and never lose.
"""

import gc
import os
import time

import pytest

from repro.repository import IndexStatistics
from repro.struql import PlanCache, QueryEngine, parse_query
from repro.workloads import bibliography_graph, build_mediator

QUERY_SUITE = [
    ("collection scan + copy", "where People(p), p -> l -> v"),
    ("selective value lookup",
     'where People(p), p -> "dept" -> g, g = "d0", p -> "name" -> n'),
    ("join people-departments",
     'where Departments(d), d -> "directorPerson" -> p, p -> "name" -> n'),
    ("path reachability",
     'where Departments(d), d -> * -> v, isPostScript(v)'),
    ("negation",
     'where Projects(j), not(j -> "sponsor" -> s)'),
    ("arc-variable join",
     'where Projects(j), j -> "memberPerson" -> p, p -> l -> v'),
]


@pytest.fixture(scope="module")
def data_graph():
    return build_mediator(people=200, seed=13).materialize()


def _run(graph, query_text, optimize, use_indexes):
    query = parse_query(query_text + " create Probe()")
    engine = QueryEngine(graph, optimize=optimize, use_indexes=use_indexes)
    start = time.perf_counter()
    rows = engine.bindings(query.where)
    elapsed = time.perf_counter() - start
    return rows, elapsed, engine.metrics.edges_examined


def test_e5_indexed_vs_naive(report, data_graph, benchmark):
    rows_out = []
    speedups = []
    for name, text in QUERY_SUITE:
        fast_rows, fast_time, fast_edges = _run(data_graph, text, True, True)
        slow_rows, slow_time, slow_edges = _run(data_graph, text, False, False)
        assert len(fast_rows) == len(slow_rows), name
        speedup = slow_time / max(fast_time, 1e-9)
        speedups.append(speedup)
        rows_out.append(
            {
                "query": name,
                "rows": len(fast_rows),
                "indexed ms": round(fast_time * 1e3, 2),
                "naive ms": round(slow_time * 1e3, 2),
                "speedup x": round(speedup, 1),
                "edges (indexed)": fast_edges,
                "edges (naive)": slow_edges,
            }
        )
    report("E5_optimizer_ablation", rows_out,
           note="Full indexing + cost ordering vs written-order full scans "
                "on the 5-source org data graph (200 people).")
    # indexes must win overall and never lose badly
    assert sum(speedups) / len(speedups) > 2.0
    assert all(s > 0.5 for s in speedups)

    # benchmark the indexed path on the most selective query
    benchmark.pedantic(
        lambda: _run(data_graph, QUERY_SUITE[1][1], True, True),
        rounds=5, iterations=1,
    )


def test_e5_warm_engine_speedup(report, json_report, data_graph, benchmark):
    """The query-engine fast path: repeated evaluation of the selective
    (click-shaped) E5 queries on an unchanged graph with one warm engine
    (epoch-cached statistics, compiled-plan and NFA caches hot) vs the
    seed's per-query cold construction (full statistics scan + fresh
    planning every time -- exactly what the click-time server used to
    pay per request).  The selective subset is the workload the fast
    path exists for: each query's evaluation is tiny, so per-query
    engine construction used to dominate the click.
    """
    selective = [QUERY_SUITE[1], QUERY_SUITE[2], QUERY_SUITE[4]]
    queries = [parse_query(text + " create Probe()") for _, text in selective]

    def cold_pass():
        results = []
        for query in queries:
            engine = QueryEngine(
                data_graph,
                stats=IndexStatistics.from_graph(data_graph),
                plan_cache=PlanCache(),
            )
            results.append(engine.bindings(query.where))
        return results

    warm_engine = QueryEngine(data_graph, plan_cache=PlanCache())

    def warm_pass():
        return [warm_engine.bindings(query.where) for query in queries]

    # correctness first: warm results must match cold results exactly
    cold_results = cold_pass()
    warm_pass()  # first warm run populates the caches
    warm_results = warm_pass()  # the steady state being measured
    for cold_rows, warm_rows in zip(cold_results, warm_results):
        assert cold_rows == warm_rows

    rounds = 5
    cold_time = min(_timed(cold_pass) for _ in range(rounds))
    warm_time = min(_timed(warm_pass) for _ in range(rounds))
    speedup = cold_time / max(warm_time, 1e-9)

    hits = warm_engine.metrics.plan_cache_hits
    misses = warm_engine.metrics.plan_cache_misses
    report(
        "E5_warm_engine",
        [{
            "pass": "cold (per-query engine, stats re-scan)",
            "suite ms": round(cold_time * 1e3, 2),
        }, {
            "pass": "warm (shared engine, hot caches)",
            "suite ms": round(warm_time * 1e3, 2),
        }, {
            "pass": f"speedup {speedup:.1f}x",
            "suite ms": f"plan cache {hits} hits / {misses} misses",
        }],
        note="Selective E5 queries over the 200-person org graph; the warm "
             "pass re-plans nothing because the graph epoch is unchanged.",
    )
    json_report("E5", {
        "experiment": "E5 warm-engine speedup",
        "graph": {"nodes": data_graph.node_count, "edges": data_graph.edge_count},
        "suite_queries": len(queries),
        "rounds": rounds,
        "cold_suite_s": round(cold_time, 6),
        "warm_suite_s": round(warm_time, 6),
        "speedup": round(speedup, 2),
        "warm_plan_cache_hits": hits,
        "warm_plan_cache_misses": misses,
        "warm_stats_snapshots": warm_engine.metrics.stats_snapshots,
    })
    assert speedup >= 3.0, f"warm engine only {speedup:.2f}x faster than cold"
    benchmark.pedantic(warm_pass, rounds=5, iterations=1)


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


#: binding passes of the E4 homepage workload (Fig. 3 root block and
#: nested blocks) plus a reachability query -- the shapes set-at-a-time
#: execution targets: wide frontiers, shared join keys, batched paths
BLOCKS_SUITE = [
    ("attribute copy", "where Publications(x), x -> l -> v"),
    ("year join", 'where Publications(x), x -> "year" -> y'),
    ("category join", 'where Publications(x), x -> "category" -> c'),
    ("same-year join",
     'where Publications(x), x -> "year" -> y, '
     'Publications(z), z -> "year" -> y'),
    ("same-category join",
     'where Publications(x), x -> "category" -> c, '
     'Publications(z), z -> "category" -> c'),
    ("selective same-year join",
     'where Publications(x), x -> "year" -> y, y = "1995", '
     'Publications(z), z -> "year" -> y'),
    ("co-author join",
     'where Publications(x), x -> "author" -> a, '
     'Publications(z), z -> "author" -> a'),
    ("path reachability", "where Publications(x), x -> * -> v"),
]

#: E5_PUBS scales the bibliography; CI smoke runs use a small value, the
#: full run (default 500, the largest E4 size) is where the speedup
#: floor is asserted
E5_PUBS = int(os.environ.get("E5_PUBS", "500"))


def test_e5_blocks_vs_rows(report, json_report, benchmark):
    """Set-at-a-time ablation: one warm engine per mode over the E4
    homepage-scaling bibliography.  Both modes have hot plan caches; the
    measured difference is purely block operators (distinct-key probing,
    hash joins, one batched path search per condition plus the
    reachability memo) vs extending one row at a time."""
    data = bibliography_graph(E5_PUBS, seed=21)
    queries = [parse_query(text + " create Probe()") for _, text in BLOCKS_SUITE]

    block_engine = QueryEngine(data, use_blocks=True, plan_cache=PlanCache())
    row_engine = QueryEngine(data, use_blocks=False, plan_cache=PlanCache())

    def block_pass():
        return [block_engine.bindings(query.where) for query in queries]

    def row_pass():
        return [row_engine.bindings(query.where) for query in queries]

    # correctness first: identical binding relations, rows and order
    block_results = block_pass()  # cold: populates plan + path memo
    row_results = row_pass()
    for name_text, blocks, rows in zip(BLOCKS_SUITE, block_results, row_results):
        assert blocks == rows, name_text[0]

    memo_hits_before = block_engine.metrics.path_memo_hits
    block_pass()  # warm: the reachability memo must serve this run
    warm_memo_hits = block_engine.metrics.path_memo_hits - memo_hits_before

    rounds = 3
    # measure with the collector off: the passes hold ~100k result
    # dicts, and generational GC pauses land arbitrarily across the
    # (short) block pass and the (long) row pass
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        block_time = min(_timed(block_pass) for _ in range(rounds))
        row_time = min(_timed(row_pass) for _ in range(rounds))
    finally:
        if gc_was_enabled:
            gc.enable()
    speedup = row_time / max(block_time, 1e-9)

    metrics = block_engine.metrics
    report(
        "E5_blocks_vs_rows",
        [{
            "pass": "row-at-a-time (use_blocks=False)",
            "suite ms": round(row_time * 1e3, 2),
        }, {
            "pass": "set-at-a-time (block operators)",
            "suite ms": round(block_time * 1e3, 2),
        }, {
            "pass": f"speedup {speedup:.1f}x",
            "suite ms": f"dedup {metrics.dedup_hits} / "
                        f"probes {metrics.hash_join_probes} / "
                        f"path memo {metrics.path_memo_hits}",
        }],
        note=f"E4 homepage workload binding passes over {E5_PUBS} "
             "publications; both engines warm, so the delta is execution "
             "strategy alone.",
    )
    json_report("E5_BLOCKS", {
        "experiment": "E5 set-at-a-time vs tuple-at-a-time ablation",
        "graph": {"nodes": data.node_count, "edges": data.edge_count},
        "publications": E5_PUBS,
        "suite_queries": len(queries),
        "rounds": rounds,
        "row_suite_s": round(row_time, 6),
        "block_suite_s": round(block_time, 6),
        "speedup": round(speedup, 2),
        "dedup_hits": metrics.dedup_hits,
        "hash_join_probes": metrics.hash_join_probes,
        "path_memo_hits": metrics.path_memo_hits,
        "path_memo_misses": metrics.path_memo_misses,
        "warm_run_path_memo_hits": warm_memo_hits,
    })
    assert warm_memo_hits > 0, "warm run must be served by the path memo"
    if E5_PUBS >= 500:
        assert speedup >= 3.0, (
            f"block execution only {speedup:.2f}x faster than row-at-a-time"
        )
    benchmark.pedantic(block_pass, rounds=3, iterations=1)


def test_e5_index_maintenance_cost(report, data_graph, benchmark):
    """The flip side the paper concedes: "maintaining these indexes is
    expensive".  Measure raw edge-insertion throughput (all three indexes
    are updated per insertion)."""
    from repro.graph import Graph, string

    def build(n=3000):
        graph = Graph()
        nodes = [graph.add_node() for _ in range(100)]
        for index in range(n):
            graph.add_edge(nodes[index % 100], f"l{index % 7}", string(f"v{index}"))
        return graph

    graph = benchmark.pedantic(build, rounds=3, iterations=1)
    assert graph.edge_count == 3000
    report(
        "E5_index_maintenance",
        [{"operation": "add_edge (3 indexes maintained)", "count": 3000,
          "note": "see pytest-benchmark table for timing"}],
    )
