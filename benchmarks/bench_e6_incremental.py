"""E6 -- dynamic ("click time") site computation (sections 2.5 and 7).

The paper: full materialization "is feasible for sites whose data changes
infrequently, but is infeasible for sites that are updated frequently";
incremental queries computed per click are costly naively "because they
often recompute information derived for already browsed pages", so the
optimizations are result *caching* and *lookahead* prefetch.

We browse a news site with a random 30-click trace under four policies
and compare per-click latency against full materialization:

* naive: every click re-evaluates its incremental queries;
* cached: results memoized per (edge, instance);
* cached + lookahead: successors prefetched after each click;
* static: the whole site graph materialized up front (then clicks are
  free graph lookups).

Expected shape: naive is the slowest per click; caching wins on
revisits; lookahead converts most clicks into cache hits; one full
materialization costs many clicks' worth, so for short sessions over
fresh data the dynamic site wins -- the paper's motivation.
"""

import os
import random
import re
import time

import pytest

from repro.core import BrowseSession, DynamicSite, NodeInstance, PageServer
from repro.graph import string
from repro.struql import evaluate, parse
from repro.workloads import NEWS_SITE_QUERY, news_graph, news_templates

CLICKS = 30

#: CI runs the edit benchmark at a tiny size (fail-on-crash smoke);
#: locally the default reproduces the committed BENCH_E6.json numbers.
EDIT_ARTICLES = int(os.environ.get("E6_ARTICLES", "400"))


def _browse(site, clicks=CLICKS, seed=0):
    """A realistic trace: mostly forward clicks, ~30% returns to the
    front page (real users bounce back to hubs, which is what makes
    caching pay)."""
    session = BrowseSession(site)
    rng = random.Random(seed)
    front = NodeInstance("FrontPage", ())

    def chooser(candidates):
        if rng.random() < 0.3:
            return front
        return rng.choice(candidates)

    start = time.perf_counter()
    session.walk(front, chooser=chooser, clicks=clicks)
    return time.perf_counter() - start


@pytest.mark.parametrize("articles", [50, 300])
def test_e6_click_time_policies(report, benchmark, articles):
    data = news_graph(articles, seed=31)
    program = parse(NEWS_SITE_QUERY)

    naive = DynamicSite(program, data, cache=False, lookahead=False)
    naive_time = _browse(naive)

    cached = DynamicSite(program, data, cache=True, lookahead=False)
    cached_time = _browse(cached)

    lookahead = DynamicSite(program, data, cache=True, lookahead=True)
    lookahead_time = _browse(lookahead)

    start = time.perf_counter()
    site_graph = evaluate(program, data)
    materialize_time = time.perf_counter() - start
    # browsing the materialized graph: pure lookups
    start = time.perf_counter()
    rng = random.Random(0)
    from repro.graph import Oid

    current = Oid("FrontPage()")
    for _ in range(CLICKS):
        successors = [t for _, t in site_graph.out_edges(current)
                      if isinstance(t, Oid)]
        if not successors:
            break
        current = rng.choice(successors)
    static_browse_time = time.perf_counter() - start

    rows = [
        {"policy": "dynamic, naive", "total s": round(naive_time, 4),
         "per click ms": round(1e3 * naive_time / CLICKS, 2),
         "queries": naive.metrics.queries_evaluated,
         "cache hits": naive.metrics.cache_hits},
        {"policy": "dynamic, cached", "total s": round(cached_time, 4),
         "per click ms": round(1e3 * cached_time / CLICKS, 2),
         "queries": cached.metrics.queries_evaluated,
         "cache hits": cached.metrics.cache_hits},
        {"policy": "dynamic, cached+lookahead",
         "total s": round(lookahead_time, 4),
         "per click ms": round(1e3 * lookahead_time / CLICKS, 2),
         "queries": lookahead.metrics.queries_evaluated,
         "cache hits": lookahead.metrics.cache_hits},
        {"policy": "static (materialize once)",
         "total s": round(materialize_time + static_browse_time, 4),
         "per click ms": round(1e3 * static_browse_time / CLICKS, 4),
         "queries": "all up front", "cache hits": "n/a"},
    ]
    report(f"E6_click_time_{articles}_articles", rows,
           note=f"{CLICKS}-click random trace over a {articles}-article site.")

    assert cached.metrics.queries_evaluated <= naive.metrics.queries_evaluated
    assert lookahead.metrics.cache_hits > cached.metrics.cache_hits

    benchmark.pedantic(
        lambda: _browse(DynamicSite(program, data, cache=True, lookahead=True)),
        rounds=1, iterations=1,
    )


def test_e6_warm_engine_rebuild(report, json_report, benchmark):
    """Rebuilding an unchanged site with a warm engine: statistics come
    from the epoch cache and every plan is a cache hit, vs the seed's
    cold path that re-scanned and re-planned per build."""
    from repro.repository import IndexStatistics
    from repro.struql import Metrics, PlanCache, QueryEngine

    data = news_graph(300, seed=33)
    program = parse(NEWS_SITE_QUERY)

    def cold_build():
        engine = QueryEngine(
            data, stats=IndexStatistics.from_graph(data), plan_cache=PlanCache()
        )
        return evaluate(program, data, engine=engine)

    warm_engine = QueryEngine(data, plan_cache=PlanCache())

    def warm_build(metrics=None):
        return evaluate(program, data, engine=warm_engine, metrics=metrics)

    cold_graph = cold_build()
    warm_build()  # populate caches
    steady = Metrics()
    warm_graph = warm_build(metrics=steady)
    assert warm_graph.node_count == cold_graph.node_count
    assert warm_graph.edge_count == cold_graph.edge_count
    # the steady-state rebuild re-plans nothing and never re-scans
    assert steady.plan_cache_misses == 0
    assert steady.stats_snapshots <= 1  # first stats access of this Metrics
    assert steady.plan_cache_hits > 0

    rounds = 3
    cold_time = min(_timed(cold_build) for _ in range(rounds))
    warm_time = min(_timed(warm_build) for _ in range(rounds))
    rows = [
        {"pass": "cold build (stats re-scan + re-plan)",
         "seconds": round(cold_time, 4)},
        {"pass": "warm rebuild (hot caches)", "seconds": round(warm_time, 4)},
    ]
    report("E6_warm_rebuild", rows,
           note="300-article site graph rebuilt on an unchanged data graph.")
    json_report("E6_warm_rebuild", {
        "experiment": "E6 warm-engine site-graph rebuild",
        "graph": {"nodes": data.node_count, "edges": data.edge_count},
        "rounds": rounds,
        "cold_build_s": round(cold_time, 6),
        "warm_build_s": round(warm_time, 6),
        "speedup": round(cold_time / max(warm_time, 1e-9), 2),
        "steady_plan_cache_hits": steady.plan_cache_hits,
        "steady_plan_cache_misses": steady.plan_cache_misses,
    })
    benchmark.pedantic(warm_build, rounds=3, iterations=1)


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_e6_dynamic_avoids_full_materialization_cost(report, benchmark):
    """For a short session over a large, fresh site, click-time evaluation
    does less total work than materializing everything."""
    data = news_graph(600, seed=32)
    program = parse(NEWS_SITE_QUERY)
    start = time.perf_counter()
    evaluate(program, data)
    materialize_time = time.perf_counter() - start
    dynamic = DynamicSite(program, data, cache=True, lookahead=False)
    dynamic_time = benchmark.pedantic(
        lambda: _browse(dynamic, clicks=10), rounds=1, iterations=1
    )
    session_time = _browse(dynamic, clicks=10, seed=1)
    report(
        "E6_materialize_vs_session",
        [
            {"path": "materialize full site graph",
             "seconds": round(materialize_time, 4)},
            {"path": "10-click dynamic session (cached)",
             "seconds": round(session_time, 4)},
        ],
        note="600-article site: a short browse should be much cheaper than "
             "building the whole site.",
    )
    assert session_time < materialize_time


def _crawl(server):
    """Serve every reachable page once (breadth-first from the root)."""
    queue = ["/"]
    visited = set()
    while queue:
        path = queue.pop(0)
        if path in visited:
            continue
        visited.add(path)
        html = server.get(path)
        for href in re.findall(r'href="([^"]+)"', html):
            if href.startswith("/") and href not in visited:
                queue.append(href)
    return visited


def test_e6_warm_after_edit(report, json_report, benchmark):
    """The tentpole measurement: after a 1-edge edit to a warm site, the
    delta-driven :meth:`PageServer.refresh` drops only the expansions and
    pages whose recorded reads the delta touched, so restoring the fully
    warm state costs |delta| work.  The coarse baseline (the pre-existing
    :meth:`invalidate`) drops everything and re-renders the whole site."""
    articles = EDIT_ARTICLES
    data = news_graph(articles, seed=34)
    program = parse(NEWS_SITE_QUERY)
    server = PageServer(program, data, news_templates(), cache=True)
    _crawl(server)  # warm: every page rendered and cached
    paths = server.known_paths()

    target = sorted(data.collection("Articles"), key=lambda o: o.name)[articles // 2]
    data.add_edge(target, "headline", string("Updated: warm-after-edit probe"))

    # selective: delta-driven refresh, then re-serve every known page
    start = time.perf_counter()
    result = server.refresh()
    for path in paths:
        server.get(path)
    selective_time = time.perf_counter() - start
    selective_pages = {path: server.get(path) for path in paths}
    metrics = server.dynamic.metrics
    fine = metrics.fine_invalidations
    retained = metrics.entries_retained
    pages_invalidated = server.pages_invalidated
    pages_retained = server.pages_retained

    # coarse baseline: drop every cache, re-serve every known page
    start = time.perf_counter()
    server.invalidate()
    for path in paths:
        server.get(path)
    coarse_time = time.perf_counter() - start
    coarse_pages = {path: server.get(path) for path in paths}

    assert not result.coarse
    assert fine > 0 and retained > 0
    assert pages_invalidated > 0 and pages_retained > 0
    # the selectively refreshed site is byte-identical to a full re-render
    assert selective_pages == coarse_pages

    speedup = coarse_time / max(selective_time, 1e-9)
    if articles >= 200:  # tiny CI sizes only smoke-test for crashes
        assert speedup >= 5.0

    rows = [
        {"path": "coarse (invalidate + re-render all)",
         "seconds": round(coarse_time, 4),
         "pages re-rendered": len(paths)},
        {"path": "selective (refresh + re-serve all)",
         "seconds": round(selective_time, 4),
         "pages re-rendered": pages_invalidated},
    ]
    report("E6_warm_after_edit", rows,
           note=f"1-edge edit to a warm {articles}-article site "
                f"({len(paths)} pages); speedup {speedup:.1f}x.")
    json_report("E6", {
        "experiment": "E6 warm-after-edit: delta-driven selective refresh "
                      "vs coarse invalidation",
        "articles": articles,
        "pages": len(paths),
        "edit": "one headline edge added to one article",
        "coarse_s": round(coarse_time, 6),
        "selective_s": round(selective_time, 6),
        "speedup": round(speedup, 2),
        "fine_invalidations": fine,
        "entries_retained": retained,
        "pages_invalidated": pages_invalidated,
        "pages_retained": pages_retained,
        "refresh_delta_size": result.delta.size() if result.delta else 0,
    })
    benchmark.pedantic(server.refresh, rounds=1, iterations=1)
