"""E7 -- integrity-constraint verification (section 2.5).

Two checkers over the homepage and org sites:

* **static** verification on the site schema (sound, conservative --
  the paper's full entailment algorithm is in companion paper [14]);
* **exact** model checking on the materialized site graph (the oracle).

We report, per constraint: the static verdict, the exact outcome, and
both times.  The soundness contract is asserted: whatever the static
verifier proves must hold on every instance, and static verification
must be much cheaper than materialize-and-check (it never touches data).
"""

import time

import pytest

from repro.core import SiteSchema, Verdict, check, verify_static
from repro.struql import evaluate, parse
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph

CONSTRAINTS = [
    ("year pages hang off the root",
     'forall X (YearPage(X) => exists Y (RootPage(Y) and Y -> "YearPage" -> X))'),
    ("category pages hang off the root",
     'forall X (CategoryPage(X) => exists Y (RootPage(Y) and Y -> "CategoryPage" -> X))'),
    ("abstract pages listed on the abstracts page",
     'forall X (AbstractPage(X) => exists Y (AbstractsPage(Y) and Y -> "Abstract" -> X))'),
    ("abstract pages reachable from the root",
     "forall X (AbstractPage(X) => exists Y (RootPage(Y) and Y -> * -> X))"),
    ("presentations reachable from the root",
     "forall X (PaperPresentation(X) => exists Y (RootPage(Y) and Y -> * -> X))"),
    ("every presentation under a category page (FALSE in general)",
     "forall X (PaperPresentation(X) => exists Y (CategoryPage(Y) and Y -> * -> X))"),
    ("every presentation under a year page",
     'forall X (PaperPresentation(X) => exists Y (YearPage(Y) and Y -> "Paper" -> X))'),
]


def test_e7_static_vs_exact(report, benchmark):
    program = parse(HOMEPAGE_QUERY)
    schema = SiteSchema.from_program(program)
    data = bibliography_graph(120, seed=41, category_rate=0.8)
    start = time.perf_counter()
    site_graph = evaluate(program, data)
    materialize_time = time.perf_counter() - start

    rows = []
    static_total = 0.0
    exact_total = 0.0
    for name, constraint in CONSTRAINTS:
        start = time.perf_counter()
        verdict = verify_static(constraint, schema)
        static_time = time.perf_counter() - start
        static_total += static_time
        start = time.perf_counter()
        outcome = check(constraint, site_graph)
        exact_time = time.perf_counter() - start
        exact_total += exact_time
        rows.append(
            {
                "constraint": name,
                "static": verdict.value,
                "exact": "holds" if outcome.holds else "violated",
                "static ms": round(static_time * 1e3, 3),
                "exact ms": round(exact_time * 1e3, 2),
            }
        )
        # soundness: VERIFIED implies holds
        if verdict is Verdict.VERIFIED:
            assert outcome.holds, name
    report("E7_constraint_verification", rows,
           note=f"Static verification needs no data (materialization alone "
                f"took {materialize_time:.3f}s); it proves "
                f"{sum(1 for r in rows if r['static'] == 'verified')} of "
                f"{len(rows)} constraints and never claims a false one.")

    # the static pass proves a useful fraction and is far cheaper
    verified = sum(1 for row in rows if row["static"] == "verified")
    assert verified >= 4
    assert static_total < exact_total + materialize_time

    benchmark.pedantic(
        lambda: [verify_static(c, schema) for _, c in CONSTRAINTS],
        rounds=5, iterations=1,
    )


def test_e7_violations_reported_with_witness(report, benchmark):
    """Exact checking pinpoints the offending page (useful during the
    paper's iterative site development)."""
    program = parse(HOMEPAGE_QUERY)
    # low category rate ensures some paper lacks a category page
    data = bibliography_graph(60, seed=42, category_rate=0.5)
    site_graph = evaluate(program, data)
    constraint = (
        "forall X (PaperPresentation(X) => "
        "exists Y (CategoryPage(Y) and Y -> * -> X))"
    )
    result = benchmark.pedantic(
        lambda: check(constraint, site_graph), rounds=1, iterations=1
    )
    assert not result.holds
    assert result.witness is not None
    witness = result.witness["X"]
    report(
        "E7_violation_witness",
        [{"constraint": "presentation under category page",
          "holds": result.holds, "counterexample": witness.name}],
        note="The witness is a concrete page missing from every category.",
    )
