"""E8 -- semistructured vs. relational modelling (section 6.3).

The paper's argument: modelling Strudel's data relationally "would
require either building an artificial class hierarchy ... or
constructing a maximal schema, where each object has all attributes",
plus side tables for multi-valued attributes, and constant schema
migrations because "the data graph's schema changed frequently, e.g.
several attributes were added on-the-fly".

We encode the bibliography collection both ways across an irregularity
sweep (the optional-attribute rates) and report the relational costs the
graph model simply does not have: NULL padding, 1NF overflow tables, and
ALTER-TABLE migrations during iterative loading.
"""

import pytest

from repro.baselines import graph_model, maximal_schema
from repro.workloads import bibliography_graph, build_mediator

SWEEP = [
    ("fully regular", dict(month_rate=1.0, abstract_rate=1.0,
                           postscript_rate=1.0, url_rate=1.0, category_rate=1.0)),
    ("paper-like", dict(month_rate=0.5, abstract_rate=0.7,
                        postscript_rate=0.6, url_rate=0.3, category_rate=0.9)),
    ("sparse", dict(month_rate=0.2, abstract_rate=0.3,
                    postscript_rate=0.2, url_rate=0.1, category_rate=0.4)),
]


def test_e8_irregularity_sweep(report, benchmark):
    rows = []
    for name, rates in SWEEP:
        graph = bibliography_graph(200, seed=51, **rates)
        relational = maximal_schema(graph, "Publications")
        semistructured = graph_model(graph, "Publications")
        rows.append(
            {
                "workload": name,
                "columns (maximal schema)": len(relational.columns),
                "null %": round(100 * relational.null_fraction, 1),
                "overflow tables": len(relational.overflow_tables),
                "migrations (relational)": relational.schema_migrations,
                "migrations (graph)": semistructured.schema_migrations,
                "graph edges": semistructured.edges,
            }
        )
    report("E8_irregularity_sweep", rows,
           note="200 publications per row. The graph model stores only the "
                "edges that exist: no NULL padding, no 1NF side tables, no "
                "ALTER TABLE during iterative wrapper development.")
    regular, paper_like, sparse = rows
    assert regular["null %"] < paper_like["null %"] < sparse["null %"]
    assert all(row["migrations (graph)"] == 0 for row in rows)
    assert paper_like["overflow tables"] >= 1  # authors are multi-valued

    benchmark.pedantic(
        lambda: maximal_schema(bibliography_graph(200, seed=51), "Publications"),
        rounds=3, iterations=1,
    )


def test_e8_mediated_collections(report, benchmark):
    """The same comparison on the org-site's mediated collections -- the
    paper's actual AT&T data shape (projects missing synopsis/sponsor,
    people missing phones/photos)."""
    warehouse = benchmark.pedantic(
        lambda: build_mediator(people=150, seed=52).materialize(),
        rounds=1, iterations=1,
    )
    rows = []
    for collection in ("People", "Projects", "Publications"):
        relational = maximal_schema(warehouse, collection)
        rows.append(relational.as_row())
    report("E8_org_collections", rows,
           note="Mediated org-site collections encoded relationally; "
                "'type conflicts' counts columns mixing atomic kinds and "
                "object references.")
    projects = next(r for r in rows if r["collection"] == "Projects")
    assert projects["null %"] > 0  # synopsis/sponsor omissions
    people = next(r for r in rows if r["collection"] == "People")
    assert people["overflow tables"] >= 1  # project/publication refs
