"""SERVE -- the HTTP tier under Zipf click traffic.

The ROADMAP's production-scale question: what does the warm site serve
under concurrent load, and what does an edit cost while traffic is
flowing?  Three measurements over the homepage workload:

* **stepped concurrency**: requests/sec and p50/p95/p99 latency at
  increasing client counts (client = one OS process replaying keep-alive
  Zipf click sessions, so client turnaround happens off the server's
  GIL);
* **worker scaling**: the same 4-client load against 1 vs N pool
  workers.  Sessions include SERVE_THINK_MS of user think time between
  clicks; a keep-alive connection pins its worker through the pause, so
  one worker is bounded by 1/(think + service) while N workers overlap
  N clients' pauses;
* **refresh under load**: editor mutations submitted mid-traffic,
  reporting submit-to-publish propagation latency and confirming the
  request stream never degrades.

Knobs: SERVE_PUBS (site size), SERVE_LEVELS (comma-separated client
counts), SERVE_WORKERS (pool size), SERVE_SECONDS (per-level duration).
``--bench-json`` writes benchmarks/out/BENCH_SERVE.json.
"""

import os

from repro.serve import ServeCore, SiteServer
from repro.serve.traffic import run_load
from repro.workloads import HOMEPAGE_QUERY, bibliography_graph, homepage_templates

PUBS = int(os.environ.get("SERVE_PUBS", "120"))
LEVELS = [
    int(piece)
    for piece in os.environ.get("SERVE_LEVELS", "1,2,4,8").split(",")
    if piece.strip()
]
WORKERS = int(os.environ.get("SERVE_WORKERS", "4"))
SECONDS = float(os.environ.get("SERVE_SECONDS", "3.0"))
THINK_S = float(os.environ.get("SERVE_THINK_MS", "5.0")) / 1000.0


def _server(workers: int) -> SiteServer:
    data = bibliography_graph(PUBS, seed=71)
    core = ServeCore(HOMEPAGE_QUERY, data, homepage_templates())
    return SiteServer(core, workers=workers, admission_limit=256).start()


def _row(label, summary):
    return {
        "level": label,
        "requests": summary.requests,
        "errors": summary.errors,
        "rps": round(summary.rps, 1),
        "p50_ms": round(summary.p50_ms, 3),
        "p95_ms": round(summary.p95_ms, 3),
        "p99_ms": round(summary.p99_ms, 3),
    }


def test_serve_throughput_and_refresh(report, json_report):
    payload = {
        "site_pages": None,
        "workers": WORKERS,
        "duration_s": SECONDS,
        "think_ms": THINK_S * 1000.0,
        "concurrency_levels": [],
        "worker_scaling": {},
        "refresh_under_load": {},
    }

    # ---- stepped concurrency ------------------------------------- #
    server = _server(WORKERS)
    payload["site_pages"] = server.core.cache.current().page_count
    rows = []
    try:
        run_load(server.url, concurrency=2, duration=0.5, think_s=THINK_S)  # warmup
        for level in LEVELS:
            summary = run_load(
                server.url, concurrency=level, duration=SECONDS, seed=level * 100,
                think_s=THINK_S,
            )
            rows.append(_row(level, summary))
            payload["concurrency_levels"].append(summary.as_dict())
    finally:
        server.stop()
    report(
        f"SERVE_throughput_{PUBS}pubs_{WORKERS}workers",
        rows,
        note=f"{payload['site_pages']} pages warm; clients are separate "
             f"processes replaying Zipf(1.1) click sessions",
    )

    # ---- worker scaling: 1 vs N pool workers, same 4-client load -- #
    scaling_rows = []
    rps = {}
    for workers in (1, WORKERS):
        server = _server(workers)
        try:
            run_load(server.url, concurrency=2, duration=0.5, think_s=THINK_S)  # warmup
            summary = run_load(
                server.url, concurrency=4, duration=SECONDS, seed=4242,
                think_s=THINK_S,
            )
        finally:
            server.stop()
        rps[workers] = summary.rps
        scaling_rows.append(_row(f"{workers} worker(s)", summary))
        payload["worker_scaling"][str(workers)] = summary.as_dict()
    speedup = rps[WORKERS] / rps[1] if rps[1] else 0.0
    payload["worker_scaling"]["speedup"] = round(speedup, 2)
    report(
        f"SERVE_worker_scaling_{PUBS}pubs",
        scaling_rows,
        note=f"throughput scaling 1 -> {WORKERS} workers: {speedup:.2f}x "
             f"(> 1.5x expected: workers overlap client turnaround)",
    )

    # ---- refresh under load --------------------------------------- #
    import threading
    import time

    server = _server(WORKERS)
    try:
        refresher = server.refresher
        stop = threading.Event()
        tickets = []

        def _editor():
            index = 0
            while not stop.is_set():
                ticket = server.submit_edit(
                    lambda regen, i=index: regen.add_object(
                        "Publications",
                        [("title", f"Mid-load paper {i}"),
                         ("year", 1990 + (i % 9)),
                         ("author", "Load Editor"),
                         ("category", "web")],
                    )
                )
                tickets.append(ticket)
                ticket.wait(30)
                index += 1
                time.sleep(0.2)

        editor = threading.Thread(target=_editor)
        editor.start()
        summary = run_load(
            server.url, concurrency=4, duration=max(SECONDS, 2.0), seed=777,
            think_s=THINK_S,
        )
        stop.set()
        editor.join()
        propagation = sorted(
            t.propagation_s * 1000.0 for t in tickets if t.propagation_s
        )
        refresher_stats = refresher.stats()
    finally:
        server.stop()
    assert propagation, "no edits propagated during the load window"
    mean_ms = sum(propagation) / len(propagation)
    p95_ms = propagation[min(len(propagation) - 1, int(len(propagation) * 0.95))]
    payload["refresh_under_load"] = {
        "edits_applied": refresher_stats["edits_applied"],
        "propagation_ms": {
            "mean": round(mean_ms, 3),
            "p95": round(p95_ms, 3),
            "max": round(propagation[-1], 3),
        },
        "traffic": summary.as_dict(),
    }
    report(
        f"SERVE_refresh_under_load_{PUBS}pubs",
        [
            {"metric": "edits applied mid-load",
             "value": refresher_stats["edits_applied"]},
            {"metric": "edit propagation latency (submit -> publish)",
             "value": f"mean {mean_ms:.1f} ms, p95 {p95_ms:.1f} ms"},
            {"metric": "traffic while editing",
             "value": f"{summary.requests} requests, {summary.errors} errors, "
                      f"{summary.rps:.0f} rps, p95 {summary.p95_ms:.1f} ms"},
        ],
    )

    json_report("SERVE", payload)

    # sanity floors (not perf assertions): traffic flowed and scaled
    assert all(level["errors"] == 0 for level in payload["concurrency_levels"])
    assert summary.errors == 0
