"""SQL -- the SQLite edge-triple backend against the in-memory engine.

Two claims under test:

* **Latency parity at E4 scale.**  At 500 publications (the largest E4
  size) the warm conjunctive-query latency of the SQLite backend -- the
  STRUQL->SQL pushdown engine over the edge-triple schema -- stays
  within 3x of the warm in-memory engine on the same workload, while
  returning byte-identical binding relations.
* **Scale headroom.**  The SQLite backend builds and serves a 10x graph
  (5000 publications) directly from disk; the same workload runs
  against it without materializing the graph in memory.

Knobs: ``SQL_PUBS`` (default 500), ``SQL_PUBS_LARGE`` (default 10x),
``SQL_MAX_RATIO`` (default 3.0; the ratio gate is skipped below 200
publications, where fixed per-query overhead dominates and the engine
intentionally prefers the in-memory operators anyway).

Run with ``--bench-json`` to write ``benchmarks/out/BENCH_SQL.json``.
"""

import os
import statistics
import time

from repro.repository.sql import SqlRepository
from repro.struql import SqlQueryEngine, clear_plan_cache, make_engine, parse_query
from repro.struql.eval import QueryEngine
from repro.workloads import bibliography_graph

SQL_PUBS = int(os.environ.get("SQL_PUBS", "500"))
SQL_PUBS_LARGE = int(os.environ.get("SQL_PUBS_LARGE", str(SQL_PUBS * 10)))
SQL_MAX_RATIO = float(os.environ.get("SQL_MAX_RATIO", "3.0"))
_ROUNDS = 7

#: the conjunctive workload: membership, edge conditions, a value
#: probe, a range comparison, a join, and a predicate-filtered scan
QUERIES = [
    ("year_probe", 'where Publications(p), p -> "year" -> 1995'),
    (
        "year_range",
        'where Publications(p), p -> "year" -> y, y >= 1994, y < 1997',
    ),
    (
        "category_join",
        'where Publications(p), p -> "category" -> "web", '
        'p -> "author" -> a',
    ),
    (
        "typed_scan",
        "where Publications(p), p -> l -> v, isPostScript(v)",
    ),
]


def _warm_latency(engine, conditions):
    """Median warm latency: one priming run, then timed repetitions."""
    engine.bindings(conditions)
    samples = []
    for _ in range(_ROUNDS):
        start = time.perf_counter()
        rows = engine.bindings(conditions)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), rows


def test_sql_vs_memory_latency(report, json_report, tmp_path):
    mem = bibliography_graph(SQL_PUBS, seed=31)
    repository = SqlRepository(str(tmp_path / "repo"))
    start = time.perf_counter()
    repository.store("bib", mem)
    load_seconds = time.perf_counter() - start
    sql = repository.fetch("bib")

    rows = []
    ratios = []
    for name, text in QUERIES:
        conditions = parse_query(text).where
        clear_plan_cache()
        mem_engine = QueryEngine(mem)
        mem_seconds, mem_rows = _warm_latency(mem_engine, conditions)
        clear_plan_cache()
        sql_engine = make_engine(sql)
        sql_seconds, sql_rows = _warm_latency(sql_engine, conditions)
        assert isinstance(sql_engine, SqlQueryEngine)
        assert sql_rows == mem_rows, f"{name}: binding relations diverge"
        ratio = sql_seconds / max(mem_seconds, 1e-9)
        ratios.append(ratio)
        rows.append(
            {
                "query": name,
                "rows": len(mem_rows),
                "memory ms": round(mem_seconds * 1e3, 3),
                "sqlite ms": round(sql_seconds * 1e3, 3),
                "ratio": round(ratio, 2),
                "pushdowns": sql_engine.metrics.sql_pushdowns,
                "fallbacks": sql_engine.metrics.sql_fallbacks,
            }
        )

    report(
        "SQL_latency_vs_memory",
        rows,
        note=f"{SQL_PUBS} publications; bulk load {load_seconds:.3f}s, "
        f"db {repository.file_size()} bytes.  Warm medians of {_ROUNDS} "
        f"runs; identical binding relations asserted per query.",
    )

    payload = {
        "publications": SQL_PUBS,
        "bulk_load_seconds": round(load_seconds, 4),
        "db_file_bytes": repository.file_size(),
        "index_rows": repository.index_row_counts(),
        "queries": rows,
        "max_ratio_gate": SQL_MAX_RATIO,
    }
    if SQL_PUBS >= 200:
        # the acceptance gate: conjunctive latency within 3x of the warm
        # in-memory engine at equal scale (median over the workload --
        # single-query jitter on sub-millisecond timings is noise)
        overall = statistics.median(ratios)
        payload["median_ratio"] = round(overall, 2)
        assert overall <= SQL_MAX_RATIO, rows
        # the cost model may keep a cheap probe in memory (that is the
        # point of the cutoff), but the bulk of the workload must push
        pushed = sum(1 for row in rows if row["pushdowns"])
        assert pushed * 2 >= len(rows), rows
    json_report("SQL", payload)


def test_sql_serves_10x_scale(report, json_report, tmp_path):
    mem = bibliography_graph(SQL_PUBS_LARGE, seed=32)
    repository = SqlRepository(str(tmp_path / "repo10x"))
    start = time.perf_counter()
    repository.store("bib", mem)
    load_seconds = time.perf_counter() - start
    node_count = mem.node_count
    edge_count = mem.edge_count
    del mem  # everything below runs against the database only
    sql = repository.fetch("bib")

    rows = []
    for name, text in QUERIES:
        conditions = parse_query(text).where
        clear_plan_cache()
        engine = make_engine(sql)
        seconds, bindings = _warm_latency(engine, conditions)
        rows.append(
            {
                "query": name,
                "rows": len(bindings),
                "sqlite ms": round(seconds * 1e3, 3),
                "pushdowns": engine.metrics.sql_pushdowns,
            }
        )
        assert bindings, f"{name}: empty result at scale"

    report(
        "SQL_10x_scale",
        rows,
        note=f"{SQL_PUBS_LARGE} publications ({node_count} nodes, "
        f"{edge_count} edges) served from SQLite only; bulk load "
        f"{load_seconds:.3f}s, db {repository.file_size()} bytes.",
    )
    json_report(
        "SQL_10X",
        {
            "publications": SQL_PUBS_LARGE,
            "nodes": node_count,
            "edges": edge_count,
            "bulk_load_seconds": round(load_seconds, 4),
            "db_file_bytes": repository.file_size(),
            "queries": rows,
        },
    )
