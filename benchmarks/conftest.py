"""Shared helpers for the experiment benches.

Every bench prints a paper-vs-measured table through the ``report``
fixture, which also persists the table under ``benchmarks/out/`` so
EXPERIMENTS.md numbers can be regenerated.  Run with ``-s`` to see the
tables inline:

    pytest benchmarks/ --benchmark-only -s
"""

import json
import os
from typing import Dict, List, Sequence

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store_true",
        default=False,
        help="also write BENCH_<name>.json machine-readable summaries "
             "under benchmarks/out/",
    )


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Plain aligned-columns rendering of a list of dict rows."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        for row in rows
    ]
    return "\n".join([header, separator] + body)


@pytest.fixture
def report():
    """report(name, rows, note="") -> prints and persists a table."""

    def _report(name: str, rows: Sequence[Dict[str, object]], note: str = "") -> None:
        table = format_table(rows)
        block = f"\n== {name} ==\n{table}\n"
        if note:
            block += f"{note}\n"
        print(block)
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(block.lstrip("\n"))

    return _report


@pytest.fixture
def json_report(request):
    """json_report(name, payload) -> writes benchmarks/out/BENCH_<name>.json
    when ``--bench-json`` is on (returns the path, else None)."""
    enabled = request.config.getoption("--bench-json")

    def _write(name: str, payload: Dict[str, object]):
        if not enabled:
            return None
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return _write
