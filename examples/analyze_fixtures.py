#!/usr/bin/env python
"""Run ``repro analyze`` over the fixture corpus and check its verdicts.

This is the CI gate for the static analyzer itself:

* every fixture under ``examples/fixtures/clean/`` must analyze with
  **zero error-severity findings** (warnings and notes are allowed);
* every fixture under ``examples/fixtures/broken/`` plants exactly one
  defect and declares it in ``expected_codes.txt`` (lines of
  ``CODE file:line``); the analyzer must report each declared code with
  a span in the declared file at the declared line, and the fixture must
  produce at least one error overall.

A SARIF file per fixture is written to the output directory (default
``examples/fixtures/_sarif``) so CI can upload the whole corpus as an
artifact.  Exits 0 when every fixture behaves as declared, 1 otherwise.

Usage::

    PYTHONPATH=src python examples/analyze_fixtures.py [SARIF_OUT_DIR]
"""

from __future__ import annotations

import os
import sys

from repro.analysis import Analyzer, load_templates, render_sarif
from repro.constraints import parse_constraints
from repro.repository import ddl

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def analyze_fixture(directory):
    """Run the full analyzer over one fixture directory; returns the
    :class:`~repro.analysis.DiagnosticReport`."""
    query_file = os.path.join(directory, "site.struql")
    with open(query_file, "r", encoding="utf-8") as handle:
        query = handle.read()

    data_graph = None
    data_file = os.path.join(directory, "data.ddl")
    if os.path.exists(data_file):
        with open(data_file, "r", encoding="utf-8") as handle:
            data_graph = ddl.loads(handle.read(), os.path.basename(directory))

    templates = None
    template_files = None
    pending = []
    template_dir = os.path.join(directory, "templates")
    if os.path.isdir(template_dir):
        templates, template_files, pending = load_templates(template_dir)

    constraints = []
    constraint_lines = []
    constraint_file = os.path.join(directory, "constraints.txt")
    if os.path.exists(constraint_file):
        with open(constraint_file, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                text = raw.strip()
                if not text or text.startswith("#"):
                    continue
                constraints.append(text)
                constraint_lines.append(number)

    data_constraints = None
    dc_file = os.path.join(directory, "constraints.dc")
    if os.path.exists(dc_file):
        with open(dc_file, "r", encoding="utf-8") as handle:
            data_constraints = parse_constraints(handle.read(), dc_file)

    analyzer = Analyzer(
        query=query,
        templates=templates,
        constraints=constraints,
        data_graph=data_graph,
        data_constraints=data_constraints,
        query_file=query_file,
        constraint_file=constraint_file,
        template_files=template_files,
        constraint_lines=constraint_lines,
    )
    analyzer.pending.extend(pending)
    return analyzer.run()


def expected_codes(directory):
    """Parse ``expected_codes.txt``: one ``CODE file:line`` per line."""
    expectations = []
    path = os.path.join(directory, "expected_codes.txt")
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            code, _, location = text.partition(" ")
            file_part, _, line_part = location.rpartition(":")
            expectations.append((code, file_part, int(line_part)))
    return expectations


def check_broken(directory, report):
    """Every declared defect must be reported at the declared span."""
    failures = []
    if report.ok:
        failures.append("expected at least one error finding, got none")
    for code, file_part, line in expected_codes(directory):
        matches = [
            diag
            for diag in report.by_code(code)
            if diag.span.line == line
            and diag.span.file.replace(os.sep, "/").endswith(file_part)
        ]
        if not matches:
            got = [
                f"{diag.code}@{diag.span.file}:{diag.span.line}"
                for diag in report.sorted()
            ]
            failures.append(
                f"expected {code} at {file_part}:{line}; got {got}"
            )
    return failures


def check_clean(report):
    if report.errors:
        return [f"expected zero errors, got: {diag}" for diag in report.errors]
    return []


def main(argv):
    sarif_dir = argv[1] if len(argv) > 1 else os.path.join(FIXTURES, "_sarif")
    os.makedirs(sarif_dir, exist_ok=True)
    failed = False
    for tier, checker in (("clean", None), ("broken", check_broken)):
        tier_dir = os.path.join(FIXTURES, tier)
        for name in sorted(os.listdir(tier_dir)):
            directory = os.path.join(tier_dir, name)
            if not os.path.isdir(directory):
                continue
            report = analyze_fixture(directory)
            sarif_path = os.path.join(sarif_dir, f"{tier}-{name}.sarif")
            with open(sarif_path, "w", encoding="utf-8") as handle:
                handle.write(render_sarif(report) + "\n")
            if checker is None:
                failures = check_clean(report)
            else:
                failures = checker(directory, report)
            status = "FAIL" if failures else "ok"
            print(f"{status:4s} {tier}/{name}: {report.summary()}")
            for failure in failures:
                failed = True
                print(f"     - {failure}")
    print(f"SARIF written to {sarif_dir}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
