#!/usr/bin/env python3
"""The bilingual-site example (the paper's INRIA-Rodin site, section 5.1):
"the site has two views: one English and one French.  The two views are
cross-linked, so that each English page is linked to the equivalent page
in the French site and vice versa.  One STRUQL query defines both views
and creates the links between them."

The data graph stores both languages per project (title_en/title_fr,
summary_en/summary_fr); a single query creates EnPage(x) and FrPage(x)
per project plus the cross links, and each language has its own root.

Run:  python examples/bilingual_site.py [output-dir]
"""

import sys

from repro import DdlWrapper, SiteBuilder, SiteDefinition, TemplateSet
from repro.core import check

PROJECT_DATA = """
collection Projects

object verso {
  name: "verso"
  title_en: "The Verso Project"
  title_fr: "Le projet Verso"
  summary_en: "Database research on semistructured data."
  summary_fr: "Recherche en bases de donnees semi-structurees."
}
object rodin {
  name: "rodin"
  title_en: "The Rodin Project"
  title_fr: "Le projet Rodin"
  summary_en: "Heterogeneous data integration."
  summary_fr: "Integration de donnees heterogenes."
}
object caravel {
  name: "caravel"
  title_en: "The Caravel Project"
  title_fr: "Le projet Caravel"
  summary_en: "Web-site management systems."
  summary_fr: "Systemes de gestion de sites Web."
}
member Projects: verso, rodin, caravel
"""

# One query, both views, cross-linked (the "equivalent" edges).
BILINGUAL_QUERY = """
create EnRoot(), FrRoot()
link EnRoot() -> "equivalent" -> FrRoot(),
     FrRoot() -> "equivalent" -> EnRoot()
where Projects(x), x -> "title_en" -> te, x -> "title_fr" -> tf
create EnPage(x), FrPage(x)
link EnPage(x) -> "title" -> te,
     FrPage(x) -> "title" -> tf,
     EnPage(x) -> "equivalent" -> FrPage(x),
     FrPage(x) -> "equivalent" -> EnPage(x),
     EnRoot() -> "Project" -> EnPage(x),
     FrRoot() -> "Projet" -> FrPage(x)
collect EnPages(EnPage(x)), FrPages(FrPage(x))
where Projects(x), x -> "summary_en" -> s
link EnPage(x) -> "summary" -> s
where Projects(x), x -> "summary_fr" -> s
link FrPage(x) -> "summary" -> s
"""


def build_templates() -> TemplateSet:
    templates = TemplateSet()
    templates.add("en_root", """<html><head><title>Projects</title></head><body>
<h1>Research Projects</h1>
<p><SFMT equivalent> (version francaise)</p>
<SFMT Project UL ORDER=ascend KEY=title>
</body></html>
""")
    templates.add("fr_root", """<html><head><title>Projets</title></head><body>
<h1>Projets de recherche</h1>
<p><SFMT equivalent> (English version)</p>
<SFMT Projet UL ORDER=ascend KEY=title>
</body></html>
""")
    templates.add("en_page", """<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<p><SFMT summary></p>
<p>Version francaise: <SFMT equivalent></p>
</body></html>
""")
    templates.add("fr_page", """<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<p><SFMT summary></p>
<p>English version: <SFMT equivalent></p>
</body></html>
""")
    templates.for_object("EnRoot()", "en_root")
    templates.for_object("FrRoot()", "fr_root")
    templates.for_collection("EnPages", "en_page")
    templates.for_collection("FrPages", "fr_page")
    return templates


def main(output_dir: str = "_out/bilingual") -> None:
    data = DdlWrapper(PROJECT_DATA).wrap()
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition(
            "bilingual",
            BILINGUAL_QUERY,
            build_templates(),
            roots=["EnRoot()", "FrRoot()"],
            constraints=[
                # every English page has a French equivalent, and back
                'forall X (EnPages(X) => exists Y (FrPages(Y) and X -> "equivalent" -> Y))',
                'forall X (FrPages(X) => exists Y (EnPages(Y) and X -> "equivalent" -> Y))',
            ],
        )
    )
    built = builder.build("bilingual")
    print(f"site graph: {built.site_graph.stats()}")
    print(f"pages: {built.generated.page_count} "
          f"(both language views from one query)")
    for constraint, result in built.constraint_results.items():
        print(f"constraint holds={bool(result)}: {constraint}")
    english_root = built.pages["index.html"]
    print("english root cross-links french:",
          "version francaise" in english_root)
    built.write(output_dir)
    print(f"wrote {built.generated.page_count} pages under {output_dir}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
