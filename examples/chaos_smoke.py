#!/usr/bin/env python3
"""Chaos smoke run: drive the full pipeline through injected failures.

The scenario mirrors the resilience acceptance test, as a standalone
driver CI can run and archive:

1. three sources feed the mediator -- one source hard-fails at every
   wrap attempt, and ~10% of the bibliography is malformed;
2. the mediator retries the dead source, trips its circuit breaker,
   quarantines the bad records, and builds a *partial* warehouse;
3. the warehouse persists crash-safely and reloads from disk;
4. the page server serves every derivable page, then -- with the query
   engine failing -- serves the homepage from last-known-good bytes;
5. the HTTP tier takes a refresher crash mid-edit: the last-known-good
   generation keeps serving (200 + degraded header), and the next
   successful edit heals through a full rebuild;
6. the SQLite repository is crashed at every ``sql.*`` fault site and
   bit-flipped on disk; every reopen must come back loadable or
   auto-recovered from its checksummed DDL snapshots;
7. an adversarial cyclic-star query is served under a small deadline:
   the server answers a structured 504 within 2x the budget while
   well-behaved requests keep serving;
8. the resilience report, the serve-tier stats, the slow-query and
   recovery ledgers, and the fault plan's injection log are written as
   JSON artifacts.

Run:  REPRO_CHAOS_SEED=1337 python examples/chaos_smoke.py \
          [output-dir] [--backend memory|sqlite]

``--backend sqlite`` runs the serve scenarios against a SQLite-backed
data graph (exercising progress-handler cancellation and interrupt
counters); the default is the in-memory graph.

Exits non-zero if any degradation guarantee is violated.
"""

import json
import os
import sys
import tempfile
import threading
import time

from repro.mediator import Mediator
from repro.repository import Repository, ddl
from repro.resilience import (
    FaultPlan,
    ManualClock,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    chaos,
)
from repro.core import PageServer
from repro.struql import parse
from repro.workloads.bibliography import (
    HOMEPAGE_QUERY,
    generate_entries,
    homepage_templates,
)
from repro.wrappers import BibtexWrapper, RelationalWrapper, StructuredFileWrapper, Table

BAD_ENTRY = "@article{badentry, title = , year}\n"


def build_mediator(repository: Repository, policy: ResiliencePolicy) -> Mediator:
    mediator = Mediator(repository=repository, policy=policy)
    mediator.add_source(
        "pubs",
        BibtexWrapper(generate_entries(10, seed=3) + BAD_ENTRY, source_name="pubs"),
    )
    mediator.add_source(
        "people",
        RelationalWrapper(
            [Table("People", ["id", "name"], [["a", "Ann"], ["b", "Bob"]])],
            key_columns={"People": "id"},
            source_name="people",
        ),
    )
    mediator.add_source(
        "projects",
        StructuredFileWrapper(
            "%collection Projects\nname: strudel\n", source_name="projects"
        ),
    )
    for name in ("pubs", "people", "projects"):
        mediator.import_source(name)
    return mediator


def serve_scenario(seed: int, output_dir: str, failures: list) -> None:
    """Refresher crash under the HTTP tier: the published generation
    keeps serving as last-known-good, and the next good edit heals."""
    import http.client

    from repro.serve import ServeCore, SiteServer
    from repro.workloads.bibliography import bibliography_graph

    def fetch(server, path):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    core = ServeCore(
        parse(HOMEPAGE_QUERY), bibliography_graph(10, seed=5), homepage_templates()
    )
    server = SiteServer(core, workers=2).start()
    try:
        status, _, baseline = fetch(server, "/")
        if status != 200:
            failures.append("serve: homepage did not serve before the fault")
        with chaos.installed(
            FaultPlan(seed=seed).fail_at("serve.refresh.apply", 1)
        ):
            ticket = server.submit_edit(
                lambda regen: regen.add_object(
                    "Publications",
                    [("title", "Crashed Edit"), ("year", 1995),
                     ("author", "Chaos Editor")],
                )
            )
            ticket.wait(30)
        if ticket.applied:
            failures.append("serve: faulted edit reported success")
        status, headers, body = fetch(server, "/")
        if status != 200 or body != baseline:
            failures.append("serve: last-known-good generation not served")
        if headers.get("X-Strudel-Degraded") != "stale-generation":
            failures.append("serve: degradation not surfaced in headers")
        healing = server.submit_edit(
            lambda regen: regen.add_object(
                "Publications",
                [("title", "Healing Edit"), ("year", 1996),
                 ("author", "Chaos Editor"), ("category", "web")],
            )
        )
        healing.wait(30)
        if not healing.applied or not healing.info.get("coarse"):
            failures.append("serve: healing edit did not rebuild")
        status, headers, body = fetch(server, "/")
        if status != 200 or "X-Strudel-Degraded" in headers:
            failures.append("serve: site still degraded after healing edit")
        if b"1996" not in body:
            failures.append("serve: healed generation is missing the edit")
        stats = server.stats()
        if stats["core"]["refreshes_failed"] != 1:
            failures.append("serve: refresh failure not counted")
        with open(
            os.path.join(output_dir, "serve-stats.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(stats, handle, indent=2, sort_keys=True, default=str)
    finally:
        server.stop()


def sql_scenario(seed: int, output_dir: str, failures: list) -> None:
    """Crash the SQLite repository at every ``sql.*`` fault site, then
    corrupt it on disk; every cold reopen must be loadable or
    auto-recovered from the DDL snapshots."""
    from repro.repository import SqlRepository
    from repro.resilience import recovery_events, reset_recovery_events
    from repro.resilience.chaos import ChaosFault, flip_bit
    from repro.workloads.bibliography import bibliography_graph

    reset_recovery_events()
    results = []
    with tempfile.TemporaryDirectory() as root:
        for site in ("sql.commit", "sql.fsync", "sql.snapshot"):
            directory = os.path.join(root, site.replace(".", "-"))
            repository = SqlRepository(directory)
            repository.store("stable", bibliography_graph(6, seed=seed % 97))
            crashed = False
            with chaos.installed(FaultPlan(seed=seed).fail_at(site, 1)):
                try:
                    repository.store(
                        "victim", bibliography_graph(4, seed=(seed + 1) % 97)
                    )
                except ChaosFault:
                    crashed = True
            del repository  # the "kill"
            reopened = SqlRepository(directory)
            loadable = (
                "stable" in reopened
                and reopened.fetch("stable").node_count > 0
                and reopened.store_backend.integrity_check() == []
            )
            if not crashed:
                failures.append(f"sql: fault at {site} did not fire")
            if not loadable:
                failures.append(f"sql: repository unusable after crash at {site}")
            results.append(
                {"site": site, "crashed": crashed, "loadable": loadable,
                 "recoveries": reopened.integrity_recoveries}
            )

        # media corruption: destroy the header, reopen, auto-recover
        directory = os.path.join(root, "bitflip")
        repository = SqlRepository(directory)
        repository.store("stable", bibliography_graph(6, seed=seed % 97))
        db_path = repository.store_backend.path
        repository.store_backend.close()  # checkpoint the WAL
        del repository
        flip_bit(db_path, offset=0)
        flip_bit(db_path, offset=1)
        reopened = SqlRepository(directory)
        restored = (
            reopened.integrity_recoveries == 1
            and "stable" in reopened
            and reopened.fetch("stable").node_count > 0
        )
        if not restored:
            failures.append("sql: bit-flipped repository did not auto-recover")
        results.append(
            {"site": "flip_bit(header)", "crashed": True, "loadable": restored,
             "recoveries": reopened.integrity_recoveries}
        )

    with open(
        os.path.join(output_dir, "sql-recovery.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {"scenarios": results, "recovery_events": recovery_events()},
            handle, indent=2, sort_keys=True,
        )


ADVERSARIAL_QUERY = """
create RootPage(), SlowPage()
link RootPage() -> "Slow" -> SlowPage()
where Entries(x), x -> ( "link" )* -> t
create HitPage(t)
link SlowPage() -> "Hit" -> HitPage(t),
     HitPage(t) -> "name" -> t
collect Hits(HitPage(t))
"""


def deadline_scenario(output_dir: str, failures: list, backend: str) -> None:
    """An adversarial cyclic-star query must come back as a structured
    504 within 2x the deadline while healthy requests keep serving."""
    import http.client

    from repro.graph import Graph
    from repro.resilience import reset_slow_queries, slow_queries
    from repro.serve import ServeCore, SiteServer
    from repro.template import TemplateSet

    def fetch(server, path):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    graph = Graph("cyclic")
    oids = [graph.add_node(hint=f"n{i}") for i in range(300)]
    for i, oid in enumerate(oids):
        graph.add_to_collection("Entries", oid)
        for j in range(1, 7):
            graph.add_edge(oid, "link", oids[(i + j * 7) % 300])

    templates = TemplateSet()
    templates.add("rootpage", "<html><body><h1>Root</h1></body></html>\n")
    templates.add(
        "slowpage", "<html><body><h1>Hits</h1><SFMT Hit COUNT></body></html>\n"
    )
    templates.add("hitpage", "<html><body><SFMT name></body></html>\n")
    templates.for_object("RootPage()", "rootpage")
    templates.for_object("SlowPage()", "slowpage")
    templates.for_collection("Hits", "hitpage")

    budget = 0.4
    reset_slow_queries()
    sql_directory = tempfile.TemporaryDirectory()
    try:
        if backend == "sqlite":
            from repro.repository import SqlRepository

            repository = SqlRepository(sql_directory.name)
            repository.store("adv", graph)
            graph = repository.fetch("adv")
        core = ServeCore(ADVERSARIAL_QUERY, graph, templates, dynamic=True)
        server = SiteServer(core, workers=2, deadline_budget=budget).start()
        try:
            # warm the healthy page (and the engines) with deadlines off,
            # then force the adversarial render to recompute from scratch
            server.httpd.deadline_budget = None
            status, _ = fetch(server, "/")
            if status != 200:
                failures.append("deadline: homepage failed during warm-up")
            server.httpd.deadline_budget = budget
            graph.add_node(hint="epoch-bump")

            healthy = []

            def well_behaved():
                for _ in range(20):
                    healthy.append(fetch(server, "/")[0])

            thread = threading.Thread(target=well_behaved)
            thread.start()
            started = time.monotonic()
            status, body = fetch(server, "/SlowPage.html")
            elapsed = time.monotonic() - started
            thread.join()

            if status != 504:
                failures.append(f"deadline: adversarial page returned {status}")
            if elapsed >= 2 * budget:
                failures.append(
                    f"deadline: 504 took {elapsed:.2f}s (> 2x {budget}s budget)"
                )
            if b"Traceback" in body:
                failures.append("deadline: 504 body leaked a traceback")
            if set(healthy) != {200}:
                failures.append("deadline: healthy traffic disturbed")
            stats = server.stats()
            if stats["core"]["deadline_exceeded"] < 1:
                failures.append("deadline: cancellation not counted")
            with open(
                os.path.join(output_dir, "slow-queries.json"), "w", encoding="utf-8"
            ) as handle:
                json.dump(
                    {"backend": backend, "budget_s": budget,
                     "elapsed_s": round(elapsed, 3), "status": status,
                     "slow_queries": slow_queries(),
                     "watchdog": stats.get("watchdog"),
                     "sql_interrupts": stats["core"].get("sql_interrupts")},
                    handle, indent=2, sort_keys=True,
                )
        finally:
            if not server.stop():
                failures.append("deadline: server did not drain cleanly")
    finally:
        sql_directory.cleanup()


def main(output_dir: str = "chaos-out", *extra: str) -> int:
    backend = "memory"
    arguments = list(extra)
    if "--backend" in arguments:
        index = arguments.index("--backend")
        backend = arguments[index + 1]
    if backend not in ("memory", "sqlite"):
        print(f"chaos smoke: unknown backend {backend!r}", file=sys.stderr)
        return 2
    os.makedirs(output_dir, exist_ok=True)
    clock = ManualClock()
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, clock=clock),
        breaker_threshold=1,
        min_sources=1,
        clock=clock,
    )
    plan = FaultPlan.from_env(default_seed=1337).fail_always("wrapper.structured.wrap")
    failures = []

    with tempfile.TemporaryDirectory() as store_dir:
        repository = Repository(store_dir)
        mediator = build_mediator(repository, policy)
        with chaos.installed(plan):
            warehouse = mediator.ingest("data")
        report = mediator.last_report

        if not report.partial:
            failures.append("warehouse was not marked partial")
        if "projects" not in report.failed_sources:
            failures.append("dead source was not recorded as failed")
        if report.quarantine.get("pubs", {}).get("quarantined") != 1:
            failures.append("malformed record was not quarantined")
        if mediator.breaker_states()["projects"]["state"] != "open":
            failures.append("circuit breaker did not open")

        # the degraded generation persisted crash-safely and reloads clean
        reloaded = Repository(store_dir).fetch("data")
        if ddl.dumps(reloaded) != ddl.dumps(warehouse):
            failures.append("persisted warehouse does not round-trip")

        # every derivable page still serves
        server = PageServer(parse(HOMEPAGE_QUERY), warehouse, homepage_templates())
        homepage = server.get("/")
        for path in list(server.known_paths()):
            server.get(path)
        if server.degradations:
            failures.append("healthy serve unexpectedly degraded")

        # with the engine failing, the homepage degrades to stale bytes
        server.invalidate()
        with chaos.installed(FaultPlan(seed=plan.seed).fail_always("engine.bindings")):
            degraded = server.get("/")
        if degraded != homepage:
            failures.append("stale homepage differs from last-known-good bytes")
        if not server.degradations or server.degradations[-1]["kind"] != "stale":
            failures.append("stale serve was not recorded")

        resilience = (
            ResilienceReport()
            .record_mediation(mediator)
            .record_server(server)
            .record_recoveries()
        )
        resilience.save(os.path.join(output_dir, "resilience.json"))
        with open(
            os.path.join(output_dir, "fault-plan.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(plan.report(), handle, indent=2, sort_keys=True)

    serve_scenario(plan.seed, output_dir, failures)
    sql_scenario(plan.seed, output_dir, failures)
    deadline_scenario(output_dir, failures, backend)

    print(f"chaos seed: {plan.seed} (backend: {backend})")
    for line in resilience.summary_lines():
        print(f"  {line}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos smoke: all degradation guarantees held")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
