#!/usr/bin/env python3
"""Chaos smoke run: drive the full pipeline through injected failures.

The scenario mirrors the resilience acceptance test, as a standalone
driver CI can run and archive:

1. three sources feed the mediator -- one source hard-fails at every
   wrap attempt, and ~10% of the bibliography is malformed;
2. the mediator retries the dead source, trips its circuit breaker,
   quarantines the bad records, and builds a *partial* warehouse;
3. the warehouse persists crash-safely and reloads from disk;
4. the page server serves every derivable page, then -- with the query
   engine failing -- serves the homepage from last-known-good bytes;
5. the HTTP tier takes a refresher crash mid-edit: the last-known-good
   generation keeps serving (200 + degraded header), and the next
   successful edit heals through a full rebuild;
6. the resilience report, the serve-tier stats, and the fault plan's
   injection log are written as JSON artifacts.

Run:  REPRO_CHAOS_SEED=1337 python examples/chaos_smoke.py [output-dir]

Exits non-zero if any degradation guarantee is violated.
"""

import json
import os
import sys
import tempfile

from repro.mediator import Mediator
from repro.repository import Repository, ddl
from repro.resilience import (
    FaultPlan,
    ManualClock,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    chaos,
)
from repro.core import PageServer
from repro.struql import parse
from repro.workloads.bibliography import (
    HOMEPAGE_QUERY,
    generate_entries,
    homepage_templates,
)
from repro.wrappers import BibtexWrapper, RelationalWrapper, StructuredFileWrapper, Table

BAD_ENTRY = "@article{badentry, title = , year}\n"


def build_mediator(repository: Repository, policy: ResiliencePolicy) -> Mediator:
    mediator = Mediator(repository=repository, policy=policy)
    mediator.add_source(
        "pubs",
        BibtexWrapper(generate_entries(10, seed=3) + BAD_ENTRY, source_name="pubs"),
    )
    mediator.add_source(
        "people",
        RelationalWrapper(
            [Table("People", ["id", "name"], [["a", "Ann"], ["b", "Bob"]])],
            key_columns={"People": "id"},
            source_name="people",
        ),
    )
    mediator.add_source(
        "projects",
        StructuredFileWrapper(
            "%collection Projects\nname: strudel\n", source_name="projects"
        ),
    )
    for name in ("pubs", "people", "projects"):
        mediator.import_source(name)
    return mediator


def serve_scenario(seed: int, output_dir: str, failures: list) -> None:
    """Refresher crash under the HTTP tier: the published generation
    keeps serving as last-known-good, and the next good edit heals."""
    import http.client

    from repro.serve import ServeCore, SiteServer
    from repro.workloads.bibliography import bibliography_graph

    def fetch(server, path):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    core = ServeCore(
        parse(HOMEPAGE_QUERY), bibliography_graph(10, seed=5), homepage_templates()
    )
    server = SiteServer(core, workers=2).start()
    try:
        status, _, baseline = fetch(server, "/")
        if status != 200:
            failures.append("serve: homepage did not serve before the fault")
        with chaos.installed(
            FaultPlan(seed=seed).fail_at("serve.refresh.apply", 1)
        ):
            ticket = server.submit_edit(
                lambda regen: regen.add_object(
                    "Publications",
                    [("title", "Crashed Edit"), ("year", 1995),
                     ("author", "Chaos Editor")],
                )
            )
            ticket.wait(30)
        if ticket.applied:
            failures.append("serve: faulted edit reported success")
        status, headers, body = fetch(server, "/")
        if status != 200 or body != baseline:
            failures.append("serve: last-known-good generation not served")
        if headers.get("X-Strudel-Degraded") != "stale-generation":
            failures.append("serve: degradation not surfaced in headers")
        healing = server.submit_edit(
            lambda regen: regen.add_object(
                "Publications",
                [("title", "Healing Edit"), ("year", 1996),
                 ("author", "Chaos Editor"), ("category", "web")],
            )
        )
        healing.wait(30)
        if not healing.applied or not healing.info.get("coarse"):
            failures.append("serve: healing edit did not rebuild")
        status, headers, body = fetch(server, "/")
        if status != 200 or "X-Strudel-Degraded" in headers:
            failures.append("serve: site still degraded after healing edit")
        if b"1996" not in body:
            failures.append("serve: healed generation is missing the edit")
        stats = server.stats()
        if stats["core"]["refreshes_failed"] != 1:
            failures.append("serve: refresh failure not counted")
        with open(
            os.path.join(output_dir, "serve-stats.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(stats, handle, indent=2, sort_keys=True, default=str)
    finally:
        server.stop()


def main(output_dir: str = "chaos-out") -> int:
    os.makedirs(output_dir, exist_ok=True)
    clock = ManualClock()
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, clock=clock),
        breaker_threshold=1,
        min_sources=1,
        clock=clock,
    )
    plan = FaultPlan.from_env(default_seed=1337).fail_always("wrapper.structured.wrap")
    failures = []

    with tempfile.TemporaryDirectory() as store_dir:
        repository = Repository(store_dir)
        mediator = build_mediator(repository, policy)
        with chaos.installed(plan):
            warehouse = mediator.ingest("data")
        report = mediator.last_report

        if not report.partial:
            failures.append("warehouse was not marked partial")
        if "projects" not in report.failed_sources:
            failures.append("dead source was not recorded as failed")
        if report.quarantine.get("pubs", {}).get("quarantined") != 1:
            failures.append("malformed record was not quarantined")
        if mediator.breaker_states()["projects"]["state"] != "open":
            failures.append("circuit breaker did not open")

        # the degraded generation persisted crash-safely and reloads clean
        reloaded = Repository(store_dir).fetch("data")
        if ddl.dumps(reloaded) != ddl.dumps(warehouse):
            failures.append("persisted warehouse does not round-trip")

        # every derivable page still serves
        server = PageServer(parse(HOMEPAGE_QUERY), warehouse, homepage_templates())
        homepage = server.get("/")
        for path in list(server.known_paths()):
            server.get(path)
        if server.degradations:
            failures.append("healthy serve unexpectedly degraded")

        # with the engine failing, the homepage degrades to stale bytes
        server.invalidate()
        with chaos.installed(FaultPlan(seed=plan.seed).fail_always("engine.bindings")):
            degraded = server.get("/")
        if degraded != homepage:
            failures.append("stale homepage differs from last-known-good bytes")
        if not server.degradations or server.degradations[-1]["kind"] != "stale":
            failures.append("stale serve was not recorded")

        resilience = (
            ResilienceReport()
            .record_mediation(mediator)
            .record_server(server)
            .record_recoveries()
        )
        resilience.save(os.path.join(output_dir, "resilience.json"))
        with open(
            os.path.join(output_dir, "fault-plan.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(plan.report(), handle, indent=2, sort_keys=True)

    serve_scenario(plan.seed, output_dir, failures)

    print(f"chaos seed: {plan.seed}")
    for line in resilience.summary_lines():
        print(f"  {line}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos smoke: all degradation guarantees held")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
