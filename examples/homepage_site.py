#!/usr/bin/env python3
"""Personal homepage with internal and external versions (the paper's
"mff" example, section 5.1).

Two data sources -- a BibTeX bibliography and a Strudel DDL file with
personal information (address, projects, patents) -- are integrated by
the mediator.  The *internal* version shows everything; the *external*
version is derived by changing only HTML templates: patents and
proprietary projects disappear, exactly the paper's "the HTML templates
for the external version exclude patents, and any publications and
projects that are proprietary".

Run:  python examples/homepage_site.py [output-dir]
"""

import sys

from repro import (
    BibtexWrapper,
    DdlWrapper,
    Mediator,
    SiteBuilder,
    SiteDefinition,
    TemplateSet,
    derive_version,
    diff_definitions,
)
from repro.workloads import generate_entries

PERSONAL_DDL = """
collection Personal
collection Projects
collection Patents

object me {
  name: "Mary Fernandez"
  address: "180 Park Avenue, Florham Park, NJ"
  phone: "+1 973 360 0000"
  email: "mff@research.example.com"
}
member Personal: me

object proj1 {
  title: "Strudel"
  synopsis: "A Web-site management system."
  status: "public"
}
object proj2 {
  title: "Internal data integration"
  synopsis: "Proprietary middleware."
  status: "proprietary"
}
member Projects: proj1, proj2

object pat1 {
  title: "Method for declarative site specification"
  number: 999999
}
member Patents: pat1
"""

SITE_QUERY = """
// homepage: root page + publications page, projects and patents inline
create HomePage(), PubsPage()
link HomePage() -> "Publications" -> PubsPage()
where Personal(m), m -> l -> v
link HomePage() -> l -> v
where Projects(j)
link HomePage() -> "Project" -> j
where Patents(t)
link HomePage() -> "Patent" -> t
where Publications(x), x -> l -> v
create Pub(x)
link Pub(x) -> l -> v,
     PubsPage() -> "Paper" -> Pub(x)
collect Pubs(Pub(x))
"""

INTERNAL_HOME = """<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<p><SFMT address><br><SFMT phone><br><SFMT email></p>
<h2>Projects</h2>
<SFOR j IN Project><p><b><SFMT @j.title></b>: <SFMT @j.synopsis>
(<SFMT @j.status>)</p></SFOR>
<h2>Patents</h2>
<SFOR t IN Patent><p><SFMT @t.title> (#<SFMT @t.number>)</p></SFOR>
<p><SFMT Publications></p>
</body></html>
"""

# External: no patents section, proprietary projects filtered by SIF.
EXTERNAL_HOME = """<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<p><SFMT email></p>
<h2>Projects</h2>
<SFOR j IN Project><SIF @j.status = "public"><p><b><SFMT @j.title></b>:
<SFMT @j.synopsis></p></SIF></SFOR>
<p><SFMT Publications></p>
</body></html>
"""

PUBS_PAGE = """<html><head><title>Publications</title></head><body>
<h1>Publications</h1>
<SFMT Paper UL ORDER=descend KEY=year>
</body></html>
"""

PUB = """<b><SFMT title></b> (<SFMT year>), <SFMT author ENUM DELIM=", ">
<SIF journal> &mdash; <i><SFMT journal></i></SIF>
<SIF booktitle> &mdash; <i><SFMT booktitle></i></SIF>
"""


def build_templates(home_text: str) -> TemplateSet:
    templates = TemplateSet()
    templates.add("home", home_text)
    templates.add("pubspage", PUBS_PAGE)
    templates.add("pub", PUB)
    templates.for_object("HomePage()", "home")
    templates.for_object("PubsPage()", "pubspage")
    templates.for_collection("Pubs", "pub")
    return templates


def main(output_dir: str = "_out/homepage") -> None:
    # integrate the two sources
    mediator = Mediator()
    mediator.add_source("bib", BibtexWrapper(generate_entries(12, seed=7)))
    mediator.add_source("ddl", DdlWrapper(PERSONAL_DDL))
    mediator.import_collection("bib", "Publications")
    mediator.import_collection("ddl", "Personal")
    mediator.import_collection("ddl", "Projects")
    mediator.import_collection("ddl", "Patents")
    data = mediator.materialize()
    print(f"mediated data graph: {data.stats()} from 2 sources")

    builder = SiteBuilder(data)
    internal = builder.define(
        SiteDefinition("internal", SITE_QUERY, build_templates(INTERNAL_HOME),
                       roots=["HomePage()"])
    )
    external = builder.define(
        derive_version(internal, "external",
                       template_overrides={"home": EXTERNAL_HOME})
    )

    # one site graph serves both versions
    site_graph = builder.site_graph("internal")
    built_internal = builder.build("internal", site_graph=site_graph)
    built_external = builder.build("external", site_graph=site_graph)

    diff = diff_definitions(internal, external)
    print(f"deriving external from internal: {diff.as_row()}")
    assert not diff.new_queries_needed, "external version needs no new queries"

    internal_home = built_internal.pages["index.html"]
    external_home = built_external.pages["index.html"]
    print("internal home mentions patents:", "Patent" in internal_home)
    print("external home mentions patents:", "Patent" in external_home)
    print("external home mentions proprietary:", "Proprietary" in external_home)

    built_internal.write(f"{output_dir}/internal")
    built_external.write(f"{output_dir}/external")
    print(f"wrote both versions under {output_dir}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
