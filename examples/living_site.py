#!/usr/bin/env python3
"""A living site: the section 7 features working together.

The paper's prototype generated static sites and rebuilt them from
scratch when data changed.  This example runs the full modern loop the
paper sketches as future work:

1. a site is *served dynamically* (`PageServer`) -- no materialization;
2. the same definition is *maintained incrementally*
   (`SiteMaintainer`) as articles arrive -- no full rebuilds;
3. an editor fixes a typo on a page and the change is *propagated back*
   to the data (`EditPropagator`, the section 5.2 user request);
4. the site is *audited* (`audit`) after every change.

Run:  python examples/living_site.py
"""

from repro import Graph, SiteBuilder, SiteDefinition, TemplateSet
from repro.core import PageServer, SiteMaintainer
from repro.core.audit import audit
from repro.core.propagation import EditPropagator
from repro.graph import Oid, string

SITE_QUERY = """
create FrontPage()
where Articles(a), a -> "headline" -> h
create ArticlePage(a)
link ArticlePage(a) -> "headline" -> h,
     FrontPage() -> "Story" -> ArticlePage(a)
collect ArticlePages(ArticlePage(a))
{
  where a -> "category" -> c
  create SectionPage(c)
  link SectionPage(c) -> "Name" -> c,
       SectionPage(c) -> "Story" -> ArticlePage(a),
       FrontPage() -> "Section" -> SectionPage(c)
  collect SectionPages(SectionPage(c))
}
"""


def build_templates() -> TemplateSet:
    templates = TemplateSet()
    templates.add("front", """<html><body><h1>The Daily Graph</h1>
<p><SFMT Story COUNT> stories in <SFMT Section COUNT> sections</p>
<SFMT Section UL ORDER=ascend KEY=Name>
<h2>All stories</h2>
<SFMT Story UL>
</body></html>""")
    templates.add("section", """<html><body><h1><SFMT Name></h1><SFMT Story UL></body></html>""")
    templates.add("article", """<html><body><h1><SFMT headline></h1></body></html>""")
    templates.for_object("FrontPage()", "front")
    templates.for_collection("SectionPages", "section")
    templates.for_collection("ArticlePages", "article")
    return templates


def seed_data() -> Graph:
    data = Graph("newsroom")
    for index, (headline, category) in enumerate(
        [("Graphs considered helpful", "tech"),
         ("Declarative wins again", "tech"),
         ("Local boat caught", "local")]
    ):
        oid = data.add_node(Oid(f"art{index}"))
        data.add_edge(oid, "headline", string(headline))
        data.add_edge(oid, "category", string(category))
        data.add_to_collection("Articles", oid)
    return data


def main() -> None:
    data = seed_data()
    templates = build_templates()

    # one data graph, two consumers: a dynamic server and a maintainer
    server = PageServer(SITE_QUERY, data, templates)
    maintainer = SiteMaintainer(SITE_QUERY, data)
    print("front page (dynamic):")
    print(server.get("/"))

    # a new article arrives: incremental maintenance, then refresh server
    report = maintainer.last_report
    maintainer.add_object(
        "Articles",
        [("headline", string("Strudel reproduced in Python")),
         ("category", string("tech"))],
    )
    report = maintainer.last_report
    print(f"\nnew article maintained: {report.queries_seeded} seeded, "
          f"{report.queries_recomputed} recomputed, "
          f"{report.full_rebuilds} rebuilds, "
          f"+{report.nodes_added} nodes +{report.edges_added} edges")
    server.invalidate()
    assert "Strudel reproduced" in server.get("/")

    # an editor fixes a typo on the article page; the fix lands in the data
    propagator = EditPropagator(maintainer)
    result = propagator.apply(
        Oid("ArticlePage(art2)"), "headline",
        string("Local boat caught"), string("Local boat caught -- with Strudel"),
    )
    print(f"edit propagated to {len(result.origins_rewritten)} data edge(s): "
          f"{result.origins_rewritten[0]}")
    server.invalidate()
    assert "with Strudel" in server.get("/")

    # audit the materialized version of the same site
    builder = SiteBuilder(maintainer.data_graph)
    builder.define(SiteDefinition("news", SITE_QUERY, templates,
                                  roots=["FrontPage()"]))
    built = builder.build("news")
    print("\naudit of the materialized site:")
    print(audit(built).summary())
    print(f"\nwrote nothing to disk; served {server.requests} dynamic requests")


if __name__ == "__main__":
    main()
