#!/usr/bin/env python3
"""The CNN-demo example (paper section 5.1): wrap existing HTML pages,
build the general news site, then derive the sports-only site.

"Because we did not have access to CNN's databases of articles, we mapped
their HTML pages into a data graph containing about 300 articles" -- we
do the same against synthetic article pages.  The sports-only site is
"derived from the original query and only differs in two extra
predicates in one where clause; both sites use the same templates."

Also demonstrates *dynamic* (click-time) evaluation: browsing the site
without materializing the site graph.

Run:  python examples/news_site.py [output-dir] [article-count]
"""

import random
import sys

from repro import HtmlSiteWrapper, SiteBuilder, SiteDefinition, derive_version, diff_definitions
from repro.core import BrowseSession, NodeInstance
from repro.workloads import (
    NEWS_SITE_QUERY,
    SPORTS_SITE_QUERY,
    article_pages,
    news_templates,
)


def main(output_dir: str = "_out/news", count: str = "120") -> None:
    # 1. wrap existing pages (the paper's route to the CNN data graph)
    pages = article_pages(int(count), seed=11)
    data = HtmlSiteWrapper(pages, collection="Pages").wrap()
    data.create_collection("Articles")
    for oid in data.collection("Pages"):
        path = data.attribute(oid, "path")
        if path is not None and "/article" in str(path):
            data.add_to_collection("Articles", oid)
    # the HTML wrapper exposes <meta name=category> as meta-category;
    # normalize it to the attribute name the site query uses
    rename = []
    for source, target in list(data.edges_with_label("meta-category")):
        rename.append((source, target))
    for source, target in rename:
        data.add_edge(source, "category", target)
    for source, target in list(data.edges_with_label("meta-top")):
        data.add_edge(source, "top", target)
    for source, target in list(data.edges_with_label("meta-date")):
        data.add_edge(source, "date", target)
    for source, target in list(data.edges_with_label("linksTo")):
        data.add_edge(source, "related", target)
    for source, target in list(data.edges_with_label("title")):
        data.add_edge(source, "headline", target)
    print(f"wrapped {len(pages)} pages -> data graph {data.stats()}")
    print(f"articles: {data.collection_cardinality('Articles')}")

    # 2. general site and the derived sports-only site
    builder = SiteBuilder(data)
    general = builder.define(
        SiteDefinition("news", NEWS_SITE_QUERY, news_templates(),
                       roots=["FrontPage()"])
    )
    sports = builder.define(
        derive_version(general, "sports-only", query=SPORTS_SITE_QUERY)
    )
    built_general = builder.build("news")
    built_sports = builder.build("sports-only")
    diff = diff_definitions(general, sports)
    print(f"general site: {built_general.generated.page_count} pages")
    print(f"sports-only:  {built_sports.generated.page_count} pages")
    print(f"derivation cost: {diff.as_row()}  (templates shared: all)")

    # 3. browse the site dynamically -- no materialized site graph
    dynamic = builder.dynamic_site("news", cache=True, lookahead=True)
    session = BrowseSession(dynamic)
    rng = random.Random(0)
    trajectory = session.walk(
        NodeInstance("FrontPage", ()),
        chooser=lambda candidates: rng.choice(candidates),
        clicks=6,
    )
    print("dynamic browse trajectory:")
    for step in trajectory:
        print(f"  {step}")
    print(f"click-time metrics: {dynamic.metrics}")

    built_general.write(f"{output_dir}/general")
    built_sports.write(f"{output_dir}/sports")
    print(f"wrote both sites under {output_dir}/")


if __name__ == "__main__":
    main(*sys.argv[1:3])
