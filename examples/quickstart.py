#!/usr/bin/env python3
"""Quickstart: the paper's running example (section 2.3), end to end.

Pipeline (Fig. 1 of the paper):

1. a BibTeX file is wrapped into a *data graph* (Fig. 2);
2. the site-definition STRUQL query (Fig. 3) produces the *site graph*
   (Fig. 4);
3. HTML templates (Fig. 6) render the site graph into a browsable site.

Run:  python examples/quickstart.py [output-dir]
"""

import sys

from repro import SiteBuilder, SiteDefinition, BibtexWrapper
from repro.workloads import HOMEPAGE_QUERY, homepage_templates

# The paper's Fig. 2 shows two publications with *different* attribute
# sets -- pub1 has month+journal, pub2 has booktitle instead.  That
# irregularity is the point of the semistructured model.
BIBTEX = """
@article{pub1,
  title = {A Query Language for a Web-Site Management System},
  author = {Mary Fernandez and Daniela Florescu and Alon Levy and Dan Suciu},
  journal = {SIGMOD Record},
  year = 1997,
  month = sep,
  abstract = {Describes STRUQL, a query language for Web-site management.},
  postscript = {papers/struql.ps},
  category = {web}
}

@inproceedings{pub2,
  title = {Catching the Boat with Strudel},
  author = {Mary Fernandez and Daniela Florescu and Jaewoo Kang and Alon Levy and Dan Suciu},
  booktitle = {Proceedings of SIGMOD},
  year = 1998,
  abstract = {Experiences building Web sites declaratively.},
  category = {web}
}

@inproceedings{pub3,
  title = {Optimizing Regular Path Expressions},
  author = {Mary Fernandez and Dan Suciu},
  booktitle = {Proceedings of ICDE},
  year = 1998,
  category = {semistructured}
}
"""


def main(output_dir: str = "_out/quickstart") -> None:
    # 1. wrap the external source into a data graph
    data = BibtexWrapper(BIBTEX).wrap()
    print(f"data graph: {data.stats()}")
    for oid in data.collection("Publications"):
        labels = ", ".join(data.labels_of(oid))
        print(f"  {oid}: {labels}")

    # 2+3. declare the site and build it
    builder = SiteBuilder(data)
    builder.define(
        SiteDefinition(
            name="homepage",
            query=HOMEPAGE_QUERY,
            templates=homepage_templates(),
            roots=["RootPage()"],
            constraints=[
                'forall X (YearPage(X) => exists Y (RootPage(Y) and Y -> "YearPage" -> X))',
            ],
        )
    )
    built = builder.build("homepage")
    print(f"site graph: {built.site_graph.stats()}")
    print(f"pages generated: {built.generated.page_count}")
    for constraint, result in built.constraint_results.items():
        print(f"constraint holds={bool(result)}: {constraint}")

    # the site schema is the site's abstract structure (Fig. 7)
    schema = builder.definition("homepage").site_schema()
    print("site schema edges:")
    for line in schema.recover_link_expressions():
        print(f"  {line}")

    paths = built.write(output_dir)
    print(f"wrote {len(paths)} pages under {output_dir}/ (open index.html)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
