"""Setuptools shim for environments without PEP 517 wheel support.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e .`` through the legacy path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Strudel reproduction: a declarative web-site management system "
        "(SIGMOD 1998)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
