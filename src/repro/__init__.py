"""Strudel reproduction: a declarative web-site management system.

A from-scratch Python implementation of the STRUDEL system ("Catching the
Boat with Strudel: Experiences with a Web-Site Management System",
SIGMOD 1998): a semistructured data model of labeled directed graphs, the
STRUQL query/restructuring language, source wrappers and a GAV
warehousing mediator, an HTML-template language, site schemas with
integrity-constraint verification, and dynamic click-time site
evaluation.

Quick start::

    from repro import BibtexWrapper, SiteBuilder, SiteDefinition, TemplateSet

    data = BibtexWrapper(open("pubs.bib").read()).wrap()
    templates = TemplateSet()
    templates.add("root", "<html>...<SFMT YearPage UL ORDER=descend KEY=Year>...")
    templates.for_object("RootPage()", "root")
    builder = SiteBuilder(data)
    builder.define(SiteDefinition("homepage", SITE_QUERY, templates))
    built = builder.build("homepage")
    built.write("out/")

See ``examples/`` for complete pipelines and ``DESIGN.md`` for the map
from paper sections to modules.
"""

from .analysis import Analyzer, Diagnostic, DiagnosticReport, Severity
from .core import (
    BrowseSession,
    BuiltSite,
    CheckResult,
    DynamicSite,
    NodeInstance,
    SiteBuilder,
    SiteDefinition,
    SiteSchema,
    SiteStats,
    Verdict,
    check,
    derive_version,
    diff_definitions,
    enforce,
    measure_site,
    parse_constraint,
    verify_static,
)
from .errors import (
    ConstraintViolation,
    GraphError,
    MediatorError,
    RepositoryError,
    SiteAnalysisError,
    SiteDefinitionError,
    StrudelError,
    StruqlError,
    TemplateError,
    WrapperError,
)
from .graph import Atom, AtomType, Graph, Oid
from .mediator import Mediator
from .repository import Repository, ddl
from .struql import Program, Query, evaluate, parse, query_bindings
from .template import GeneratedSite, HtmlGenerator, Renderer, TemplateSet, generate_site
from .wrappers import (
    BibtexWrapper,
    DdlWrapper,
    HtmlSiteWrapper,
    RelationalWrapper,
    StructuredFileWrapper,
    Table,
    Wrapper,
)

__version__ = "1.0.0"

__all__ = [
    "Analyzer",
    "Atom",
    "AtomType",
    "BibtexWrapper",
    "BrowseSession",
    "BuiltSite",
    "CheckResult",
    "ConstraintViolation",
    "DdlWrapper",
    "Diagnostic",
    "DiagnosticReport",
    "DynamicSite",
    "GeneratedSite",
    "Graph",
    "GraphError",
    "HtmlGenerator",
    "HtmlSiteWrapper",
    "Mediator",
    "MediatorError",
    "NodeInstance",
    "Oid",
    "Program",
    "Query",
    "RelationalWrapper",
    "Renderer",
    "Repository",
    "RepositoryError",
    "Severity",
    "SiteAnalysisError",
    "SiteBuilder",
    "SiteDefinition",
    "SiteDefinitionError",
    "SiteSchema",
    "SiteStats",
    "StructuredFileWrapper",
    "StrudelError",
    "StruqlError",
    "Table",
    "TemplateError",
    "TemplateSet",
    "Verdict",
    "Wrapper",
    "WrapperError",
    "check",
    "ddl",
    "derive_version",
    "diff_definitions",
    "enforce",
    "evaluate",
    "generate_site",
    "measure_site",
    "parse",
    "parse_constraint",
    "query_bindings",
    "verify_static",
]
