"""Static site analysis: one pass, one diagnostic model, no build.

The paper's section 2.5 claim -- site structure and integrity properties
can be checked *before any site is built* -- as a subsystem::

    from repro.analysis import Analyzer

    report = Analyzer(query=SITE_QUERY, templates=templates,
                      constraints=constraints, data_graph=data).run()
    for diagnostic in report.sorted():
        print(diagnostic)
    assert report.ok  # no error-severity findings

Renderers produce terminal text, JSON, and SARIF 2.1.0; the CLI command
is ``repro analyze``; :meth:`repro.core.site.SiteBuilder.analyze` and
the ``gate=True`` build flag integrate it into the build pipeline.
"""

from .analyzer import Analyzer, analyze, load_templates
from .audit_bridge import audit_diagnostics
from .constraint_checks import check_constraints, refute_static
from .data_constraint_checks import check_data_constraints, required_guaranteed
from .diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Rule,
    Severity,
    Span,
    Suppressions,
)
from .query_checks import check_program
from .renderers import RENDERERS, render_json, render_sarif, render_text
from .schema_checks import check_schema
from .template_checks import check_templates, lint_to_diagnostic

__all__ = [
    "Analyzer",
    "Diagnostic",
    "DiagnosticReport",
    "RENDERERS",
    "RULES",
    "Rule",
    "Severity",
    "Span",
    "Suppressions",
    "analyze",
    "audit_diagnostics",
    "check_constraints",
    "check_data_constraints",
    "check_program",
    "check_schema",
    "check_templates",
    "required_guaranteed",
    "lint_to_diagnostic",
    "load_templates",
    "refute_static",
    "render_json",
    "render_sarif",
    "render_text",
]
