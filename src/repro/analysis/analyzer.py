"""The unified site analyzer: every static pass behind one call.

The paper's promise -- "a simple analysis of the query can infer the
site schema" and integrity properties can be verified *before any site
is built* (section 2.5) -- was previously scattered across the template
linter, ``verify_static``, and the post-build auditor, each with its own
finding shape.  :class:`Analyzer` runs all of it against one site
specification with **no site materialization**:

1. parse the STRUQL query (``SQ000`` on failure) and type-check it
   against the data graph's label summary (``SQ001``-``SQ007``,
   ``SCH002``/``SCH003`` for provably-dead clauses);
2. infer the site schema and check reachability (``SCH001``,
   ``SCH004``);
3. lint the templates against the schema (``TPL001``-``TPL004``);
4. statically verify / refute the integrity constraints
   (``CON001``-``CON005``).

Everything lands in one :class:`~repro.analysis.DiagnosticReport` with
shared severities, stable codes, source spans, and one suppression
mechanism.  The CLI front end is ``repro analyze``; the API front end
for registered sites is :meth:`repro.core.site.SiteBuilder.analyze`,
which also powers the pre-build gate (``build(..., gate=True)``).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import StruqlError, TemplateSyntaxError
from ..graph import Graph
from ..repository.summary import LabelSummary, label_summary
from ..struql.ast import Program
from ..struql.parser import _Parser
from ..template.generator import TemplateSet
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Span,
    Suppressions,
    make,
)
from .query_checks import check_program
from .schema_checks import check_schema
from .template_checks import check_templates
from .constraint_checks import check_constraints
from .data_constraint_checks import check_data_constraints


class Analyzer:
    """One-stop static analysis of a site specification.

    Parameters mirror :class:`~repro.core.site.SiteDefinition`:
    ``query`` (text or parsed :class:`Program`), ``templates``,
    ``constraints`` and ``roots``; plus the optional ``data_graph``
    whose label summary enables the data-dependent query checks
    (without it, vocabulary checks are skipped and the analysis is
    purely structural).  ``query_file`` / ``constraint_file`` /
    ``template_files`` name the sources in diagnostic spans.
    """

    def __init__(
        self,
        query: Union[Program, str],
        templates: Optional[TemplateSet] = None,
        constraints: Sequence[object] = (),
        roots: Sequence[object] = (),
        data_graph: Optional[Graph] = None,
        query_file: str = "<query>",
        constraint_file: str = "<constraints>",
        template_files: Optional[Dict[str, str]] = None,
        constraint_lines: Optional[Sequence[int]] = None,
        data_constraints: Optional[object] = None,
    ) -> None:
        self.query = query
        self.templates = templates
        self.constraints = list(constraints)
        self.constraint_lines = list(constraint_lines or [])
        #: optional :class:`~repro.constraints.ConstraintSet` of declared
        #: data constraints, classified by the DC0xx pass.
        self.data_constraints = data_constraints
        self.roots = [str(root) for root in roots]
        self.data_graph = data_graph
        self.query_file = query_file
        self.constraint_file = constraint_file
        self.template_files = template_files or {}
        #: diagnostics found while assembling inputs (template syntax
        #: errors from :func:`load_templates`, for example) that should
        #: ride along with the analysis proper.
        self.pending: List[Diagnostic] = []

    @classmethod
    def for_definition(
        cls,
        definition: object,
        data_graph: Optional[Graph] = None,
    ) -> "Analyzer":
        """Build an analyzer from a :class:`SiteDefinition`."""
        return cls(
            query=definition.query,
            templates=definition.templates,
            constraints=list(definition.constraints),
            roots=list(getattr(definition, "roots", [])),
            data_graph=data_graph,
            query_file=f"<{definition.name}.struql>",
            constraint_file=f"<{definition.name}.constraints>",
        )

    # ------------------------------------------------------------ #

    def run(self, suppress: Iterable[str] = ()) -> DiagnosticReport:
        """Run every pass; returns the combined diagnostic report."""
        report = DiagnosticReport()
        report.extend(self.pending)

        program = self._parse_query(report)
        if program is None:
            # data constraints are checkable against the data graph even
            # when the site query does not parse
            if self.data_constraints is not None:
                report.extend(
                    check_data_constraints(
                        self.data_constraints,
                        schema=None,
                        data_graph=self.data_graph,
                    )
                )
            report.apply_suppressions(Suppressions(suppress))
            return report

        summary = self._summary()
        query_diagnostics, dead_blocks = check_program(
            program, summary, query_file=self.query_file
        )
        report.extend(query_diagnostics)

        from ..core.schema import SiteSchema

        schema = SiteSchema.from_program(program)
        report.extend(
            check_schema(
                schema,
                roots=self.roots,
                dead_blocks=dead_blocks,
                query_file=self.query_file,
            )
        )
        if self.templates is not None:
            report.extend(
                check_templates(self.templates, schema, self.template_files)
            )
        if self.constraints:
            report.extend(
                check_constraints(
                    self.constraints,
                    schema,
                    constraint_file=self.constraint_file,
                    lines=self.constraint_lines or None,
                )
            )
        if self.data_constraints is not None:
            report.extend(
                check_data_constraints(
                    self.data_constraints,
                    schema=schema,
                    data_graph=self.data_graph,
                )
            )
        report.apply_suppressions(Suppressions(suppress))
        return report

    # ------------------------------------------------------------ #

    def _parse_query(self, report: DiagnosticReport) -> Optional[Program]:
        """Parse without validating, so scope errors become diagnostics
        rather than a single exception."""
        if isinstance(self.query, Program):
            return self.query
        try:
            program = _Parser(self.query).parse_program()
            program.source_text = self.query
            return program
        except StruqlError as error:
            report.add(
                make(
                    "SQ000",
                    f"query does not parse: {error}",
                    subject="<query>",
                    span=Span(
                        file=self.query_file,
                        line=getattr(error, "line", 0),
                        column=getattr(error, "column", 0),
                    ),
                    source="query",
                )
            )
            return None

    def _summary(self) -> Optional[LabelSummary]:
        if self.data_graph is None:
            return None
        return label_summary(self.data_graph)


def analyze(
    query: Union[Program, str],
    templates: Optional[TemplateSet] = None,
    constraints: Sequence[object] = (),
    data_graph: Optional[Graph] = None,
    roots: Sequence[object] = (),
    suppress: Iterable[str] = (),
) -> DiagnosticReport:
    """One-shot convenience wrapper around :class:`Analyzer`."""
    analyzer = Analyzer(
        query=query,
        templates=templates,
        constraints=constraints,
        roots=roots,
        data_graph=data_graph,
    )
    return analyzer.run(suppress=suppress)


def load_templates(
    directory: str,
) -> Tuple[TemplateSet, Dict[str, str], List[Diagnostic]]:
    """Load a directory of ``*.tmpl`` files with the CLI's naming
    conventions, collecting syntax errors as TPL004 diagnostics instead
    of stopping at the first bad file.

    Returns ``(templates, name -> path map, diagnostics)``.  Conventions
    (shared with ``repro build``/``lint``): ``Name.tmpl`` attaches to
    collection ``Name``, ``Name__.tmpl`` is object-specific for
    ``Name()``, ``default.tmpl`` is the fallback.
    """
    templates = TemplateSet()
    files: Dict[str, str] = {}
    diagnostics: List[Diagnostic] = []
    names: List[str] = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".tmpl"):
            continue
        name = entry[: -len(".tmpl")]
        path = os.path.join(directory, entry)
        files[name] = path
        try:
            templates.add_file(path, name)
        except TemplateSyntaxError as error:
            diagnostics.append(
                make(
                    "TPL004",
                    f"template {name} does not parse: {error}",
                    subject=name,
                    span=Span(file=path, line=getattr(error, "line", 0)),
                    source="template",
                )
            )
            continue
        names.append(name)
    for name in names:
        if name == "default":
            templates.set_default(name)
        elif name.endswith("__"):
            templates.for_object(name[:-2] + "()", name)
        else:
            templates.for_collection(name, name)
    return templates, files, diagnostics
