"""Bridge from generation-time audit findings to shared diagnostics.

:func:`repro.core.audit.audit` keeps its own report shape (it predates
the diagnostics framework and its ``ok``/``summary()`` API is public);
this module converts an :class:`AuditReport` into ``AUD0xx`` diagnostics
and -- the important part -- **dedupes against the static report**, so
one root cause is reported once:

* an unreachable *generated* page (``AUD002``) whose page type the
  static pass already flagged unreachable (``SCH001``) is dropped;
* empty pages (``AUD003``) are dropped when the static pass already
  found an unknown template attribute (``TPL001``) -- the typo is the
  cause, and it is reported with a source span instead of a filename;
* a build-time constraint violation (``AUD004``) already refuted
  statically (``CON004``) is dropped.

The same :class:`~repro.analysis.Suppressions` specs the static
analyzer accepts apply here, so one suppression silences a finding in
both worlds.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .diagnostics import DiagnosticReport, Span, Suppressions, make


def audit_diagnostics(
    built: object,
    report: Optional[object] = None,
    static: Optional[DiagnosticReport] = None,
    suppress: Iterable[str] = (),
) -> DiagnosticReport:
    """Convert audit findings of one built site to diagnostics.

    ``built`` is a :class:`~repro.core.site.BuiltSite`; ``report`` an
    already-computed :class:`~repro.core.audit.AuditReport` (audited
    fresh otherwise); ``static`` the analyzer's report for the same
    definition, used for cross-pass deduplication.
    """
    from ..core.audit import audit as run_audit

    if report is None:
        report = run_audit(built)

    out = DiagnosticReport()
    statically_unreachable = {
        d.subject for d in (static.by_code("SCH001") if static else ())
    }
    static_typo = bool(static and static.by_code("TPL001"))
    statically_refuted = {
        d.subject for d in (static.by_code("CON004") if static else ())
    }

    for page, target in report.dangling_links:
        out.add(
            make(
                "AUD001",
                f"page {page} links to {target}, which was never generated",
                subject=f"{page}->{target}",
                span=Span(file=page),
                source="audit",
            )
        )
    for oid_name in report.unreachable_pages:
        function = oid_name.split("(", 1)[0]
        if function in statically_unreachable:
            continue  # SCH001 already reported the page *type*
        out.add(
            make(
                "AUD002",
                f"site-graph node {oid_name} has a template but no "
                "generated page links to it",
                subject=oid_name,
                source="audit",
            )
        )
    for filename in report.empty_pages:
        if static_typo:
            continue  # the TPL001 typo is the root cause, reported once
        out.add(
            make(
                "AUD003",
                f"generated page {filename} has no visible text",
                subject=filename,
                span=Span(file=filename),
                source="audit",
            )
        )
    for constraint, result in report.constraint_results.items():
        if bool(result):
            continue
        if constraint in statically_refuted:
            continue  # CON004 already reported the refutation
        witness = getattr(result, "witness", None)
        detail = f" (counterexample: {witness})" if witness else ""
        out.add(
            make(
                "AUD004",
                f"constraint {constraint} is violated on the generated "
                f"site{detail}",
                subject=constraint,
                source="audit",
            )
        )
    out.apply_suppressions(Suppressions(suppress))
    return out
