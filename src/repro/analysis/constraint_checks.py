"""Integrity constraints as an analysis pass: verify, refute, or defer.

:func:`repro.core.constraints.verify_static` answers ``VERIFIED`` /
``UNKNOWN``; re-hosted here it gains the *refutation* direction, so one
pass sorts each constraint into one of five diagnostics:

* ``CON001`` (error) -- the constraint text does not parse;
* ``CON002`` (info) -- statically VERIFIED: holds on every site any data
  graph can produce;
* ``CON004`` (error) -- statically REFUTED: for the reachability pattern
  ``forall X (A(X) => exists Y (B(Y) and Y -R-> X))`` there is *no*
  schema path between the B- and A-functions whose labels could match R
  even under the most optimistic reading (arc-variable edges may carry
  any label, guards and Skolem arguments ignored).  The site schema
  over-approximates every generatable site graph, so any site with an
  A-instance violates the constraint;
* ``CON005`` (warning) -- a class name matches no collection or Skolem
  function: the constraint holds only vacuously (usually a typo);
* ``CON003`` (warning) -- everything else: not statically decidable,
  model-checked after each build.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..core.constraints import (
    Formula,
    Verdict,
    _match_reachability_pattern,
    parse_constraint,
    verify_static,
)
from ..core.schema import NS, SiteSchema
from ..errors import ConstraintError
from ..struql.paths import NFA, compile_path
from .diagnostics import Diagnostic, Span, make


def check_constraints(
    constraints: Sequence[Union[Formula, str]],
    schema: SiteSchema,
    constraint_file: str = "<constraints>",
    lines: Optional[Sequence[int]] = None,
) -> List[Diagnostic]:
    """Classify each constraint.  ``lines`` optionally gives the source
    line of each constraint (e.g. its line in a constraints file);
    without it the 1-based ordinal is used."""
    diagnostics: List[Diagnostic] = []
    for index, constraint in enumerate(constraints, start=1):
        line = lines[index - 1] if lines and index <= len(lines) else index
        span = Span(file=constraint_file, line=line)
        if isinstance(constraint, str):
            try:
                formula = parse_constraint(constraint)
            except ConstraintError as error:
                # constraints are one per line, so an error on line 1 of
                # the formula text is at (file line, error column)
                column = (
                    getattr(error, "column", 0)
                    if getattr(error, "line", 0) == 1
                    else 0
                )
                diagnostics.append(
                    make(
                        "CON001",
                        f"constraint does not parse: {error}",
                        subject=constraint.strip(),
                        span=Span(file=span.file, line=span.line, column=column),
                        source="constraint",
                    )
                )
                continue
        else:
            formula = constraint
        diagnostics.append(_classify(formula, schema, span))
    return diagnostics


def _classify(formula: Formula, schema: SiteSchema, span: Span) -> Diagnostic:
    text = str(formula)
    pattern = _match_reachability_pattern(formula)
    if pattern is not None:
        class_a, class_b, path, from_b = pattern
        missing = [
            name
            for name in (class_a, class_b)
            if not schema.functions_of_class(name)
        ]
        if missing:
            return make(
                "CON005",
                f"constraint {text} names {', '.join(repr(m) for m in missing)}, "
                "which matches no output collection or Skolem function: it "
                "holds only vacuously",
                subject=text,
                span=span,
                source="constraint",
            )
    if verify_static(formula, schema) is Verdict.VERIFIED:
        return make(
            "CON002",
            f"constraint {text} is statically verified: it holds on every "
            "site this query can generate",
            subject=text,
            span=span,
            source="constraint",
        )
    if pattern is not None and refute_static(formula, schema):
        class_a, class_b, path, from_b = pattern
        direction = (
            f"from any {class_b}-page to any {class_a}-page"
            if from_b
            else f"from any {class_a}-page to any {class_b}-page"
        )
        return make(
            "CON004",
            f"constraint {text} is statically refuted: the site schema "
            f"has no path {direction} whose labels can match {path}, so "
            "every site with such pages violates it",
            subject=text,
            span=span,
            source="constraint",
        )
    return make(
        "CON003",
        f"constraint {text} is not statically verifiable; it will be "
        "model-checked on the materialized site graph",
        subject=text,
        span=span,
        source="constraint",
    )


def refute_static(formula: Union[Formula, str], schema: SiteSchema) -> bool:
    """Sound refutation of the reachability pattern on the site schema.

    Where :func:`verify_static` under-approximates ("is a matching path
    *guaranteed*?"), this over-approximates ("is a matching path even
    *possible*?"): guards and Skolem-argument chaining are ignored and an
    arc-variable edge is allowed to carry any label.  If even this
    generous schema walk finds no matching path for *any* (A-function,
    B-function) pair, then no generated site graph -- whose edges are all
    instances of schema edges -- can contain one, and the constraint
    fails on every site with an A-instance.  Returns False (no refutation)
    whenever the formula is not the supported pattern or a class is empty.
    """
    if isinstance(formula, str):
        formula = parse_constraint(formula)
    pattern = _match_reachability_pattern(formula)
    if pattern is None:
        return False
    class_a, class_b, path, from_b = pattern
    a_functions = schema.functions_of_class(class_a)
    b_functions = schema.functions_of_class(class_b)
    if not a_functions or not b_functions:
        return False
    nfa = compile_path(path)
    if from_b:
        starts, goals = b_functions, set(a_functions)
    else:
        starts, goals = a_functions, set(b_functions)
    return not _some_path_possible(schema, nfa, starts, goals)


def _some_path_possible(
    schema: SiteSchema,
    nfa: NFA,
    starts: Sequence[str],
    goals: Set[str],
) -> bool:
    initial = nfa.initial
    frontier: List[Tuple[str, FrozenSet[int]]] = []
    seen: Set[Tuple[str, FrozenSet[int]]] = set()
    for function in starts:
        state = (function, initial)
        if state not in seen:
            seen.add(state)
            frontier.append(state)
    for function, states in frontier:
        if function in goals and nfa.accepts_in(states):
            return True
    while frontier:
        function, states = frontier.pop()
        for edge in schema.edges_from(function):
            if edge.label_is_variable:
                next_states = _step_any(nfa, states)
            else:
                next_states = nfa.step(states, edge.label)
            if not next_states:
                continue
            state = (edge.target, next_states)
            if state in seen:
                continue
            seen.add(state)
            if edge.target in goals and nfa.accepts_in(next_states):
                return True
            # NS nodes (data-graph targets) may themselves be link
            # sources, so the walk continues through them
            frontier.append(state)
    return False


def _step_any(nfa: NFA, states: FrozenSet[int]) -> FrozenSet[int]:
    """Optimistic wildcard step: an arc-variable edge may carry *any*
    label, so every transition out of the current states is possible.
    (Compare the sound-verification dual ``_step_wildcard`` in
    :mod:`repro.core.constraints`, which only follows transitions that
    accept every label.)"""
    out = set()
    for state in states:
        for _test, nxt in nfa.transitions.get(state, ()):
            out.add(nxt)
    return nfa.closure(frozenset(out))
