"""Data constraints as an analysis pass: refute, flag, or defer.

The ``DC0xx`` family classifies each declared data constraint before
any ingest runs:

* ``DC001`` (error) -- the declaration does not parse (real lexer
  spans: the constraint front-end reuses the STRUQL tokenizer);
* ``DC007`` (warning) -- duplicate declaration;
* ``DC002``/``DC003`` (warning) -- the collection or label exists in
  neither the site schema nor the data graph, so the constraint can
  never apply / never fire;
* ``DC005`` (info) -- *soundly refuted*: either the mapping queries'
  structure proves every member must carry the required edge (the
  guard-subset argument of ``verify_static``, applied to creations),
  or the data graph's per-label value index proves no current value
  can violate;
* ``DC004`` (error) -- members of the supplied data graph violate it;
* ``DC006`` (info) -- not statically decidable; enforced at ingest.

Schema refutation is the static-analysis payoff: ``required L`` on a
collection whose every creation carries an unconditional ``L`` edge
(same guard set, same Skolem arguments) can never be violated by *any*
dataset, so the ingest gate and the incremental checker skip it
entirely.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..constraints.checker import ConstraintChecker, bump
from ..constraints.model import CheckCounters, ConstraintSet, DataConstraint
from ..core.schema import SiteSchema
from ..graph import Graph
from .diagnostics import Diagnostic, Span, make

#: kinds whose label must carry at least one value for the constraint
#: to be able to fire at all
_VALUE_KINDS = ("exclusive", "range", "regexp", "max_len")


def required_guaranteed(
    schema: SiteSchema, collection: str, label: str
) -> bool:
    """Can the mapping queries' structure prove ``required label``?

    True when the collection resolves to Skolem functions, and every
    creation of every such function is accompanied by a non-variable
    ``label`` edge out of the same creation (guard subset of the
    creation's guards, identical Skolem arguments) -- the same proof
    obligation :func:`repro.core.constraints.verify_static` uses for
    reachability constraints, applied to one edge.
    """
    functions = schema.functions_of_class(collection)
    if not functions:
        return False
    for function in functions:
        creations = schema.creations_of(function)
        if not creations:
            return False
        edges = [
            edge
            for edge in schema.edges_from(function)
            if not edge.label_is_variable and edge.label == label
        ]
        for creation in creations:
            guards = frozenset(creation.query_names)
            if not any(
                frozenset(edge.query_names) <= guards
                and edge.source_args == creation.args
                for edge in edges
            ):
                return False
    return True


def check_data_constraints(
    constraint_set: ConstraintSet,
    schema: Optional[SiteSchema] = None,
    data_graph: Optional[Graph] = None,
    counters: Optional[CheckCounters] = None,
) -> List[Diagnostic]:
    """Classify every declared data constraint into a ``DC0xx`` finding."""
    diagnostics: List[Diagnostic] = []
    source = constraint_set.source
    counters = counters if counters is not None else CheckCounters()

    for issue in constraint_set.issues:
        diagnostics.append(
            make(
                "DC001",
                f"data constraint does not parse: {issue.message}",
                subject=issue.message,
                span=Span(file=source, line=issue.line, column=issue.column),
                source="data-constraint",
            )
        )

    schema_labels: Set[str] = set()
    schema_collections: Set[str] = set()
    if schema is not None:
        schema_labels = {
            edge.label for edge in schema.edges if not edge.label_is_variable
        }
        schema_collections = set(schema.collections)
        schema_collections.update(schema.functions)

    checker = (
        ConstraintChecker(data_graph, constraint_set, counters)
        if data_graph is not None
        else None
    )
    seen: Set[Tuple[object, ...]] = set()
    for constraint in constraint_set:
        span = Span(file=source, line=constraint.line, column=constraint.column)
        text = str(constraint)
        if constraint.key() in seen:
            diagnostics.append(
                make(
                    "DC007",
                    f"duplicate data constraint: {text}",
                    subject=text,
                    span=span,
                    source="data-constraint",
                )
            )
            continue
        seen.add(constraint.key())

        known_anywhere = schema is not None or data_graph is not None
        in_schema = constraint.collection in schema_collections
        in_data = data_graph is not None and data_graph.has_collection(
            constraint.collection
        )
        if known_anywhere and not in_schema and not in_data:
            diagnostics.append(
                make(
                    "DC002",
                    f"data constraint {text} names collection "
                    f"{constraint.collection!r}, which exists in neither "
                    "the site schema nor the data graph: it can never "
                    "apply to any subject",
                    subject=text,
                    span=span,
                    source="data-constraint",
                )
            )
            continue
        if (
            constraint.kind in _VALUE_KINDS
            and known_anywhere
            and constraint.label not in schema_labels
            and (data_graph is None or not _data_has_label(data_graph, constraint.label))
        ):
            diagnostics.append(
                make(
                    "DC003",
                    f"data constraint {text} names edge label "
                    f"{constraint.label!r}, which no schema edge or data "
                    "edge carries: the constraint can never fire",
                    subject=text,
                    span=span,
                    source="data-constraint",
                )
            )
            continue

        if (
            constraint.kind == "required"
            and schema is not None
            and required_guaranteed(schema, constraint.collection, constraint.label)
        ):
            bump(counters, "refuted")
            diagnostics.append(
                make(
                    "DC005",
                    f"data constraint {text} can never be violated: every "
                    f"creation of {constraint.collection!r} carries an "
                    f"unconditional {constraint.label!r} edge in the "
                    "mapping queries",
                    subject=text,
                    span=span,
                    source="data-constraint",
                )
            )
            continue

        if checker is not None and in_data:
            if checker.refuted_on_data(constraint):
                bump(counters, "refuted")
                diagnostics.append(
                    make(
                        "DC005",
                        f"data constraint {text} cannot be violated by the "
                        "current data graph: the per-label value index "
                        "proves every value admissible",
                        subject=text,
                        span=span,
                        source="data-constraint",
                    )
                )
                continue
            violations = []
            for oid in data_graph.collection(constraint.collection):
                bump(counters, "checked")
                violation = checker.check_subject(constraint, oid)
                if violation is not None:
                    bump(counters, "violated")
                    violations.append(violation)
            if violations:
                first = violations[0]
                diagnostics.append(
                    make(
                        "DC004",
                        f"data constraint {text} is violated by "
                        f"{len(violations)} member(s) of "
                        f"{constraint.collection!r}; first: "
                        f"{first.subject.name}: {first.message}",
                        subject=text,
                        span=span,
                        source="data-constraint",
                    )
                )
                continue
        diagnostics.append(
            make(
                "DC006",
                f"data constraint {text} is not statically decidable; it "
                "will be enforced at ingest time",
                subject=text,
                span=span,
                source="data-constraint",
            )
        )
    return diagnostics


def _data_has_label(graph: Graph, label: str) -> bool:
    return graph.label_cardinality(label) > 0
