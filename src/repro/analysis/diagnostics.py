"""The shared diagnostic model of the site analyzer.

Every analysis pass -- query type checking, schema reachability, template
linting, constraint verification, and the post-build audit bridge -- emits
:class:`Diagnostic` records with a *stable code* (``SQ001``, ``TPL002``,
``SCH003``...), a severity, a human message, and a source :class:`Span`
taken from the lexers' line/column tokens.  Stable codes make findings
greppable, suppressible, and renderable to SARIF for CI annotation.

Code families:

=======  ==============================================================
``SQ``   STRUQL query checks (syntax, labels, arity, variables, joins)
``SCH``  site-schema checks (reachability, dead links, dead collects)
``TPL``  template checks (the re-hosted template linter)
``CON``  integrity-constraint checks (static verification outcomes)
``AUD``  generation-time audit findings (bridged post-build)
=======  ==============================================================

The registry in :data:`RULES` is the single source of truth for the code
table rendered in docs and in SARIF ``rules`` metadata.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` for this severity."""
        return {"error": "error", "warning": "warning", "info": "note"}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Span:
    """A source location: file (or pseudo-file like ``<query>``) plus the
    1-based line/column of the first offending token (0 = unknown)."""

    file: str = ""
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        if not self.file and not self.line:
            return ""
        where = self.file or "<input>"
        if self.line:
            where += f":{self.line}"
            if self.column:
                where += f":{self.column}"
        return where

    def __bool__(self) -> bool:
        return bool(self.file or self.line)


@dataclass(frozen=True)
class Rule:
    """Metadata for one diagnostic code (for docs and SARIF rules).

    ``help`` is the longer remediation text rendered as the SARIF
    ``fullDescription``; rules without one fall back to ``summary``.
    """

    code: str
    name: str
    summary: str
    default_severity: Severity
    help: str = ""


def _rule(
    code: str, name: str, summary: str, severity: Severity, help: str = ""
) -> Tuple[str, Rule]:
    return code, Rule(
        code=code, name=name, summary=summary, default_severity=severity, help=help
    )


#: The full rule registry: code -> :class:`Rule`.
RULES: Dict[str, Rule] = dict(
    [
        # --- STRUQL query checks ----------------------------------- #
        _rule("SQ000", "syntax-error",
              "The STRUQL query does not parse.", Severity.ERROR),
        _rule("SQ001", "unknown-edge-label",
              "An edge condition uses a label absent from the data graph.",
              Severity.ERROR),
        _rule("SQ002", "skolem-arity-mismatch",
              "A Skolem function is applied with inconsistent arity.",
              Severity.ERROR),
        _rule("SQ003", "unused-variable",
              "A where-clause variable is bound but never used.",
              Severity.WARNING),
        _rule("SQ004", "unbound-variable",
              "A construction clause uses a variable no where-clause binds.",
              Severity.ERROR),
        _rule("SQ005", "unsatisfiable-conjunction",
              "A block's conditions can never hold simultaneously.",
              Severity.ERROR),
        _rule("SQ006", "cartesian-product",
              "A block's conditions split into unjoined groups.",
              Severity.WARNING),
        _rule("SQ007", "unknown-collection",
              "A membership condition names a collection absent from the "
              "data graph.", Severity.ERROR),
        # --- site-schema checks ------------------------------------ #
        _rule("SCH001", "unreachable-page-type",
              "A Skolem function (page type) is not reachable from any "
              "root in the site schema.", Severity.ERROR),
        _rule("SCH002", "dead-link-clause",
              "A link clause sits in a block that can never produce "
              "bindings.", Severity.ERROR),
        _rule("SCH003", "collect-never-fires",
              "A collect clause sits in a block that can never produce "
              "bindings.", Severity.ERROR),
        _rule("SCH004", "no-root-page-type",
              "No zero-argument Skolem function or explicit root exists; "
              "the site has no entry page.", Severity.ERROR),
        # --- template checks --------------------------------------- #
        _rule("TPL001", "unknown-attribute",
              "A template attribute expression matches no site-schema "
              "edge: the page will render empty there.", Severity.ERROR),
        _rule("TPL002", "unknowable-attribute",
              "A template attribute step depends on data-driven (arc "
              "variable) labels and cannot be checked statically.",
              Severity.INFO),
        _rule("TPL003", "unknown-page-type",
              "A template is attached to a page type or collection the "
              "site schema does not define.", Severity.WARNING),
        _rule("TPL004", "template-syntax-error",
              "A template file does not parse.", Severity.ERROR),
        # --- constraint checks ------------------------------------- #
        _rule("CON001", "malformed-constraint",
              "An integrity constraint does not parse.", Severity.ERROR,
              help="Fix the formula at the reported line/column; "
                   "constraints are declared one per line."),
        _rule("CON002", "constraint-verified",
              "The constraint holds on every site this query can "
              "generate.", Severity.INFO,
              help="Proven from the site query's structure alone -- no "
                   "generation-time model check is needed."),
        _rule("CON003", "constraint-unverifiable",
              "Static analysis cannot decide the constraint; it will be "
              "model-checked after each build.", Severity.WARNING,
              help="The audit bridge reports AUD004 if the materialized "
                   "site graph violates it."),
        _rule("CON004", "constraint-refuted",
              "No site this query generates can satisfy the constraint "
              "(no schema path matches the required pattern).",
              Severity.ERROR,
              help="Either the constraint or the site query is wrong: "
                   "the schema admits no path matching the pattern."),
        _rule("CON005", "constraint-vacuous",
              "The constraint names a class no collection or Skolem "
              "function defines; it holds only vacuously.",
              Severity.WARNING,
              help="Check the class name against the site query's Skolem "
                   "functions and collect clauses."),
        # --- data-constraint checks -------------------------------- #
        _rule("DC001", "malformed-data-constraint",
              "A data-constraint declaration does not parse.",
              Severity.ERROR,
              help="Fix the declaration at the reported line/column; the "
                   "parser resynchronizes at the next keyword, so later "
                   "rules in the file were still checked."),
        _rule("DC002", "unknown-constraint-collection",
              "A data constraint names a collection neither the site "
              "schema nor the data graph defines.", Severity.WARNING,
              help="The constraint can never apply to any subject. Check "
                   "the collection name against the wrapper output and "
                   "the mediator's mapping queries."),
        _rule("DC003", "unknown-constraint-label",
              "A data constraint names an edge label absent from both "
              "the site schema and the data graph.", Severity.WARNING,
              help="A value constraint on a label no edge carries can "
                   "never fire; a required constraint on it would flag "
                   "every member instead."),
        _rule("DC004", "data-constraint-violated",
              "Members of the data graph violate a declared data "
              "constraint.", Severity.ERROR,
              help="Run 'repro ingest --constraints' to quarantine the "
                   "violating records with provenance, or fix the source "
                   "data."),
        _rule("DC005", "data-constraint-refuted",
              "The constraint can never be violated: proven by the "
              "mapping queries' structure or by the value index.",
              Severity.INFO,
              help="A schema proof holds for every future dataset; a "
                   "value-index proof holds for the current data graph "
                   "and lets checkers skip the member scan."),
        _rule("DC006", "data-constraint-dynamic",
              "Static analysis cannot decide the constraint; it will be "
              "enforced at ingest time.", Severity.INFO,
              help="The ingest gate and the incremental checker evaluate "
                   "it per subject; this is the normal case for "
                   "expression constraints."),
        _rule("DC007", "duplicate-data-constraint",
              "The same data constraint is declared more than once.",
              Severity.WARNING,
              help="Identical declarations are checked once; remove the "
                   "duplicate to keep counters meaningful."),
        # --- generation-time audit bridge -------------------------- #
        _rule("AUD001", "dangling-link",
              "A generated page links to a page that was never generated.",
              Severity.ERROR),
        _rule("AUD002", "unreachable-generated-page",
              "A site-graph node with a template is not reachable from "
              "any generated page.", Severity.WARNING),
        _rule("AUD003", "empty-page",
              "A generated page rendered with no visible text.",
              Severity.WARNING),
        _rule("AUD004", "constraint-violated",
              "An integrity constraint failed on the materialized site "
              "graph.", Severity.ERROR),
    ]
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    ``subject`` names what the finding is about (a Skolem function, a
    template, a collection, a constraint) -- it is the key the suppression
    mechanism matches on, and what deduplication compares.  The span is
    excluded from equality so the same finding reported from two passes
    deduplicates.
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""
    span: Span = field(compare=False, default=Span())
    #: which pass produced it ("query", "schema", "template", ...).
    source: str = field(compare=False, default="")

    def __str__(self) -> str:
        where = str(self.span)
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.severity}[{self.code}] {self.message}"

    @property
    def rule(self) -> Optional[Rule]:
        return RULES.get(self.code)


class Suppressions:
    """Finding suppression shared by every pass and the audit bridge.

    Specs are ``CODE`` (suppress every finding with that code) or
    ``CODE:subject`` (suppress findings about one subject).  The same
    spec strings work on the CLI (``--suppress``), in the
    :class:`~repro.analysis.analyzer.Analyzer` API, and in the audit
    bridge -- one mechanism, so a finding silenced statically stays
    silenced at generation time.
    """

    def __init__(self, specs: Iterable[str] = ()) -> None:
        self._codes: set = set()
        self._subjects: set = set()
        for spec in specs:
            spec = spec.strip()
            if not spec:
                continue
            if ":" in spec:
                code, subject = spec.split(":", 1)
                self._subjects.add((code.strip(), subject.strip()))
            else:
                self._codes.add(spec)

    def __bool__(self) -> bool:
        return bool(self._codes or self._subjects)

    def matches(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.code in self._codes:
            return True
        return (diagnostic.code, diagnostic.subject) in self._subjects


@dataclass
class DiagnosticReport:
    """All findings of one analyzer run, deduplicated and sortable."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: suppressed findings, kept for accounting (rendered only on demand).
    suppressed: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diagnostic in diagnostics:
            self.add(diagnostic)

    def apply_suppressions(self, suppressions: Suppressions) -> None:
        if not suppressions:
            return
        kept: List[Diagnostic] = []
        for diagnostic in self.diagnostics:
            if suppressions.matches(diagnostic):
                self.suppressed.append(diagnostic)
            else:
                kept.append(diagnostic)
        self.diagnostics = kept

    # ------------------------------------------------------------ #

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist (the CI gate)."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """The CLI/CI exit-code contract: 0 clean, 1 errors found."""
        return 0 if self.ok else 1

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def sorted(self) -> List[Diagnostic]:
        """Findings ordered by file, line, severity, code."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.span.file,
                d.span.line,
                d.span.column,
                d.severity.rank,
                d.code,
            ),
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.errors)} error(s)",
            f"{len(self.warnings)} warning(s)",
            f"{len(self.infos)} note(s)",
        ]
        if self.suppressed:
            parts.append(f"{len(self.suppressed)} suppressed")
        return ", ".join(parts)


def make(
    code: str,
    message: str,
    subject: str = "",
    span: Optional[Span] = None,
    source: str = "",
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the rule registry."""
    rule = RULES.get(code)
    if severity is None:
        severity = rule.default_severity if rule else Severity.WARNING
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        subject=subject,
        span=span or Span(),
        source=source,
    )
