"""Static type checking of STRUQL site-definition queries.

The pass walks the query's block tree once, carrying the enclosing
blocks' bound variables, collection bindings, and constant equalities,
and emits diagnostics against the shared model:

* ``SQ001`` unknown edge label -- an edge condition's constant label does
  not occur in the data graph's label summary (dataguide narrowing: when
  the edge source is collection-bound, the label is first checked against
  the labels actually found on that collection's members);
* ``SQ002`` Skolem arity mismatch -- the same function applied with
  different argument counts;
* ``SQ003`` unused variable -- bound once, consumed nowhere;
* ``SQ004`` unbound variable -- used in a construction clause but bound
  by no enclosing where;
* ``SQ005`` unsatisfiable conjunction -- constant propagation finds
  ``x = "a"`` and ``x = "b"`` (or ``x = "a"`` and ``x != "a"``) in one
  cumulative conjunction;
* ``SQ006`` cartesian product -- a block's conditions split into two or
  more variable-disjoint groups (every pair of their bindings joins);
* ``SQ007`` unknown collection -- a membership condition names a
  collection absent from the data graph.

Blocks whose cumulative conjunction is provably empty (``SQ005``) or
references vocabulary the data graph does not have (error-level
``SQ001``/``SQ007``) are *dead*: their link clauses can never add an edge
(``SCH002``) and their collect clauses can never fire (``SCH003``).  The
set of dead block names is returned so the schema reachability pass can
exclude their edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..repository.summary import LabelSummary
from ..struql.ast import (
    CollectionCond,
    ComparisonCond,
    Condition,
    Const,
    EdgeCond,
    LabelIs,
    NotCond,
    PathCond,
    Program,
    Query,
    SkolemTerm,
    Var,
)
from .diagnostics import Diagnostic, Severity, Span, make


def check_program(
    program: Program,
    summary: Optional[LabelSummary] = None,
    query_file: str = "<query>",
) -> Tuple[List[Diagnostic], FrozenSet[str]]:
    """Check a parsed program; returns (diagnostics, dead block names)."""
    checker = _QueryChecker(summary, query_file)
    for query in program.queries:
        checker.visit(query, _BlockContext())
    checker.check_arities(program)
    return checker.diagnostics, frozenset(checker.dead_blocks)


class _BlockContext:
    """What a block inherits from its enclosing blocks."""

    def __init__(self) -> None:
        self.bound: FrozenSet[str] = frozenset()
        self.collections: Dict[str, str] = {}  # var -> collection
        self.equalities: Dict[str, object] = {}  # var -> constant atom
        self.dead = False

    def child(self) -> "_BlockContext":
        out = _BlockContext()
        out.bound = self.bound
        out.collections = dict(self.collections)
        out.equalities = dict(self.equalities)
        out.dead = self.dead
        return out


class _QueryChecker:
    def __init__(self, summary: Optional[LabelSummary], query_file: str) -> None:
        self.summary = summary
        self.file = query_file
        self.diagnostics: List[Diagnostic] = []
        self.dead_blocks: Set[str] = set()

    def _span(self, node: object) -> Span:
        return Span(
            file=self.file,
            line=getattr(node, "line", 0),
            column=getattr(node, "column", 0),
        )

    def _note(
        self,
        code: str,
        message: str,
        subject: str = "",
        node: object = None,
        severity: Optional[Severity] = None,
    ) -> None:
        diagnostic = make(
            code,
            message,
            subject=subject,
            span=self._span(node) if node is not None else Span(file=self.file),
            source="query",
            severity=severity,
        )
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    # ------------------------------------------------------------ #
    # block walk

    def visit(self, block: Query, context: _BlockContext) -> None:
        child = context.child()
        child.bound = context.bound | block.where_variables()

        own_dead = False
        for condition in block.where:
            if self._check_condition(condition, child):
                own_dead = True
        child.dead = child.dead or own_dead

        self._check_unbound(block, child.bound)
        self._check_joins(block, context.bound)
        self._check_unused(block, context.bound)

        if child.dead:
            if block.name:
                self.dead_blocks.add(block.name)
            self._note_dead_clauses(block)
        for nested in block.blocks:
            self.visit(nested, child)

    # ------------------------------------------------------------ #
    # per-condition vocabulary and satisfiability checks

    def _check_condition(self, condition: Condition, context: _BlockContext) -> bool:
        """Check one condition; returns True when it kills the block."""
        dead = False
        if isinstance(condition, CollectionCond):
            context.collections.setdefault(condition.var.name, condition.collection)
            if (
                self.summary is not None
                and condition.collection not in self.summary.collections
            ):
                self._note(
                    "SQ007",
                    f"unknown collection {condition.collection!r}: the data "
                    f"graph defines {_shortlist(self.summary.collections)}",
                    subject=condition.collection,
                    node=condition,
                )
                dead = True
        elif isinstance(condition, EdgeCond):
            if isinstance(condition.label, str) and self.summary is not None:
                dead = self._check_edge_label(condition, context) or dead
        elif isinstance(condition, PathCond):
            if self.summary is not None:
                self._check_path_labels(condition)
        elif isinstance(condition, ComparisonCond):
            dead = self._propagate_comparison(condition, context) or dead
        elif isinstance(condition, NotCond):
            # negations cannot make the block dead (they only filter);
            # still surface unknown vocabulary inside them as warnings.
            for inner in condition.inner:
                if isinstance(inner, EdgeCond) and isinstance(inner.label, str):
                    if (
                        self.summary is not None
                        and inner.label not in self.summary.labels
                    ):
                        self._note(
                            "SQ001",
                            f"label {inner.label!r} inside not(...) never "
                            "occurs in the data graph: the negation is "
                            "always true",
                            subject=inner.label,
                            node=inner,
                            severity=Severity.WARNING,
                        )
        return dead

    def _check_edge_label(self, condition: EdgeCond, context: _BlockContext) -> bool:
        label = condition.label
        assert isinstance(label, str) and self.summary is not None
        if label not in self.summary.labels:
            message = (
                f"unknown edge label {label!r}: no edge in the data graph "
                "carries it"
            )
            suggestion = _nearest(label, self.summary.labels)
            if suggestion:
                message += f" (did you mean {suggestion!r}?)"
            self._note("SQ001", message, subject=label, node=condition)
            return True
        collection = context.collections.get(condition.source.name, "")
        if collection and collection in self.summary.collection_labels:
            narrowed = self.summary.collection_labels[collection]
            if label not in narrowed:
                self._note(
                    "SQ001",
                    f"label {label!r} exists in the data graph but on no "
                    f"member of collection {collection!r}",
                    subject=label,
                    node=condition,
                    severity=Severity.WARNING,
                )
        return False

    def _check_path_labels(self, condition: PathCond) -> None:
        assert self.summary is not None
        for leaf in condition.path.predicates():
            if isinstance(leaf, LabelIs) and leaf.label not in self.summary.labels:
                # a star/alternation may still match without this branch,
                # so an unknown leaf label is a warning, not a block killer
                self._note(
                    "SQ001",
                    f"path expression tests label {leaf.label!r}, which no "
                    "edge in the data graph carries",
                    subject=leaf.label,
                    node=condition,
                    severity=Severity.WARNING,
                )

    def _propagate_comparison(
        self, condition: ComparisonCond, context: _BlockContext
    ) -> bool:
        """Constant propagation for SQ005; returns True on contradiction."""
        var, const = None, None
        if isinstance(condition.left, Var) and isinstance(condition.right, Const):
            var, const = condition.left.name, condition.right.atom
        elif isinstance(condition.right, Var) and isinstance(condition.left, Const):
            var, const = condition.right.name, condition.left.atom
        if var is None:
            return False
        if condition.op == "=":
            known = context.equalities.get(var)
            if known is not None and known != const:
                self._note(
                    "SQ005",
                    f"unsatisfiable conjunction: {var} = {known!r} and "
                    f"{var} = {const!r} can never hold together",
                    subject=var,
                    node=condition,
                )
                return True
            context.equalities[var] = const
        elif condition.op == "!=":
            known = context.equalities.get(var)
            if known is not None and known == const:
                self._note(
                    "SQ005",
                    f"unsatisfiable conjunction: {var} = {const!r} and "
                    f"{var} != {const!r} can never hold together",
                    subject=var,
                    node=condition,
                )
                return True
        return False

    # ------------------------------------------------------------ #
    # variable accounting

    def _check_unbound(self, block: Query, scope: FrozenSet[str]) -> None:
        for term in block.create:
            self._note_unbound(term.variables() - scope, term, "create")
        for link in block.link:
            self._note_unbound(link.variables() - scope, link, "link")
        for collect in block.collect:
            self._note_unbound(collect.variables() - scope, collect, "collect")

    def _note_unbound(self, missing: FrozenSet[str], clause: object, kind: str) -> None:
        for name in sorted(missing):
            self._note(
                "SQ004",
                f"variable {name} used in {kind} clause {clause} is bound "
                "by no enclosing where clause",
                subject=name,
                node=clause,
            )

    def _check_unused(self, block: Query, inherited: FrozenSet[str]) -> None:
        introduced = block.where_variables() - inherited
        if not introduced:
            return
        counts: Dict[str, int] = {name: 0 for name in introduced}
        spans: Dict[str, Condition] = {}
        for query in block.walk():
            for condition in query.where:
                for name in condition.variables():
                    if name in counts:
                        counts[name] += 1
                        spans.setdefault(name, condition)
            for term in query.create:
                for name in term.variables():
                    if name in counts:
                        counts[name] += 1
            for link in query.link:
                for name in link.variables():
                    if name in counts:
                        counts[name] += 1
            for collect in query.collect:
                for name in collect.variables():
                    if name in counts:
                        counts[name] += 1
        for name in sorted(introduced):
            if counts[name] <= 1:
                self._note(
                    "SQ003",
                    f"variable {name} is bound but never used in another "
                    "condition or construction clause",
                    subject=name,
                    node=spans.get(name),
                )

    def _check_joins(self, block: Query, inherited: FrozenSet[str]) -> None:
        """Union-find over the block's own conditions: two or more
        variable-disjoint groups multiply out (SQ006)."""
        conditions = [c for c in block.where if c.variables()]
        if len(conditions) < 2:
            return
        parent: Dict[str, str] = {}

        def find(name: str) -> str:
            parent.setdefault(name, name)
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(left: str, right: str) -> None:
            parent[find(left)] = find(right)

        anchor = "<inherited>"
        for condition in conditions:
            names = sorted(condition.variables())
            for name in names[1:]:
                union(names[0], name)
            if any(name in inherited for name in names):
                union(names[0], anchor)
        groups = {find(sorted(c.variables())[0]) for c in conditions}
        if len(groups) > 1:
            self._note(
                "SQ006",
                f"conditions of block {block.name or '<main>'} form "
                f"{len(groups)} unjoined groups: every combination of "
                "their bindings will be produced (cartesian product)",
                subject=block.name or "<main>",
                node=conditions[0],
            )

    def _note_dead_clauses(self, block: Query) -> None:
        where = block.name or "<main>"
        for link in block.link:
            self._note(
                "SCH002",
                f"link clause {link} can never fire: block {where} has an "
                "unsatisfiable or unmatchable where clause",
                subject=str(link),
                node=link,
            )
        for collect in block.collect:
            self._note(
                "SCH003",
                f"collect clause {collect} can never fire: block {where} "
                "has an unsatisfiable or unmatchable where clause",
                subject=collect.collection,
                node=collect,
            )

    # ------------------------------------------------------------ #
    # whole-program Skolem arity check

    def check_arities(self, program: Program) -> None:
        first: Dict[str, Tuple[int, SkolemTerm]] = {}
        for term in _skolem_terms(program):
            arity = len(term.args)
            seen = first.get(term.function)
            if seen is None:
                first[term.function] = (arity, term)
            elif seen[0] != arity:
                self._note(
                    "SQ002",
                    f"Skolem function {term.function} applied with "
                    f"{arity} argument(s) here but {seen[0]} at line "
                    f"{seen[1].line}: one function, one arity",
                    subject=term.function,
                    node=term,
                )


def _skolem_terms(program: Program) -> List[SkolemTerm]:
    terms: List[SkolemTerm] = []
    for query in program.queries:
        for block in query.walk():
            terms.extend(block.create)
            for link in block.link:
                for side in (link.source, link.target):
                    if isinstance(side, SkolemTerm):
                        terms.append(side)
            for collect in block.collect:
                if isinstance(collect.node, SkolemTerm):
                    terms.append(collect.node)
    return terms


def _shortlist(names: FrozenSet[str], limit: int = 6) -> str:
    ordered = sorted(names)
    if len(ordered) > limit:
        ordered = ordered[:limit] + ["..."]
    return "{" + ", ".join(ordered) + "}"


def _nearest(label: str, candidates: FrozenSet[str]) -> str:
    """The candidate with the smallest edit distance, when close enough
    to be a plausible typo (distance <= 2)."""
    best, best_distance = "", 3
    for candidate in candidates:
        distance = _edit_distance(label.lower(), candidate.lower(), best_distance)
        if distance < best_distance:
            best, best_distance = candidate, distance
    return best


def _edit_distance(a: str, b: str, cap: int) -> int:
    if abs(len(a) - len(b)) >= cap:
        return cap
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (char_a != char_b),
                )
            )
        if min(current) >= cap:
            return cap
        previous = current
    return min(previous[-1], cap)
