"""Rendering diagnostic reports: text for terminals, JSON for scripts,
SARIF 2.1.0 for CI code-scanning annotation.

The SARIF output is the minimal valid subset: one run, one tool driver
named ``repro-analyze``, rule metadata from the shared registry, one
result per finding with a ``physicalLocation`` when the span is known.
GitHub's code-scanning upload and the generic SARIF viewers accept it.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .diagnostics import RULES, Diagnostic, DiagnosticReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analyze"


def render_text(report: DiagnosticReport, verbose: bool = False) -> str:
    """Human-readable rendering, one finding per line, summary last."""
    lines = [str(d) for d in report.sorted()]
    if verbose and report.suppressed:
        lines.append("suppressed:")
        lines.extend(f"  {d}" for d in report.suppressed)
    lines.append(report.summary())
    return "\n".join(lines)


def _diagnostic_dict(diagnostic: Diagnostic) -> Dict[str, object]:
    out: Dict[str, object] = {
        "code": diagnostic.code,
        "severity": str(diagnostic.severity),
        "message": diagnostic.message,
    }
    if diagnostic.subject:
        out["subject"] = diagnostic.subject
    if diagnostic.source:
        out["source"] = diagnostic.source
    if diagnostic.span:
        out["span"] = {
            "file": diagnostic.span.file,
            "line": diagnostic.span.line,
            "column": diagnostic.span.column,
        }
    return out


def render_json(report: DiagnosticReport) -> str:
    """Machine-readable rendering: the findings plus summary counts."""
    payload = {
        "diagnostics": [_diagnostic_dict(d) for d in report.sorted()],
        "suppressed": [_diagnostic_dict(d) for d in report.suppressed],
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "notes": len(report.infos),
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules(report: DiagnosticReport) -> List[Dict[str, object]]:
    rules = []
    for code in report.codes():
        rule = RULES.get(code)
        if rule is None:
            rules.append({"id": code})
            continue
        entry: Dict[str, object] = {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": rule.default_severity.sarif_level
            },
        }
        if rule.help:
            entry["fullDescription"] = {"text": rule.help}
        rules.append(entry)
    return rules


def _sarif_result(
    diagnostic: Diagnostic, rule_indexes: Dict[str, int]
) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.sarif_level,
        "message": {"text": diagnostic.message},
    }
    index = rule_indexes.get(diagnostic.code)
    if index is not None:
        result["ruleIndex"] = index
    span = diagnostic.span
    if span:
        region: Dict[str, object] = {}
        if span.line:
            region["startLine"] = span.line
            if span.column:
                region["startColumn"] = span.column
        location: Dict[str, object] = {
            "physicalLocation": {
                "artifactLocation": {"uri": span.file or "<input>"},
            }
        }
        if region:
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
    return result


def render_sarif(report: DiagnosticReport) -> str:
    """SARIF 2.1.0 rendering of all (unsuppressed) findings.

    Each result carries a ``ruleIndex`` into the driver's ``rules``
    array (built from the same ``report.codes()`` ordering), so SARIF
    viewers resolve rule metadata without a linear scan.
    """
    rule_indexes = {code: i for i, code in enumerate(report.codes())}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/strudel-repro/repro"
                        ),
                        "rules": _sarif_rules(report),
                    }
                },
                "results": [
                    _sarif_result(d, rule_indexes) for d in report.sorted()
                ],
            }
        ],
    }
    return json.dumps(document, indent=2)


#: renderer registry for the CLI's ``--format`` flag.
RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
