"""Static checks on the inferred site schema.

"A simple analysis of the query can infer the site schema" (paper
section 2.5) -- and a simple analysis of the *site schema* answers the
structural questions people otherwise answer by clicking around a built
site:

* ``SCH004`` -- no root page type at all: the definition names no
  explicit roots and no Skolem function is zero-argument, so no site
  this query produces has an entry page;
* ``SCH001`` -- a page type (Skolem function) not reachable from any
  root over *live* edges.  Edges whose governing block is dead (see
  :mod:`repro.analysis.query_checks`) cannot occur in any generated
  site, so they do not count toward reachability.

Pages collected into output collections but never linked are genuinely
unreachable by browsing -- exactly what this check is for -- so being
collected does not rescue a page type from ``SCH001``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..core.schema import NS, SiteSchema
from .diagnostics import Diagnostic, Span, make


def root_functions(
    schema: SiteSchema, roots: Sequence[str] = ()
) -> List[str]:
    """The schema's root page types: explicit root names (``RootPage()``
    or bare function names) when given, else every zero-argument Skolem
    function -- mirroring the builder's default-root rule."""
    if roots:
        names = []
        for root in roots:
            name = str(root).split("(", 1)[0]
            if name in schema.functions and name not in names:
                names.append(name)
        return names
    defaults = []
    for function in schema.functions:
        creations = schema.creations_of(function)
        if creations and all(not c.args for c in creations):
            defaults.append(function)
    return defaults


def check_schema(
    schema: SiteSchema,
    roots: Sequence[str] = (),
    dead_blocks: FrozenSet[str] = frozenset(),
    query_file: str = "<query>",
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if not schema.functions:
        return diagnostics

    starts = root_functions(schema, roots)
    if not starts:
        diagnostics.append(
            make(
                "SCH004",
                "no root page type: no zero-argument Skolem function "
                "exists and no explicit roots were given",
                subject="<roots>",
                span=Span(file=query_file),
                source="schema",
            )
        )
        return diagnostics

    reachable = _reachable(schema, starts, dead_blocks)
    for function in schema.functions:
        if function in reachable:
            continue
        creation = next(iter(schema.creations_of(function)), None)
        diagnostics.append(
            make(
                "SCH001",
                f"page type {function} is not reachable from any root "
                f"({', '.join(starts)}) in the site schema: no browsing "
                "path leads to these pages",
                subject=function,
                span=Span(
                    file=query_file,
                    line=getattr(creation, "line", 0),
                    column=getattr(creation, "column", 0),
                ),
                source="schema",
            )
        )
    return diagnostics


def _reachable(
    schema: SiteSchema,
    starts: Iterable[str],
    dead_blocks: FrozenSet[str],
) -> FrozenSet[str]:
    seen = set(starts)
    queue = list(starts)
    while queue:
        current = queue.pop()
        for edge in schema.edges_from(current):
            if dead_blocks and dead_blocks.intersection(edge.query_names):
                continue  # the governing block can never produce bindings
            if edge.target != NS and edge.target not in seen:
                seen.add(edge.target)
                queue.append(edge.target)
    return frozenset(seen)
