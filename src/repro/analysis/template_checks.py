"""The template linter, re-hosted as an analysis pass.

:mod:`repro.template.lint` stays the standalone API (and keeps its own
finding type for backward compatibility); this module converts its
findings to shared diagnostics and adds the assignment-level check the
linter skips:

* ``TPL001`` -- ``unknown-attribute`` lint findings (a typo: the page
  renders empty there);
* ``TPL002`` -- ``unknowable`` lint findings (arc-variable labels, only
  the data decides);
* ``TPL003`` -- a template attached (via collection or object-specific
  assignment) to a page type the site schema does not define: the
  assignment can never be used.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.schema import SiteSchema
from ..template.generator import TemplateSet
from ..template.lint import LintFinding, TemplateLinter
from .diagnostics import Diagnostic, Severity, Span, make

_KIND_TO_CODE = {
    "unknown-attribute": ("TPL001", Severity.ERROR),
    "unknowable": ("TPL002", Severity.INFO),
}


def lint_to_diagnostic(
    finding: LintFinding, files: Optional[Dict[str, str]] = None
) -> Diagnostic:
    """Convert one linter finding to the shared diagnostic model."""
    code, severity = _KIND_TO_CODE.get(
        finding.kind, ("TPL001", Severity.ERROR)
    )
    file = (files or {}).get(finding.template, f"<template:{finding.template}>")
    return make(
        code,
        f"template {finding.template}: <{finding.expression}> -- {finding.detail}",
        subject=f"{finding.template}:{finding.expression}",
        span=Span(file=file, line=finding.line),
        source="template",
        severity=severity,
    )


def check_templates(
    templates: TemplateSet,
    schema: SiteSchema,
    files: Optional[Dict[str, str]] = None,
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    # assignment-level check: templates attached to nothing the schema has
    for collection, template_name in templates._collection_templates.items():
        if collection in schema.collections or collection in schema.functions:
            continue
        file = (files or {}).get(template_name, f"<template:{template_name}>")
        diagnostics.append(
            make(
                "TPL003",
                f"template {template_name} is assigned to {collection!r}, "
                "which is neither an output collection nor a Skolem "
                "function of the site query",
                subject=collection,
                span=Span(file=file),
                source="template",
            )
        )
    for oid_name, template_name in templates._object_templates.items():
        function = oid_name.split("(", 1)[0]
        if function in schema.functions:
            continue
        file = (files or {}).get(template_name, f"<template:{template_name}>")
        diagnostics.append(
            make(
                "TPL003",
                f"template {template_name} is assigned to object "
                f"{oid_name!r}, whose function {function} the site query "
                "never creates",
                subject=oid_name,
                span=Span(file=file),
                source="template",
            )
        )

    # expression-level checks: the existing linter, converted
    report = TemplateLinter(templates, schema).lint()
    for finding in report.findings:
        diagnostic = lint_to_diagnostic(finding, files)
        if diagnostic not in diagnostics:
            diagnostics.append(diagnostic)
    return diagnostics
