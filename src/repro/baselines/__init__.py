"""Baselines the paper compares against (Fig. 8 and section 6.3):
procedural CGI-style generation, DB-with-embedded-query templates,
hand-maintained static HTML, and the maximal-schema relational encoding.
"""

from .family import (
    ITEM_ATTRIBUTES,
    dbtemplate_source,
    dbtemplate_spec_lines,
    family_graph,
    procedural_source,
    procedural_spec_lines,
    run_dbtemplate,
    run_procedural,
    run_strudel,
    static_html_lines,
    strudel_query,
    strudel_spec_lines,
    strudel_templates,
)
from .relational_model import (
    GraphModelReport,
    MaximalSchemaReport,
    graph_model,
    maximal_schema,
)

__all__ = [
    "GraphModelReport",
    "ITEM_ATTRIBUTES",
    "MaximalSchemaReport",
    "dbtemplate_source",
    "dbtemplate_spec_lines",
    "family_graph",
    "graph_model",
    "maximal_schema",
    "procedural_source",
    "procedural_spec_lines",
    "run_dbtemplate",
    "run_procedural",
    "run_strudel",
    "static_html_lines",
    "strudel_query",
    "strudel_spec_lines",
    "strudel_templates",
]
