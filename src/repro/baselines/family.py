"""The Fig. 8 site family: one site, four authoring technologies.

Fig. 8 of the paper categorizes web-creation tools along two axes --
amount of data and structural complexity ("one possible measure of
structural complexity is the number of link clauses in the
site-definition query; an analogous measure ... is the number of CGI-BIN
scripts required") -- and claims Strudel wins the large-data /
complex-structure corner.

To regenerate that figure we need the *same* site expressed in each
technology, at every grid point.  The family: a data graph of N items
(each with a handful of atomic attributes and a group key per structural
feature), and a site with K *features*, where feature k is "a set of
group pages partitioning the items by group key k, each linking to the
item pages, all reachable from the root".  Each feature costs a fixed
number of link clauses, so K is exactly the paper's structural-
complexity axis.

For each technology we generate the authored artifact and count its
non-blank source lines -- the *specification size* a site builder must
write and maintain:

* **Strudel**: the STRUQL query (:func:`strudel_query`) plus the
  templates (:func:`strudel_templates`); evaluated with the real
  pipeline.
* **Procedural (CGI-BIN)**: generated Python source with one render
  function per page type (:func:`procedural_source`), executed via
  :func:`run_procedural`.
* **DB-with-templates (StoryServer style)**: per-page-type HTML
  templates with embedded queries plus a driver loop
  (:func:`dbtemplate_source`), executed via :func:`run_dbtemplate`.
* **Static HTML (WYSIWYG)**: every page is hand-maintained; the
  specification *is* the output, so spec size = total generated HTML
  lines (:func:`static_html_lines`).

All four produce the same page set, asserted in tests.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..graph import Atom, Graph, Oid, integer, string
from ..struql import evaluate, parse, query_bindings
from ..template import TemplateSet, generate_site

#: attributes every item carries (regular part of the family data)
ITEM_ATTRIBUTES = ("title", "body", "rank")

#: One-time substrate each technology needs before the first page exists,
#: in authored lines.  Static HTML needs none (the pages ARE the spec).
#: Strudel needs a wrapper + collection setup (the paper's "simple AWK
#: programs" were a few dozen lines per source); a DB-backed template
#: system needs a schema + loader; a procedural generator needs data
#: access code.  These constants make the Fig. 8 *total* authored cost
#: comparable across technologies; the per-feature growth rates are what
#: the spec-line functions below measure.
SETUP_OVERHEAD = {
    "static HTML": 0,
    "db-template": 35,
    "procedural": 25,
    "strudel": 40,
}


def family_graph(items: int, features: int, seed: int = 0, groups: int = 8) -> Graph:
    """N items, each with base attributes and one group key per feature."""
    rng = random.Random(seed)
    graph = Graph("family")
    graph.create_collection("Items")
    for index in range(items):
        oid = graph.add_node(hint="item")
        graph.add_edge(oid, "title", string(f"Item {index}"))
        graph.add_edge(oid, "body", string(f"Body text of item {index}."))
        graph.add_edge(oid, "rank", integer(rng.randint(1, 100)))
        for feature in range(features):
            graph.add_edge(
                oid, f"g{feature}", string(f"group{rng.randrange(groups)}")
            )
        graph.add_to_collection("Items", oid)
    return graph


# -------------------------------------------------------------------- #
# Strudel


def strudel_query(features: int) -> str:
    """The family's STRUQL site definition with K features."""
    lines = [
        "create RootPage()",
        "where Items(x), x -> l -> v",
        "create ItemPage(x)",
        "link ItemPage(x) -> l -> v",
        "collect ItemPages(ItemPage(x))",
    ]
    for feature in range(features):
        group = f"Group{feature}Page(g)"
        lines.extend(
            [
                f'{{ where x -> "g{feature}" -> g',
                f"  create {group}",
                f'  link {group} -> "Item" -> ItemPage(x), {group} -> "Key" -> g, '
                f'RootPage() -> "Group{feature}" -> {group}',
                f"  collect Group{feature}Pages({group}) }}",
            ]
        )
    return "\n".join(lines) + "\n"


def strudel_templates(features: int) -> TemplateSet:
    """Templates for the family site."""
    templates = TemplateSet()
    root_sections = "\n".join(
        f"<h2>By key {feature}</h2><SFMT Group{feature} UL ORDER=ascend KEY=Key>"
        for feature in range(features)
    )
    templates.add(
        "root",
        f"<html><head><title>Family site</title></head><body>\n"
        f"<h1>Items</h1>\n{root_sections}\n</body></html>\n",
    )
    templates.add(
        "group",
        "<html><head><title>Group <SFMT Key></title></head><body>\n"
        "<h1>Group <SFMT Key></h1>\n<SFMT Item UL>\n</body></html>\n",
    )
    templates.add(
        "item",
        "<html><head><title><SFMT title></title></head><body>\n"
        "<h1><SFMT title></h1>\n<p><SFMT body></p>\n"
        "<p>rank <SFMT rank></p>\n</body></html>\n",
    )
    templates.for_object("RootPage()", "root")
    templates.for_collection("ItemPages", "item")
    for feature in range(features):
        templates.for_collection(f"Group{feature}Pages", "group")
    return templates


def run_strudel(graph: Graph, features: int) -> Dict[str, str]:
    """Evaluate the family site with the real pipeline; returns pages."""
    site_graph = evaluate(parse(strudel_query(features)), graph)
    site = generate_site(site_graph, strudel_templates(features), ["RootPage()"])
    return site.pages


def strudel_spec_lines(features: int) -> int:
    """Authored lines of the Strudel spec: query + templates."""
    query_lines = _count_lines(strudel_query(features))
    templates = strudel_templates(features)
    return query_lines + templates.total_source_lines()


# -------------------------------------------------------------------- #
# Procedural (CGI-BIN scripts)


def procedural_source(features: int) -> str:
    """Python source for the CGI-style generator: one function per page
    type, one script-like driver, mirroring how the official AT&T site
    was generated by "a large set of CGI-BIN scripts"."""
    parts: List[str] = [
        "def _attr(graph, oid, label):",
        "    value = graph.attribute(oid, label)",
        "    return '' if value is None else str(value)",
        "",
        "def _item_filename(oid):",
        "    return 'item_' + ''.join(ch if ch.isalnum() else '_' for ch in oid.name) + '.html'",
        "",
        "def render_item(graph, oid):",
        "    title = _attr(graph, oid, 'title')",
        "    body = _attr(graph, oid, 'body')",
        "    rank = _attr(graph, oid, 'rank')",
        "    return ('<html><head><title>' + title + '</title></head><body>'",
        "            + '<h1>' + title + '</h1><p>' + body + '</p>'",
        "            + '<p>rank ' + rank + '</p></body></html>')",
        "",
    ]
    for feature in range(features):
        parts.extend(
            [
                f"def collect_groups_{feature}(graph):",
                "    groups = {}",
                "    for oid in graph.collection('Items'):",
                f"        for value in graph.targets(oid, 'g{feature}'):",
                "            groups.setdefault(str(value), []).append(oid)",
                "    return groups",
                "",
                f"def render_group_{feature}(graph, key, members):",
                "    links = ''.join('<li><a href=\"' + _item_filename(m) + '\">'",
                "                    + _attr(graph, m, 'title') + '</a></li>'",
                "                    for m in members)",
                "    return ('<html><head><title>Group ' + key + '</title></head><body>'",
                "            + '<h1>Group ' + key + '</h1><ul>' + links + '</ul></body></html>')",
                "",
            ]
        )
    parts.extend(
        [
            "def render_root(graph):",
            "    sections = []",
        ]
    )
    for feature in range(features):
        parts.extend(
            [
                f"    groups = collect_groups_{feature}(graph)",
                f"    links = ''.join('<li><a href=\"group{feature}_' + key + '.html\">' + key + '</a></li>'",
                "                    for key in sorted(groups))",
                f"    sections.append('<h2>By key {feature}</h2><ul>' + links + '</ul>')",
            ]
        )
    parts.extend(
        [
            "    return ('<html><head><title>Family site</title></head><body><h1>Items</h1>'",
            "            + ''.join(sections) + '</body></html>')",
            "",
            "def generate(graph):",
            "    pages = {}",
            "    pages['index.html'] = render_root(graph)",
            "    for oid in graph.collection('Items'):",
            "        pages[_item_filename(oid)] = render_item(graph, oid)",
        ]
    )
    for feature in range(features):
        parts.extend(
            [
                f"    for key, members in collect_groups_{feature}(graph).items():",
                f"        pages['group{feature}_' + key + '.html'] = render_group_{feature}(graph, key, members)",
            ]
        )
    parts.append("    return pages")
    return "\n".join(parts) + "\n"


def run_procedural(graph: Graph, features: int) -> Dict[str, str]:
    """Execute the generated procedural source against the graph."""
    namespace: Dict[str, object] = {}
    exec(procedural_source(features), namespace)  # noqa: S102 - our own source
    generate: Callable[[Graph], Dict[str, str]] = namespace["generate"]  # type: ignore[assignment]
    return generate(graph)


def procedural_spec_lines(features: int) -> int:
    """Authored lines of the CGI-style generator source."""
    return _count_lines(procedural_source(features))


# -------------------------------------------------------------------- #
# DB + embedded-query templates (StoryServer style)


def dbtemplate_source(features: int) -> List[Tuple[str, str, str]]:
    """Per-page-type (name, embedded query, HTML template) triples plus a
    driver description.  Pages are built one at a time by evaluating the
    embedded query and splicing results -- no site graph, no declarative
    structure; inter-page linking is hand-coded in the templates."""
    specs: List[Tuple[str, str, str]] = []
    specs.append(
        (
            "item",
            "where Items(x), x -> \"title\" -> t, x -> \"body\" -> b, x -> \"rank\" -> r",
            "<html><head><title>{t}</title></head><body>\n"
            "<h1>{t}</h1>\n<p>{b}</p>\n<p>rank {r}</p>\n</body></html>",
        )
    )
    for feature in range(features):
        specs.append(
            (
                f"group{feature}",
                f"where Items(x), x -> \"g{feature}\" -> g, x -> \"title\" -> t",
                "<html><head><title>Group {g}</title></head><body>\n"
                "<h1>Group {g}</h1>\n<ul>{item_links}</ul>\n</body></html>",
            )
        )
    root_template_lines = ["<html><head><title>Family site</title></head><body>",
                           "<h1>Items</h1>"]
    for feature in range(features):
        root_template_lines.append(
            f"<h2>By key {feature}</h2>" + "<ul>{group%d_links}</ul>" % feature
        )
    root_template_lines.append("</body></html>")
    specs.append(("root", "", "\n".join(root_template_lines)))
    return specs


def run_dbtemplate(graph: Graph, features: int) -> Dict[str, str]:
    """Drive the embedded-query templates to produce the same page set."""
    pages: Dict[str, str] = {}
    item_rows = query_bindings(
        'where Items(x), x -> "title" -> t, x -> "body" -> b, x -> "rank" -> r',
        graph,
    )

    def item_filename(oid: Oid) -> str:
        safe = "".join(ch if ch.isalnum() else "_" for ch in oid.name)
        return f"item_{safe}.html"

    for row in item_rows:
        oid = row["x"]
        assert isinstance(oid, Oid)
        pages[item_filename(oid)] = (
            f"<html><head><title>{row['t']}</title></head><body>\n"
            f"<h1>{row['t']}</h1>\n<p>{row['b']}</p>\n"
            f"<p>rank {row['r']}</p>\n</body></html>"
        )
    root_sections: List[str] = []
    for feature in range(features):
        group_rows = query_bindings(
            f'where Items(x), x -> "g{feature}" -> g, x -> "title" -> t', graph
        )
        by_group: Dict[str, List[Tuple[Oid, str]]] = {}
        for row in group_rows:
            oid = row["x"]
            assert isinstance(oid, Oid)
            by_group.setdefault(str(row["g"]), []).append((oid, str(row["t"])))
        for key, members in by_group.items():
            links = "".join(
                f'<li><a href="{item_filename(oid)}">{title}</a></li>'
                for oid, title in members
            )
            pages[f"group{feature}_{key}.html"] = (
                f"<html><head><title>Group {key}</title></head><body>\n"
                f"<h1>Group {key}</h1>\n<ul>{links}</ul>\n</body></html>"
            )
        group_links = "".join(
            f'<li><a href="group{feature}_{key}.html">{key}</a></li>'
            for key in sorted(by_group)
        )
        root_sections.append(f"<h2>By key {feature}</h2><ul>{group_links}</ul>")
    pages["index.html"] = (
        "<html><head><title>Family site</title></head><body>"
        "<h1>Items</h1>" + "".join(root_sections) + "</body></html>"
    )
    return pages


def dbtemplate_spec_lines(features: int) -> int:
    """Authored lines of the embedded-query templates plus driver glue."""
    total = 0
    for name, query, template in dbtemplate_source(features):
        total += _count_lines(query) + _count_lines(template)
        total += 4  # the per-page-type driver glue (fetch, loop, splice, emit)
    return total


# -------------------------------------------------------------------- #
# Static HTML (WYSIWYG)


def static_html_lines(pages: Dict[str, str]) -> int:
    """Spec size of the WYSIWYG approach: the site builder maintains every
    page by hand, so the specification is the page set itself."""
    return sum(_count_lines(content) for content in pages.values())


def _count_lines(text: str) -> int:
    return sum(1 for line in text.splitlines() if line.strip())
