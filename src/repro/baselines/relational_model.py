"""The relational/maximal-schema baseline for experiment E8.

Section 6.3 argues semistructured beats relational for Strudel's data:
"Modeling irregular data in an object-oriented model would require either
building an artificial class hierarchy ... or constructing a maximal
schema, where each object has all attributes.  Furthermore, handling
attribute values of different types would be cumbersome."

This module *builds* that maximal-schema encoding from a graph collection
and measures its costs:

* ``null_cells`` / ``null_fraction`` -- cells wasted on padding;
* ``overflow_tables`` -- multi-valued attributes need a side table each
  (1NF), with their row counts;
* ``type_conflicts`` -- columns whose values span several atomic kinds
  (the "address is a string here, a structure there" problem);
* ``schema_migrations`` -- processing objects in arrival order, how many
  times an ALTER TABLE (new column) would have been required after the
  initial load; the graph model's count is 0 by definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph import Atom, Graph, Oid


@dataclass
class MaximalSchemaReport:
    """Costs of the NULL-padded relational encoding of one collection."""

    collection: str
    rows: int = 0
    columns: List[str] = field(default_factory=list)
    null_cells: int = 0
    filled_cells: int = 0
    #: multi-valued attribute -> side-table row count
    overflow_tables: Dict[str, int] = field(default_factory=dict)
    #: column -> set of atomic kinds observed (>1 means a conflict)
    column_kinds: Dict[str, List[str]] = field(default_factory=dict)
    schema_migrations: int = 0
    #: columns present when the schema was first declared (first object)
    initial_columns: int = 0

    @property
    def total_cells(self) -> int:
        return self.rows * len(self.columns)

    @property
    def null_fraction(self) -> float:
        return self.null_cells / self.total_cells if self.total_cells else 0.0

    @property
    def type_conflicts(self) -> List[str]:
        return sorted(
            column for column, kinds in self.column_kinds.items() if len(kinds) > 1
        )

    def as_row(self) -> Dict[str, object]:
        return {
            "collection": self.collection,
            "rows": self.rows,
            "columns": len(self.columns),
            "null %": round(100 * self.null_fraction, 1),
            "overflow tables": len(self.overflow_tables),
            "type conflicts": len(self.type_conflicts),
            "migrations": self.schema_migrations,
        }


def maximal_schema(graph: Graph, collection: str) -> MaximalSchemaReport:
    """Encode a collection relationally and report the costs.

    Objects are processed in collection (insertion) order, simulating the
    paper's iterative wrapper development: the schema is declared from
    the first object, and every attribute that first appears later is one
    schema migration.
    """
    report = MaximalSchemaReport(collection=collection)
    members = graph.collection(collection)
    report.rows = len(members)
    known_columns: Dict[str, None] = {}
    for position, member in enumerate(members):
        labels = graph.labels_of(member)
        for label in labels:
            if label not in known_columns:
                known_columns[label] = None
                if position == 0:
                    report.initial_columns += 1
                else:
                    report.schema_migrations += 1
    report.columns = list(known_columns)

    for member in members:
        member_labels = set(graph.labels_of(member))
        for column in report.columns:
            if column not in member_labels:
                report.null_cells += 1
                continue
            targets = graph.targets(member, column)
            report.filled_cells += 1
            if len(targets) > 1:
                report.overflow_tables[column] = (
                    report.overflow_tables.get(column, 0) + len(targets)
                )
            kinds = report.column_kinds.setdefault(column, [])
            for target in targets:
                kind = target.type.value if isinstance(target, Atom) else "ref"
                if kind not in kinds:
                    kinds.append(kind)
    return report


@dataclass
class GraphModelReport:
    """The semistructured side of the E8 comparison (same units)."""

    collection: str
    objects: int = 0
    edges: int = 0
    schema_migrations: int = 0  # by definition: no schema to migrate

    def as_row(self) -> Dict[str, object]:
        return {
            "collection": self.collection,
            "objects": self.objects,
            "edges": self.edges,
            "null %": 0.0,
            "overflow tables": 0,
            "migrations": self.schema_migrations,
        }


def graph_model(graph: Graph, collection: str) -> GraphModelReport:
    """Measure the graph encoding of the same collection: it stores only
    the edges that exist -- no padding, no side tables, no migrations."""
    report = GraphModelReport(collection=collection)
    for member in graph.collection(collection):
        report.objects += 1
        report.edges += sum(1 for _ in graph.out_edges(member))
    return report
