"""Command-line interface: the Strudel pipeline without writing Python.

Section 7 of the paper: "Developing the appropriate API to STRUDEL may
be the best way to incorporate it into tools that Web-site builders
currently use."  This CLI is that integration surface for shell-based
workflows::

    python -m repro wrap bibtex pubs.bib -o data.ddl
    python -m repro build --data data.ddl --query site.struql \\
                          --templates templates/ -o out/
    python -m repro analyze --query site.struql --templates templates/ \\
                            --data data.ddl --format sarif -o report.sarif
    python -m repro schema site.struql -o schema.dot
    python -m repro check --site site.ddl "forall X (...)"
    python -m repro bindings --data data.ddl 'where Publications(x), ...'
    python -m repro stats data.ddl

Template directories hold ``*.tmpl`` files; a template named after a
collection (``Publications.tmpl``) is attached to that collection, one
named after a Skolem term with ``()`` spelled ``__`` is object-specific
(``RootPage__.tmpl`` -> ``RootPage()``), and ``default.tmpl`` becomes
the fallback.

Exit-code contract (usable as a CI gate): 0 = clean, 1 = error-severity
findings (``analyze``, ``lint``, ``check``, ``build`` with a failing
audit or ``--analyze`` gate), 2 = the command itself failed (bad input
file, syntax error raised outside an analyzed artifact).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import Analyzer, RENDERERS, render_text
from .analysis import load_templates as load_templates_checked
from .core import SiteBuilder, SiteDefinition, SiteSchema, audit, check, verify_static
from .errors import SiteAnalysisError, StrudelError
from .graph import Graph
from .graph.dot import to_dot
from .repository import ddl
from .struql import parse, query_bindings
from .struql import explain as explain_plan
from .template import TemplateSet, lint_templates
from .wrappers import (
    BibtexWrapper,
    DdlWrapper,
    HtmlSiteWrapper,
    RelationalWrapper,
    StructuredFileWrapper,
    Table,
    XmlWrapper,
)

_WRAPPERS = ("bibtex", "csv", "structured", "html", "xml", "ddl")


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _write_output(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)


def _load_graph(path: str) -> Graph:
    return ddl.loads(_read(path), os.path.basename(path))


def _open_data(args: argparse.Namespace):
    """The data graph selected by ``--backend``: ``(graph, sql_repo)``.

    ``memory`` (the default) parses the DDL into the in-memory graph and
    returns ``(graph, None)``.  ``sqlite`` bulk-loads the DDL into a
    SQLite repository -- at ``--db DIR`` if given, else ``:memory:`` --
    and returns the live :class:`~repro.repository.sql.SqlGraph`; query
    evaluation over it picks the STRUQL->SQL pushdown engine
    automatically.
    """
    backend = getattr(args, "backend", "memory") or "memory"
    parsed = _load_graph(args.data)
    if backend == "memory":
        return parsed, None
    from .repository.sql import SqlRepository

    repository = SqlRepository(getattr(args, "db", None))
    name = parsed.name or "data"
    repository.store(name, parsed)
    return repository.fetch(name), repository


def _add_backend_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="data graph storage backend (sqlite enables SQL pushdown)",
    )
    command.add_argument(
        "--db",
        metavar="DIR",
        help="SQLite repository directory for --backend sqlite "
        "(default: a transient in-memory database)",
    )


def _load_templates(directory: str) -> TemplateSet:
    templates = TemplateSet()
    names: List[str] = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".tmpl"):
            continue
        name = entry[: -len(".tmpl")]
        templates.add_file(os.path.join(directory, entry), name)
        names.append(name)
    for name in names:
        if name == "default":
            templates.set_default(name)
        elif name.endswith("__"):
            templates.for_object(name[:-2] + "()", name)
        else:
            templates.for_collection(name, name)
    return templates


# -------------------------------------------------------------------- #
# subcommands


def _make_wrapper(kind: str, source: str):
    """Build the wrapper for one source file (or directory, for html)."""
    if kind == "bibtex":
        return BibtexWrapper(_read(source), source_name=source)
    if kind == "csv":
        name = os.path.basename(source).rsplit(".", 1)[0]
        return RelationalWrapper(
            [Table.from_csv(name, _read(source), strict=False)],
            source_name=source,
        )
    if kind == "structured":
        return StructuredFileWrapper(_read(source), source_name=source)
    if kind == "xml":
        return XmlWrapper(_read(source), source_name=source)
    if kind == "html":
        pages = {}
        for base, _, files in os.walk(source):
            for filename in files:
                if filename.endswith((".html", ".htm")):
                    path = os.path.join(base, filename)
                    pages[os.path.relpath(path, source)] = _read(path)
        return HtmlSiteWrapper(pages, source_name=source)
    if kind == "ddl":
        return DdlWrapper(_read(source), source_name=source)
    raise ValueError(f"unknown wrapper kind {kind!r}")


def _cmd_wrap(args: argparse.Namespace) -> int:
    graph = _make_wrapper(args.kind, args.source).wrap()
    _write_output(ddl.dumps(graph), args.output)
    print(f"wrapped {args.source}: {graph.stats()}", file=sys.stderr)
    return 0


def _parse_source_spec(spec: str):
    """Parse one ``--source NAME=KIND:PATH`` argument."""
    name, sep, rest = spec.partition("=")
    kind, colon, path = rest.partition(":")
    if not sep or not colon or not name or not path:
        raise ValueError(
            f"bad --source {spec!r}: expected NAME=KIND:PATH "
            f"(e.g. pubs=bibtex:pubs.bib)"
        )
    if kind not in _WRAPPERS:
        raise ValueError(
            f"bad --source {spec!r}: unknown kind {kind!r} "
            f"(choose from {', '.join(_WRAPPERS)})"
        )
    return name, kind, path


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Resilient multi-source ingest: build a warehouse from whatever
    survives, report what degraded, and say so in the exit code."""
    from .mediator import Mediator
    from .repository import open_repository
    from .resilience import ResiliencePolicy, ResilienceReport, WrapPolicy

    constraint_policy = None
    constraint_set = _load_data_constraints(args)
    if constraint_set is not None:
        from .constraints import ConstraintPolicy

        constraint_policy = ConstraintPolicy(constraint_set)
    policy = ResiliencePolicy(
        wrap=WrapPolicy.tolerant(args.max_errors, constraints=constraint_policy),
        min_sources=args.min_sources,
    )
    repository = (
        open_repository(args.repository, args.backend)
        if args.repository
        else None
    )
    mediator = Mediator(repository, policy=policy)
    for spec in args.source:
        name, kind, path = _parse_source_spec(spec)
        mediator.add_source(name, _make_wrapper(kind, path))
        mediator.import_source(name)
    warehouse = mediator.materialize(args.name)
    report = (
        ResilienceReport().record_mediation(mediator).record_recoveries()
    )
    _write_output(ddl.dumps(warehouse), args.output)
    if args.report:
        report.save(args.report)
    for line in report.summary_lines():
        print(line, file=sys.stderr)
    if constraint_policy is not None:
        print(
            f"constraints: {constraint_policy.counters.summary()}",
            file=sys.stderr,
        )
    print(f"ingested {args.name}: {warehouse.stats()}", file=sys.stderr)
    return 1 if (report.partial or report.stale) else 0


def _cmd_build(args: argparse.Namespace) -> int:
    data, _ = _open_data(args)
    templates = _load_templates(args.templates)
    definition = SiteDefinition(
        name=args.name,
        query=_read(args.query),
        templates=templates,
        roots=list(args.root) if args.root else [],
        constraints=_load_constraints(args)[0],
    )
    builder = SiteBuilder(data)
    builder.define(definition)
    try:
        built = builder.build(args.name, gate=args.analyze)
    except SiteAnalysisError as error:
        print(render_text(error.report), file=sys.stderr)
        print(f"build of {args.name} blocked: {error}", file=sys.stderr)
        return 1
    built.write(args.output)
    report = audit(built)
    print(f"built {args.name} -> {args.output}", file=sys.stderr)
    print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1


def _load_constraints(args: argparse.Namespace):
    """Constraints from ``--constraint`` flags plus a ``--constraints-file``
    (one per line, ``#`` comments and blanks skipped); returns
    ``(constraints, file_lines)`` with file_lines aligned to the file's
    entries for precise spans."""
    constraints = list(getattr(args, "constraint", None) or [])
    lines = [0] * len(constraints)
    path = getattr(args, "constraints_file", None)
    if path:
        for number, raw in enumerate(_read(path).splitlines(), start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            constraints.append(text)
            lines.append(number)
    return constraints, lines


def _load_data_constraints(args: argparse.Namespace):
    """The declarative data-constraint file named by ``--constraints``
    (``None`` when the flag is absent).  Parsing is error-recovering;
    syntax problems surface as DC001 diagnostics, not exceptions."""
    path = getattr(args, "constraints", None)
    if not path:
        return None
    from .constraints import parse_constraints

    return parse_constraints(_read(path), source=path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    diagnostics_pending = []
    templates = None
    template_files = {}
    if args.templates:
        templates, template_files, diagnostics_pending = load_templates_checked(
            args.templates
        )
    constraints, constraint_lines = _load_constraints(args)
    analyzer = Analyzer(
        query=_read(args.query),
        templates=templates,
        constraints=constraints,
        roots=list(args.root) if args.root else [],
        data_graph=_load_graph(args.data) if args.data else None,
        query_file=args.query,
        constraint_file=args.constraints_file or "<constraints>",
        template_files=template_files,
        constraint_lines=constraint_lines,
        data_constraints=_load_data_constraints(args),
    )
    analyzer.pending = diagnostics_pending
    report = analyzer.run(suppress=args.suppress or [])
    _write_output(RENDERERS[args.format](report) + "\n", args.output)
    if args.output:
        print(report.summary(), file=sys.stderr)
    if args.strict and report.warnings:
        return 1
    return report.exit_code


def _cmd_schema(args: argparse.Namespace) -> int:
    program = parse(_read(args.query))
    schema = SiteSchema.from_program(program)
    if args.format == "dot":
        _write_output(schema.to_dot() + "\n", args.output)
    else:
        _write_output("\n".join(schema.recover_link_expressions()) + "\n", args.output)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    failures = 0
    if args.site:
        graph = _load_graph(args.site)
        for constraint in args.constraint:
            result = check(constraint, graph)
            status = "holds" if result.holds else f"VIOLATED ({result.witness})"
            print(f"{status}: {constraint}")
            if not result.holds:
                failures += 1
    if args.query:
        schema = SiteSchema.from_program(parse(_read(args.query)))
        for constraint in args.constraint:
            verdict = verify_static(constraint, schema)
            print(f"static {verdict.value}: {constraint}")
    return 1 if failures else 0


def _cmd_bindings(args: argparse.Namespace) -> int:
    graph, _ = _open_data(args)
    rows = query_bindings(args.query, graph)
    for row in rows:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
        print(rendered)
    print(f"({len(rows)} rows)", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a site over HTTP until SIGINT (or ``--duration`` expires),
    then drain gracefully: stop accepting, finish queued requests."""
    import signal
    import threading
    import time

    from .serve import ServeCore, SiteServer

    data, _ = _open_data(args)
    templates = _load_templates(args.templates)
    core = ServeCore(
        _read(args.query),
        data,
        templates,
        roots=list(args.root) if args.root else None,
        dynamic=args.dynamic,
        site_name=args.name,
    )
    server = SiteServer(
        core,
        host=args.host,
        port=args.port,
        workers=args.workers,
        admission_limit=args.admission_limit,
        deadline_budget=args.deadline if args.deadline else None,
    )
    server.start()
    mode = "dynamic" if args.dynamic else "static"
    print(
        f"serving {args.name} at {server.url} "
        f"({args.workers} workers, {mode} mode, "
        f"{core.cache.current().page_count} pages warm); Ctrl-C to drain",
        file=sys.stderr,
    )
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    # signal handlers only exist on the main thread; tests drive this
    # function from worker threads and use --duration instead
    restore = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            restore[signum] = signal.signal(signum, _request_stop)
        except ValueError:
            pass
    deadline = time.monotonic() + args.duration if args.duration else None
    try:
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            stop.wait(0.2)
    finally:
        for signum, handler in restore.items():
            signal.signal(signum, handler)
    print("draining in-flight requests...", file=sys.stderr)
    clean = server.stop()
    stats = server.stats()
    core_stats = stats["core"]
    admission = stats["admission"]
    print(
        f"served {core_stats['requests']} requests "
        f"({core_stats['not_found']} not found, "
        f"{admission['shed']} shed, "
        f"{core_stats['refreshes_applied']} refreshes); "
        f"{'clean' if clean else 'timed-out'} shutdown",
        file=sys.stderr,
    )
    return 0 if clean else 1


def _print_serve_stats(url: str) -> None:
    """Fetch and pretty-print a running server's ``/_stats``."""
    import json
    from urllib.request import urlopen

    with urlopen(url.rstrip("/") + "/_stats", timeout=10) as response:
        payload = json.loads(response.read().decode("utf-8"))

    def _walk(node: object, indent: int) -> None:
        if isinstance(node, dict):
            for key in sorted(node):
                value = node[key]
                if isinstance(value, dict):
                    print(f"{'  ' * indent}{key}:")
                    _walk(value, indent + 1)
                else:
                    print(f"{'  ' * indent}{key}: {value}")
        else:
            print(f"{'  ' * indent}{node}")

    _walk(payload, 0)


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.serve:
        _print_serve_stats(args.serve)
        if not args.data:
            return 0
    if not args.data:
        print("repro stats: error: give a DDL file or --serve URL", file=sys.stderr)
        return 2
    graph, sql_repo = _open_data(args)
    print(f"backend: {'sqlite' if sql_repo is not None else 'memory'}")
    if sql_repo is not None:
        print(f"db file size: {sql_repo.file_size()} bytes")
        rows = sql_repo.index_row_counts()
        rendered = " ".join(f"{table}={count}" for table, count in sorted(rows.items()))
        print(f"index rows: {rendered}")
    for key, value in graph.stats().items():
        print(f"{key}: {value}")
    for collection in graph.collection_names():
        print(f"collection {collection}: {graph.collection_cardinality(collection)}")
    print(f"epoch: {graph.epoch}")
    delta = graph.delta_since(0)
    if delta is None:
        print("delta log: truncated (selective refresh would fall back to coarse)")
    else:
        print(f"delta log: {delta.size()} mutations buffered since epoch 0")
    if args.query:
        from .struql import Metrics, make_engine, parse as parse_struql

        text = _read(args.query) if os.path.exists(args.query) else args.query
        conditions = parse_struql(text).queries[0].where
        engine = make_engine(graph)
        for run in ("cold", "warm"):
            engine.metrics = Metrics()
            engine.bindings(conditions)
            metrics = engine.metrics
            print(
                f"{run}: plan_cache_hits={metrics.plan_cache_hits} "
                f"plan_cache_misses={metrics.plan_cache_misses} "
                f"stats_snapshots={metrics.stats_snapshots} "
                f"conditions_evaluated={metrics.conditions_evaluated} "
                f"hash_join_probes={metrics.hash_join_probes} "
                f"dedup_hits={metrics.dedup_hits} "
                f"path_memo_hits={metrics.path_memo_hits}"
            )
            if sql_repo is not None:
                print(
                    f"{run} sql: pushdowns={metrics.sql_pushdowns} "
                    f"pushed_conditions={metrics.sql_pushed_conditions} "
                    f"rows_fetched={metrics.sql_rows_fetched} "
                    f"fallbacks={metrics.sql_fallbacks}"
                )
        cache = engine.plan_cache.stats()
        print(
            f"plan cache: hits={cache['hits']} misses={cache['misses']} "
            f"plans={cache['plans']} nfas={cache['nfas']} "
            f"path_hits={cache['path_hits']} path_misses={cache['path_misses']} "
            f"path_entries={cache['path_entries']} "
            f"sql_hits={cache['sql_hits']} sql_misses={cache['sql_misses']} "
            f"sql_plans={cache['sql_plans']}"
        )
    if getattr(args, "constraints", None):
        from .constraints import ConstraintChecker

        constraint_set = _load_data_constraints(args)
        checker = ConstraintChecker(graph, constraint_set)
        violations = checker.check_all()
        print(f"constraints: {checker.counters.summary()}")
        for violation in violations[:5]:
            print(f"  violated: {violation}")
        if len(violations) > 5:
            print(f"  ... and {len(violations) - 5} more")
    from .repository import statistics_refresh_counters

    refreshes = statistics_refresh_counters()
    print(
        f"stats refresh: full_snapshots={refreshes['stats_full_snapshots']} "
        f"delta_refreshes={refreshes['stats_delta_refreshes']}"
    )
    if args.resilience is not None:
        from .resilience import ResilienceReport

        if args.resilience:
            report = ResilienceReport.load(args.resilience)
        else:
            report = ResilienceReport().record_recoveries().record_slow_queries()
        print("resilience:")
        for line in report.summary_lines():
            print(f"  {line}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    schema = SiteSchema.from_program(parse(_read(args.query)))
    templates = _load_templates(args.templates)
    report = lint_templates(templates, schema)
    for finding in report.findings:
        print(finding)
    print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    graph = _load_graph(args.data) if args.data else None
    text = _read(args.query) if os.path.exists(args.query) else args.query
    print(explain_plan(text, graph, use_indexes=not args.naive))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    graph = _load_graph(args.data)
    _write_output(to_dot(graph, cluster_collections=args.cluster) + "\n", args.output)
    return 0


# -------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Strudel web-site management pipeline"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    wrap = sub.add_parser("wrap", help="wrap a source into DDL")
    wrap.add_argument("kind", choices=_WRAPPERS)
    wrap.add_argument("source", help="source file (or directory for html)")
    wrap.add_argument("-o", "--output", help="output DDL file (default stdout)")
    wrap.set_defaults(func=_cmd_wrap)

    build = sub.add_parser("build", help="build a browsable site")
    build.add_argument("--data", required=True, help="data graph DDL file")
    build.add_argument("--query", required=True, help="STRUQL site definition")
    build.add_argument("--templates", required=True, help="directory of .tmpl files")
    build.add_argument("-o", "--output", required=True, help="output directory")
    build.add_argument("--name", default="site")
    build.add_argument("--root", action="append", help="root object/collection")
    build.add_argument("--constraint", action="append",
                       help="integrity constraint to check after building")
    build.add_argument("--constraints-file",
                       help="file of constraints, one per line")
    build.add_argument("--analyze", action="store_true",
                       help="run static analysis first; refuse to build "
                            "on error-severity findings")
    _add_backend_flags(build)
    build.set_defaults(func=_cmd_build)

    analyze = sub.add_parser(
        "analyze",
        help="statically analyze a site definition (no build)",
    )
    analyze.add_argument("--query", required=True, help="STRUQL site definition")
    analyze.add_argument("--templates", help="directory of .tmpl files")
    analyze.add_argument("--data",
                         help="data graph DDL file (enables vocabulary checks)")
    analyze.add_argument("--constraint", action="append",
                         help="integrity constraint (repeatable)")
    analyze.add_argument("--constraints-file",
                         help="file of constraints, one per line")
    analyze.add_argument("--constraints", metavar="PATH",
                         help="declarative data-constraint file (DC0xx "
                              "checks: static refutation, violations)")
    analyze.add_argument("--root", action="append",
                         help="root object/collection for reachability")
    analyze.add_argument("--format", choices=sorted(RENDERERS), default="text")
    analyze.add_argument("-o", "--output", help="write the report to a file")
    analyze.add_argument("--suppress", action="append", metavar="CODE[:SUBJECT]",
                         help="suppress findings by code or code:subject")
    analyze.add_argument("--strict", action="store_true",
                         help="also exit non-zero on warnings")
    analyze.set_defaults(func=_cmd_analyze)

    schema = sub.add_parser("schema", help="derive the site schema of a query")
    schema.add_argument("query", help="STRUQL file")
    schema.add_argument("--format", choices=("dot", "text"), default="dot")
    schema.add_argument("-o", "--output")
    schema.set_defaults(func=_cmd_schema)

    check_cmd = sub.add_parser("check", help="check integrity constraints")
    check_cmd.add_argument("constraint", nargs="+")
    check_cmd.add_argument("--site", help="materialized site graph DDL")
    check_cmd.add_argument("--query", help="STRUQL file for static verification")
    check_cmd.set_defaults(func=_cmd_check)

    bindings = sub.add_parser("bindings", help="evaluate a where clause")
    bindings.add_argument("--data", required=True)
    bindings.add_argument("query", help="STRUQL text (where clause)")
    _add_backend_flags(bindings)
    bindings.set_defaults(func=_cmd_bindings)

    serve = sub.add_parser(
        "serve",
        help="serve a site over HTTP with a worker pool and live refresh",
    )
    serve.add_argument("--data", required=True, help="data graph DDL file")
    serve.add_argument("--query", required=True, help="STRUQL site definition")
    serve.add_argument("--templates", required=True, help="directory of .tmpl files")
    serve.add_argument("--root", action="append", help="root object/collection")
    serve.add_argument("--name", default="site")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads, each with a warm engine")
    serve.add_argument("--admission-limit", type=int, default=64,
                       help="max in-flight connections before shedding 503s")
    serve.add_argument("--deadline", type=float, default=5.0,
                       help="per-request evaluation budget in seconds; "
                            "expired requests get a structured 504 "
                            "(0 disables deadlines)")
    serve.add_argument("--dynamic", action="store_true",
                       help="render pages at click time instead of "
                            "serving a pre-built generation")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then drain (default: "
                            "until SIGINT)")
    _add_backend_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser("stats", help="size summary of a DDL graph")
    stats.add_argument("data", nargs="?",
                       help="DDL graph file (optional with --serve)")
    stats.add_argument("--serve", metavar="URL",
                       help="fetch and print a running server's /_stats")
    stats.add_argument("--query",
                       help="STRUQL text or file: also report cold/warm "
                            "query-engine cache counters for its where clause")
    stats.add_argument("--constraints", metavar="PATH",
                       help="check a data-constraint file against the "
                            "graph and print checked/violated/refuted "
                            "counters")
    stats.add_argument("--resilience", nargs="?", const="", metavar="REPORT",
                       help="also print resilience counters (quarantines, "
                            "breaker states, recovery events); give the "
                            "JSON report written by 'ingest --report' to "
                            "summarize a past run")
    _add_backend_flags(stats)
    stats.set_defaults(func=_cmd_stats)

    ingest = sub.add_parser(
        "ingest",
        help="resilient multi-source ingest into one warehouse DDL",
    )
    ingest.add_argument("--source", action="append", required=True,
                        metavar="NAME=KIND:PATH",
                        help="a named source (repeatable), e.g. "
                             "pubs=bibtex:pubs.bib")
    ingest.add_argument("-o", "--output", help="warehouse DDL (default stdout)")
    ingest.add_argument("--name", default="data", help="warehouse graph name")
    ingest.add_argument("--max-errors", type=int, default=None, metavar="N",
                        help="per-source quarantine budget: abort a source "
                             "after N bad records (default: unlimited)")
    ingest.add_argument("--min-sources", type=int, default=1, metavar="N",
                        help="minimum surviving sources (default 1)")
    ingest.add_argument("--repository", metavar="DIR",
                        help="repository directory for generational "
                             "persistence and stale fallback")
    ingest.add_argument("--backend", choices=("ddl", "sqlite"), default="ddl",
                        help="repository backend for --repository: "
                             "checksummed DDL files or one SQLite database "
                             "(materializes transactionally in-store)")
    ingest.add_argument("--report", metavar="FILE",
                        help="write the resilience report as JSON")
    ingest.add_argument("--constraints", metavar="PATH",
                        help="declarative data-constraint file: violating "
                             "records are quarantined with provenance")
    ingest.set_defaults(func=_cmd_ingest)

    lint = sub.add_parser("lint", help="check templates against a site schema")
    lint.add_argument("--query", required=True, help="STRUQL site definition")
    lint.add_argument("--templates", required=True, help="directory of .tmpl files")
    lint.set_defaults(func=_cmd_lint)

    explain_cmd = sub.add_parser("explain", help="show a query's execution plan")
    explain_cmd.add_argument("query", help="STRUQL text or file")
    explain_cmd.add_argument("--data", help="DDL graph for statistics")
    explain_cmd.add_argument("--naive", action="store_true",
                             help="plan without indexes (ablation view)")
    explain_cmd.set_defaults(func=_cmd_explain)

    dot = sub.add_parser("dot", help="render a DDL graph as GraphViz")
    dot.add_argument("data")
    dot.add_argument("--cluster", action="store_true",
                     help="group collection members into clusters")
    dot.add_argument("-o", "--output")
    dot.set_defaults(func=_cmd_dot)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 1 findings/violations (gate-style failures
    reported by the subcommands themselves), 2 the command crashed on
    bad input (unreadable file, syntax error outside analyzed artifacts).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (StrudelError, OSError, ValueError, KeyError) as error:
        # one-line diagnostic, never a traceback
        detail = str(error) or type(error).__name__
        print(f"repro {args.command}: error: {detail}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
