"""Declarative data constraints over collections and edge labels.

One vocabulary (``required`` / ``exclusive`` / ``range`` / ``regexp`` /
``max_len`` / ``expression``), enforced in three layers:

* **statically** by the analyzer's ``DC0xx`` rule family, which refutes
  constraints the mapping queries or current data can never violate;
* **at ingest** by a quarantine gate on the wrapper/mediator path, so
  violating records become quarantined records with provenance;
* **incrementally** on warm graphs by the delta-driven
  :class:`IncrementalChecker`, which re-checks only delta-touched
  subjects.
"""

from .checker import ConstraintChecker, value_problem
from .gate import ConstraintPolicy, apply_constraint_gate
from .incremental import IncrementalChecker
from .model import (
    KINDS,
    CheckCounters,
    ConstraintSet,
    DataConstraint,
    ParseIssue,
    Violation,
    global_counters,
    reset_global_counters,
)
from .parser import SUBJECT_VAR, parse_constraints

__all__ = [
    "KINDS",
    "SUBJECT_VAR",
    "CheckCounters",
    "ConstraintChecker",
    "ConstraintPolicy",
    "ConstraintSet",
    "DataConstraint",
    "IncrementalChecker",
    "ParseIssue",
    "Violation",
    "apply_constraint_gate",
    "global_counters",
    "parse_constraints",
    "reset_global_counters",
    "value_problem",
]
