"""Checking data constraints against a materialized graph.

One :class:`ConstraintChecker` evaluates a
:class:`~repro.constraints.model.ConstraintSet` over one graph.  The
per-subject verdict functions are deliberately order-independent --
``exclusive`` blames every holder of a shared value except the
lexicographically-least member -- so a full check and an incremental
re-check (which visits subjects in different orders) agree exactly.

The checker also implements the *data refutation* fast path: for the
value-shaped kinds (``range``/``regexp``/``max_len``/``exclusive``)
the graph's incrementally-maintained per-label value index can prove,
without visiting any member, that no subject can currently violate the
constraint.  The analyzer surfaces such proofs as ``DC005`` and the
ingest gate skips the member scan.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..graph import Atom, Graph, Oid
from ..struql.eval import QueryEngine, make_engine
from ..struql.footprint import Footprint
from .model import (
    CheckCounters,
    ConstraintSet,
    DataConstraint,
    Violation,
    global_counters,
)
from .parser import SUBJECT_VAR


def bump(counters: CheckCounters, name: str, amount: int = 1) -> None:
    """Increment one counter on ``counters`` and on the process-wide
    registry (``repro stats`` reads the latter)."""
    setattr(counters, name, getattr(counters, name) + amount)
    registry = global_counters()
    if registry is not counters:
        setattr(registry, name, getattr(registry, name) + amount)

_PATTERNS: Dict[str, "re.Pattern"] = {}


def _compiled(pattern: str) -> "re.Pattern":
    cached = _PATTERNS.get(pattern)
    if cached is None:
        cached = re.compile(pattern)
        _PATTERNS[pattern] = cached
    return cached


def value_problem(constraint: DataConstraint, atom: Atom) -> Optional[str]:
    """Why one atomic value violates a value-shaped constraint
    (None = the value is fine).  Shared by the full checker, the
    incremental checker, and the analyzer's value-index refutation."""
    if constraint.kind == "range":
        number = atom.as_number()
        if number is None:
            return f"{constraint.label} value {atom.as_string()!r} is not numeric"
        if number < constraint.low or number > constraint.high:
            return (
                f"{constraint.label} value {atom.as_string()} outside "
                f"[{constraint.low:g}, {constraint.high:g}]"
            )
        return None
    if constraint.kind == "regexp":
        if _compiled(constraint.pattern).fullmatch(atom.as_string()) is None:
            return (
                f"{constraint.label} value {atom.as_string()!r} does not "
                f"match /{constraint.pattern}/"
            )
        return None
    if constraint.kind == "max_len":
        rendered = atom.as_string()
        if len(rendered) > constraint.limit:
            return (
                f"{constraint.label} value of length {len(rendered)} "
                f"exceeds max_len {constraint.limit}"
            )
        return None
    return None


class ConstraintChecker:
    """Evaluates every constraint of a set against one graph."""

    def __init__(
        self,
        graph: Graph,
        constraint_set: ConstraintSet,
        counters: Optional[CheckCounters] = None,
    ) -> None:
        self.graph = graph
        self.set = constraint_set
        self.counters = counters if counters is not None else CheckCounters()
        self._engine: Optional[QueryEngine] = None

    # ------------------------------------------------------------ #
    # per-subject verdicts

    def engine(self) -> QueryEngine:
        if self._engine is None:
            self._engine = make_engine(self.graph)
        return self._engine

    def check_subject(
        self,
        constraint: DataConstraint,
        oid: Oid,
        footprint: Optional[Footprint] = None,
    ) -> Optional[Violation]:
        """The verdict for one member (None = satisfied).

        ``footprint`` optionally records what an ``expression``
        evaluation read (the incremental checker's dependence set).
        """
        graph = self.graph
        kind = constraint.kind
        if kind == "required":
            if not graph.targets(oid, constraint.label):
                return Violation(
                    constraint, oid,
                    f"missing required edge {constraint.label!r}",
                )
            return None
        if kind == "exclusive":
            for atom in self._values(oid, constraint.label):
                holders = self._holders(constraint, atom)
                if len(holders) > 1 and oid.name != min(h.name for h in holders):
                    return Violation(
                        constraint, oid,
                        f"{constraint.label} value {atom.as_string()!r} "
                        f"is not exclusive "
                        f"(also held by {self._other(holders, oid)})",
                        value=atom.as_string(),
                    )
            return None
        if kind == "expression":
            engine = self.engine()
            with engine.record_into(footprint):
                rows = engine.bindings(
                    list(constraint.conditions), initial=[{SUBJECT_VAR: oid}]
                )
            if not rows:
                return Violation(
                    constraint, oid,
                    f"expression ({constraint.expression}) has no solution",
                )
            return None
        for atom in self._values(oid, constraint.label):
            problem = value_problem(constraint, atom)
            if problem is not None:
                return Violation(constraint, oid, problem, value=atom.as_string())
        return None

    def _values(self, oid: Oid, label: str) -> List[Atom]:
        return [
            target
            for target in self.graph.targets(oid, label)
            if isinstance(target, Atom)
        ]

    def _holders(self, constraint: DataConstraint, atom: Atom) -> List[Oid]:
        """Collection members holding ``atom`` under the constraint's
        label (via the reverse value index, so this is per-value work,
        not a collection scan)."""
        graph = self.graph
        return [
            source
            for source, label in graph.sources_of_value(atom)
            if label == constraint.label
            and graph.in_collection(constraint.collection, source)
        ]

    @staticmethod
    def _other(holders: List[Oid], oid: Oid) -> str:
        names = sorted(h.name for h in holders if h != oid)
        return names[0] if names else "?"

    # ------------------------------------------------------------ #
    # whole-set checking

    def refuted_on_data(self, constraint: DataConstraint) -> bool:
        """Can the graph's value index prove no member can violate?

        Sound: ``True`` only when *every* atomic value anywhere under
        the label passes (value-shaped kinds) or no value is shared
        (``exclusive``) -- a superset of what collection members hold.
        """
        graph = self.graph
        kind = constraint.kind
        if kind in ("range", "regexp", "max_len"):
            for atom, _count in graph.label_atoms(constraint.label):
                if value_problem(constraint, atom) is not None:
                    return False
            return True
        if kind == "exclusive":
            for _atom, count in graph.label_atoms(constraint.label):
                if count > 1:
                    return False
            return True
        return False

    def check_all(self, refute: bool = True) -> List[Violation]:
        """Every violation in the graph, in collection/member order.

        With ``refute`` (the default), constraints the value index
        proves unviolable are skipped wholesale and counted as
        ``refuted`` instead of ``checked``.
        """
        counters = self.counters
        bump(counters, "full_checks")
        violations: List[Violation] = []
        for constraint in self.set:
            if refute and self.refuted_on_data(constraint):
                bump(counters, "refuted")
                continue
            for oid in self.graph.collection(constraint.collection):
                bump(counters, "checked")
                violation = self.check_subject(constraint, oid)
                if violation is not None:
                    bump(counters, "violated")
                    violations.append(violation)
        return violations
