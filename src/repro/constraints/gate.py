"""The ingest-time constraint gate.

Violating records are *record faults*, and the pipeline already has
machinery for those: the PR-4 quarantine.  This module turns constraint
violations into quarantined records -- same report shape, same error
budget, same provenance trail -- so ``repro ingest`` handles a record
that parses but lies (a year of 19995, a duplicated DOI) exactly like
one that does not parse at all.

A :class:`ConstraintPolicy` travels on
:class:`~repro.resilience.WrapPolicy` into each wrapper and into the
mediator's warehouse assembly (the latter catches cross-source
``exclusive`` collisions no single wrapper can see).  Under a strict
wrap the first violation raises
:class:`~repro.errors.ConstraintViolation`; under a tolerant wrap each
violating subject is removed from the graph and logged into the
:class:`~repro.resilience.QuarantineReport`, subject to ``max_errors``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConstraintViolation, QuarantineExceeded
from ..graph import Graph, Oid
from .checker import ConstraintChecker
from .model import CheckCounters, ConstraintSet, Violation


@dataclass(frozen=True)
class ConstraintPolicy:
    """Which data constraints an ingest enforces, and how hard.

    ``refute`` enables the value-index fast path: constraints the graph
    can prove unviolable are skipped without a member scan.
    """

    constraint_set: ConstraintSet
    refute: bool = True
    counters: CheckCounters = field(default_factory=CheckCounters, compare=False)

    @property
    def count(self) -> int:
        return len(self.constraint_set)


def apply_constraint_gate(
    graph: Graph,
    wrap_policy: "object",
    report: "object",
    source_name: str = "",
) -> List[Violation]:
    """Enforce ``wrap_policy.constraints`` on a freshly-built graph.

    Strict wrap: the first violation raises :class:`ConstraintViolation`
    with the offending subject as witness.  Tolerant wrap: every
    violating subject is removed from ``graph`` and recorded in
    ``report`` (one quarantined record per subject, messages joined),
    then the usual error budget applies.  Returns the violations found.
    """
    policy: Optional[ConstraintPolicy] = getattr(wrap_policy, "constraints", None)
    if policy is None:
        return []
    checker = ConstraintChecker(graph, policy.constraint_set, policy.counters)
    violations = checker.check_all(refute=policy.refute)
    if not violations:
        return violations
    if not getattr(wrap_policy, "quarantine", False):
        first = violations[0]
        raise ConstraintViolation(first.constraint, witness=first.subject.name)

    # collect-then-remove: one subject may violate several constraints,
    # and removal must not run while verdicts are still being computed
    by_subject: Dict[Oid, List[Violation]] = {}
    for violation in violations:
        by_subject.setdefault(violation.subject, []).append(violation)
    for subject in sorted(by_subject, key=lambda oid: oid.name):
        faults = by_subject[subject]
        collection = faults[0].constraint.collection
        report.add(
            locator=f"{collection}:{subject.name}",
            error="constraint violation: "
            + "; ".join(fault.message for fault in faults),
            snippet=str(faults[0].constraint),
            source=source_name,
        )
        graph.remove_node(subject)
    max_errors = getattr(wrap_policy, "max_errors", None)
    if max_errors is not None and report.count > max_errors:
        raise QuarantineExceeded(
            source_name or getattr(report, "source", ""),
            report.count,
            max_errors,
            report,
        )
    return violations
