"""Delta-driven incremental constraint re-checking.

A warm graph that just absorbed a one-edge edit should not pay a
whole-collection re-validation.  The :class:`IncrementalChecker` keeps,
per ``(constraint, subject)`` verdict, the *dependence set* of that
verdict -- hand-built exact footprints for the structural kinds, an
engine-recorded :class:`~repro.struql.footprint.Footprint` for
``expression`` constraints -- inverted into lookup tables, so a
:class:`~repro.graph.delta.GraphDelta` maps to the touched verdicts in
time proportional to the delta, not the graph:

* ``required``/``range``/``regexp``/``max_len`` verdicts depend on the
  subject's membership in the collection and its adjacency list under
  the one label -- both directly keyed by delta records;
* ``exclusive`` verdicts additionally depend on *other* holders of the
  same value, tracked through a maintained value -> holders table:
  an edit dirties a value, and only that value's holders re-verdict;
* ``expression`` verdicts use the recorded read footprint, mirrored
  into the same inverted indexes
  :meth:`~repro.struql.footprint.Footprint.touches` consults.

``recheck`` is honest about log truncation: when ``delta_since``
returns ``None`` the checker falls back to a full re-check (counted in
``coarse_fallbacks``), which is always sound.  The property test in
``tests/test_data_constraints.py`` drives random delta streams and
asserts incremental verdicts are *identical* to a from-scratch full
check; ``BENCH_DC.json`` shows the per-edit cost staying proportional
to delta size on a 400-article site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..graph import Atom, Graph, Oid
from ..graph.delta import GraphDelta
from ..struql.footprint import Footprint
from .checker import ConstraintChecker, bump
from .model import CheckCounters, ConstraintSet, Violation

#: A verdict key: (constraint index in the set, subject oid).
Key = Tuple[int, Oid]


class _FootprintIndex:
    """Inverted lookup from delta-record keys to expression verdicts.

    One entry group per :class:`Footprint` slot; ``touched_by`` mirrors
    the logic of ``Footprint.touches`` so the two can never disagree on
    soundness, but answers "which verdicts?" in O(delta) instead of
    O(verdicts x delta).
    """

    def __init__(self) -> None:
        self.by_edge_read: Dict[Tuple[Oid, str], Set[Key]] = {}
        self.by_oid_all: Dict[Oid, Set[Key]] = {}
        self.by_label_scan: Dict[str, Set[Key]] = {}
        self.by_collection_scan: Dict[str, Set[Key]] = {}
        self.by_membership: Dict[Tuple[str, Oid], Set[Key]] = {}
        self.by_value_probe: Dict[Tuple[object, Optional[str]], Set[Key]] = {}
        self.by_node_check: Dict[Oid, Set[Key]] = {}
        self.all_edges: Set[Key] = set()
        self._slots: Dict[Key, List[Tuple[Dict, object]]] = {}

    def add(self, key: Key, footprint: Footprint) -> None:
        slots: List[Tuple[Dict, object]] = []

        def _enter(table: Dict, entry: object) -> None:
            table.setdefault(entry, set()).add(key)
            slots.append((table, entry))

        for item in footprint.edge_reads:
            _enter(self.by_edge_read, item)
        for oid in footprint.oid_reads_all:
            _enter(self.by_oid_all, oid)
        for label in footprint.label_scans:
            _enter(self.by_label_scan, label)
        for name in footprint.collection_scans:
            _enter(self.by_collection_scan, name)
        for item in footprint.membership_reads:
            _enter(self.by_membership, item)
        for item in footprint.value_probes:
            _enter(self.by_value_probe, item)
        for oid in footprint.node_checks:
            _enter(self.by_node_check, oid)
        if footprint.all_edges:
            self.all_edges.add(key)
            slots.append((None, None))  # type: ignore[arg-type]
        self._slots[key] = slots

    def remove(self, key: Key) -> None:
        for table, entry in self._slots.pop(key, ()):
            if table is None:
                self.all_edges.discard(key)
                continue
            keys = table.get(entry)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del table[entry]

    def touched_by(self, delta: GraphDelta) -> Set[Key]:
        touched: Set[Key] = set()
        if self.all_edges and (
            delta.edges_added or delta.edges_removed
            or delta.nodes_added or delta.nodes_removed
        ):
            touched |= self.all_edges
        for oid in delta.nodes_added:
            touched.update(self.by_node_check.get(oid, ()))
        for oid in delta.nodes_removed:
            touched.update(self.by_node_check.get(oid, ()))
        for source, label, target in delta.edge_changes():
            touched.update(self.by_label_scan.get(label, ()))
            touched.update(self.by_oid_all.get(source, ()))
            touched.update(self.by_edge_read.get((source, label), ()))
            touched.update(self.by_value_probe.get((target, label), ()))
            touched.update(self.by_value_probe.get((target, None), ()))
        for name, oid in delta.member_changes():
            touched.update(self.by_collection_scan.get(name, ()))
            touched.update(self.by_membership.get((name, oid), ()))
        return touched


class IncrementalChecker:
    """Keeps constraint verdicts for one graph current across edits.

    ``full_check()`` establishes the baseline; each ``recheck()``
    re-verdicts only the delta-touched subjects.  ``last_rechecked`` /
    ``last_skipped`` expose the most recent recheck's selectivity for
    counter verification (the acceptance demo asserts a 1-edge edit
    re-checks only the touched subjects).
    """

    def __init__(
        self,
        graph: Graph,
        constraint_set: ConstraintSet,
        counters: Optional[CheckCounters] = None,
    ) -> None:
        self.graph = graph
        self.set = constraint_set
        self.counters = counters if counters is not None else CheckCounters()
        self.checker = ConstraintChecker(graph, constraint_set, self.counters)
        self._verdicts: Dict[Key, bool] = {}
        self._violations: Dict[Key, Violation] = {}
        self._index = _FootprintIndex()
        #: exclusive bookkeeping: constraint -> value -> member holders,
        #: and per-verdict the values it held when last checked
        self._holders: Dict[int, Dict[Atom, Set[Oid]]] = {}
        self._held: Dict[Key, Tuple[Atom, ...]] = {}
        self._epoch: Optional[int] = None
        self.last_rechecked = 0
        self.last_skipped = 0

    # ------------------------------------------------------------ #

    def verdicts(self) -> Dict[Key, bool]:
        """Current ``(constraint index, subject) -> holds`` map."""
        return dict(self._verdicts)

    def violations(self) -> List[Violation]:
        """Current violations, ordered by constraint then subject name."""
        return [
            self._violations[key]
            for key in sorted(self._violations, key=lambda k: (k[0], k[1].name))
        ]

    @property
    def subject_count(self) -> int:
        return len(self._verdicts)

    # ------------------------------------------------------------ #
    # full check

    def full_check(self) -> Dict[Key, bool]:
        """(Re-)establish every verdict and dependence set from scratch."""
        for key in list(self._index._slots):
            self._index.remove(key)
        self._verdicts.clear()
        self._violations.clear()
        self._holders.clear()
        self._held.clear()
        bump(self.counters, "full_checks")
        graph = self.graph
        for cidx, constraint in enumerate(self.set):
            for oid in graph.collection(constraint.collection):
                self._check_one(cidx, constraint, oid)
        self._epoch = graph.epoch
        self.last_rechecked = len(self._verdicts)
        self.last_skipped = 0
        return self.verdicts()

    def _check_one(self, cidx: int, constraint, oid: Oid) -> None:
        key = (cidx, oid)
        bump(self.counters, "checked")
        footprint = (
            Footprint() if constraint.kind == "expression" else None
        )
        violation = self.checker.check_subject(constraint, oid, footprint)
        self._verdicts[key] = violation is None
        if violation is None:
            self._violations.pop(key, None)
        else:
            bump(self.counters, "violated")
            self._violations[key] = violation
        if footprint is not None:
            # membership itself is part of the dependence set: leaving
            # the collection must retire the verdict
            footprint.membership_reads.add((constraint.collection, oid))
            self._index.remove(key)
            self._index.add(key, footprint)
        elif constraint.kind == "exclusive":
            self._track_holder(cidx, constraint, oid)

    def _track_holder(self, cidx: int, constraint, oid: Oid) -> None:
        key = (cidx, oid)
        held = tuple(
            target
            for target in self.graph.targets(oid, constraint.label)
            if isinstance(target, Atom)
        )
        for atom in self._held.get(key, ()):
            holders = self._holders.get(cidx, {}).get(atom)
            if holders is not None:
                holders.discard(oid)
                if not holders:
                    del self._holders[cidx][atom]
        table = self._holders.setdefault(cidx, {})
        for atom in held:
            table.setdefault(atom, set()).add(oid)
        self._held[key] = held

    def _drop(self, key: Key) -> None:
        self._verdicts.pop(key, None)
        self._violations.pop(key, None)
        self._index.remove(key)
        cidx = key[0]
        for atom in self._held.pop(key, ()):
            holders = self._holders.get(cidx, {}).get(atom)
            if holders is not None:
                holders.discard(key[1])
                if not holders:
                    del self._holders[cidx][atom]

    # ------------------------------------------------------------ #
    # incremental recheck

    def recheck(self) -> Dict[Key, bool]:
        """Bring every verdict up to date with the graph.

        Touched subjects are recomputed; everything else is proven
        current by footprint/delta disjointness and skipped (counted in
        ``incremental_skipped``).  A truncated delta log forces a coarse
        full re-check -- sound, and counted in ``coarse_fallbacks``.
        """
        if self._epoch is None:
            return self.full_check()
        delta = self.graph.delta_since(self._epoch)
        if delta is None:
            bump(self.counters, "coarse_fallbacks")
            return self.full_check()
        if delta.empty:
            self.last_rechecked = 0
            self.last_skipped = len(self._verdicts)
            bump(self.counters, "incremental_skipped", len(self._verdicts))
            self._epoch = self.graph.epoch
            return self.verdicts()

        before = len(self._verdicts)
        touched: Set[Key] = self._index.touched_by(delta)
        removed_nodes = set(delta.nodes_removed)
        member_changes = delta.member_changes()
        edge_changes = delta.edge_changes()

        for cidx, constraint in enumerate(self.set):
            collection = constraint.collection
            for name, oid in member_changes:
                if name == collection:
                    touched.add((cidx, oid))
            if constraint.kind == "expression":
                continue  # footprint index covers the rest
            label = constraint.label
            dirty_values: Set[Atom] = set()
            for source, edge_label, target in edge_changes:
                if edge_label != label:
                    continue
                touched.add((cidx, source))
                if constraint.kind == "exclusive" and isinstance(target, Atom):
                    dirty_values.add(target)
            if constraint.kind == "exclusive":
                for name, oid in member_changes:
                    if name == collection:
                        dirty_values.update(self._held.get((cidx, oid), ()))
                        if self.graph.has_node(oid):
                            dirty_values.update(
                                t
                                for t in self.graph.targets(oid, label)
                                if isinstance(t, Atom)
                            )
                holders = self._holders.get(cidx, {})
                for atom in dirty_values:
                    touched.update(
                        (cidx, holder) for holder in holders.get(atom, ())
                    )
        for key in list(touched):
            if key[1] in removed_nodes:
                touched.discard(key)
                self._drop(key)

        graph = self.graph
        rechecked = 0
        for key in sorted(touched, key=lambda k: (k[0], k[1].name)):
            cidx, oid = key
            constraint = self.set.constraints[cidx]
            if not graph.has_node(oid) or not graph.in_collection(
                constraint.collection, oid
            ):
                self._drop(key)
                continue
            rechecked += 1
            self._check_one(cidx, constraint, oid)
        # exclusive verdicts of dirty-value co-holders were re-checked
        # above because _holders membership put them in ``touched``.
        self.last_rechecked = rechecked
        self.last_skipped = max(0, before - len(touched))
        bump(self.counters, "incremental_rechecked", rechecked)
        bump(self.counters, "incremental_skipped", self.last_skipped)
        self._epoch = graph.epoch
        return self.verdicts()
