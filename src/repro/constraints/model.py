"""The declarative data-constraint vocabulary.

The paper's integrity constraints (section 2.5) guard the *site graph*;
nothing in the pipeline validated the *data graph* the wrappers and
mediator produce.  This module declares constraints over data-graph
collections and edge labels, in the spirit of EdgeDB's constraint
language (``exclusive``, ``max_len_value``, ``expression on (...)``
with a ``__subject__`` binding):

========================  ============================================
``required L``            every member has at least one ``L`` edge
``exclusive L``           no two members share an ``L`` value
``range L lo hi``         every ``L`` value is numeric in [lo, hi]
``regexp L "pat"``        every ``L`` value fully matches the pattern
``max_len L n``           every ``L`` value renders to <= n characters
``expression ( conds )``  the STRUQL conditions, seeded with the member
                          bound to ``__subject__``, produce a binding
========================  ============================================

One vocabulary is enforced in three places: statically by the analyzer
(``DC0xx`` diagnostics), at ingest by the wrapper/mediator quarantine
gate, and incrementally on warm graphs by the delta-driven
:class:`~repro.constraints.incremental.IncrementalChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..graph import Oid

#: The constraint kinds, in declaration-keyword form.
KINDS = ("required", "exclusive", "range", "regexp", "max_len", "expression")


@dataclass(frozen=True)
class DataConstraint:
    """One declared constraint over one collection.

    ``label`` is empty for ``expression`` constraints; ``conditions``
    holds the parsed STRUQL where-clause of an ``expression`` constraint
    (excluded from equality so identical declarations compare equal).
    ``line``/``column`` locate the declaring token in the source file.
    """

    kind: str
    collection: str
    label: str = ""
    low: Optional[float] = None
    high: Optional[float] = None
    pattern: str = ""
    limit: int = 0
    expression: str = ""
    conditions: Tuple[object, ...] = field(default=(), compare=False, repr=False)
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    def key(self) -> Tuple[object, ...]:
        """Identity for duplicate detection (span-independent)."""
        return (
            self.collection, self.kind, self.label,
            self.low, self.high, self.pattern, self.limit, self.expression,
        )

    def __str__(self) -> str:
        if self.kind == "required":
            body = f"required {self.label}"
        elif self.kind == "exclusive":
            body = f"exclusive {self.label}"
        elif self.kind == "range":
            body = f"range {self.label} {_num(self.low)} {_num(self.high)}"
        elif self.kind == "regexp":
            body = f'regexp {self.label} "{self.pattern}"'
        elif self.kind == "max_len":
            body = f"max_len {self.label} {self.limit}"
        else:
            body = f"expression ({self.expression})"
        return f"on {self.collection}: {body}"


def _num(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if float(value).is_integer():
        return str(int(value))
    return str(value)


@dataclass(frozen=True)
class ParseIssue:
    """One syntax problem in a constraint file, with a real source span."""

    message: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        where = f"line {self.line}, column {self.column}" if self.line else "?"
        return f"{self.message} ({where})"


@dataclass
class ConstraintSet:
    """A parsed constraint file: declarations plus any parse issues.

    Parsing is error-recovering -- a malformed rule becomes a
    :class:`ParseIssue` and the parser resynchronizes, so one typo does
    not hide every later declaration from the analyzer.
    """

    source: str = "<constraints>"
    constraints: List[DataConstraint] = field(default_factory=list)
    issues: List[ParseIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[DataConstraint]:
        return iter(self.constraints)

    def for_collection(self, name: str) -> List[DataConstraint]:
        return [c for c in self.constraints if c.collection == name]

    def collections(self) -> List[str]:
        out: Dict[str, None] = {}
        for constraint in self.constraints:
            out.setdefault(constraint.collection)
        return list(out)


@dataclass
class Violation:
    """One subject failing one constraint."""

    constraint: DataConstraint
    subject: Oid
    message: str
    value: str = ""

    def __str__(self) -> str:
        return f"{self.subject.name}: {self.message} [{self.constraint}]"

    def as_dict(self) -> Dict[str, str]:
        return {
            "constraint": str(self.constraint),
            "subject": self.subject.name,
            "message": self.message,
            "value": self.value,
        }


@dataclass
class CheckCounters:
    """Constraint-check accounting, reported by ``repro stats``.

    ``incremental_skipped`` counts (constraint, subject) verdicts an
    incremental re-check proved untouched and did not recompute --
    the number the BENCH_DC benchmark verifies is close to the total
    while ``incremental_rechecked`` stays proportional to delta size.
    """

    checked: int = 0
    violated: int = 0
    refuted: int = 0
    incremental_rechecked: int = 0
    incremental_skipped: int = 0
    full_checks: int = 0
    coarse_fallbacks: int = 0

    def merge(self, other: "CheckCounters") -> None:
        self.checked += other.checked
        self.violated += other.violated
        self.refuted += other.refuted
        self.incremental_rechecked += other.incremental_rechecked
        self.incremental_skipped += other.incremental_skipped
        self.full_checks += other.full_checks
        self.coarse_fallbacks += other.coarse_fallbacks

    def as_dict(self) -> Dict[str, int]:
        return {
            "checked": self.checked,
            "violated": self.violated,
            "refuted": self.refuted,
            "incremental_rechecked": self.incremental_rechecked,
            "incremental_skipped": self.incremental_skipped,
            "full_checks": self.full_checks,
            "coarse_fallbacks": self.coarse_fallbacks,
        }

    def summary(self) -> str:
        return (
            f"checked={self.checked} violated={self.violated} "
            f"refuted={self.refuted} "
            f"incremental-rechecked={self.incremental_rechecked} "
            f"incremental-skipped={self.incremental_skipped}"
        )


#: Process-wide counters every checker folds into (mirrors the
#: statistics-refresh and recovery-event registries of earlier PRs).
_GLOBAL_COUNTERS = CheckCounters()


def global_counters() -> CheckCounters:
    """The process-wide constraint-check counters."""
    return _GLOBAL_COUNTERS


def reset_global_counters() -> None:
    global _GLOBAL_COUNTERS
    _GLOBAL_COUNTERS = CheckCounters()
