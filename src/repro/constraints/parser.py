"""Parser for constraint files, with real lexer spans.

Reuses the STRUQL tokenizer, so every diagnostic the analyzer emits for
a constraint file carries the declaring token's true line and column --
the guarantee the other front-ends (queries, templates) already had.

Grammar::

    file  ::= { block }
    block ::= "on" name "{" { rule } "}"
    rule  ::= "required"  label
            | "exclusive" label
            | "range"     label NUMBER NUMBER
            | "regexp"    label STRING
            | "max_len"   label NUMBER
            | "expression" "(" struql-conditions ")"

``name`` and ``label`` are identifiers or quoted strings; ``#`` and
``//`` start comments.  An ``expression`` body is any STRUQL
where-clause; it must use the ``__subject__`` variable, which the
checker binds to each member of the collection in turn.

Parsing is error-recovering: a malformed rule is recorded as a
:class:`~repro.constraints.model.ParseIssue` and the parser skips to
the next rule keyword (or block boundary), so one bad line does not
hide the rest of the file from analysis.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import StruqlError
from ..struql import parse as parse_struql
from ..struql.lexer import Token, tokenize
from .model import ConstraintSet, DataConstraint, ParseIssue

#: The variable an ``expression`` constraint is evaluated against.
SUBJECT_VAR = "__subject__"

_RULE_KEYWORDS = frozenset(
    {"required", "exclusive", "range", "regexp", "max_len", "expression"}
)


def parse_constraints(text: str, source: str = "<constraints>") -> ConstraintSet:
    """Parse a constraint file into a :class:`ConstraintSet`.

    Never raises on malformed input: lexical and grammatical problems
    become :class:`ParseIssue` entries with real line/column spans.
    """
    result = ConstraintSet(source=source)
    try:
        tokens = tokenize(text)
    except StruqlError as error:
        result.issues.append(
            ParseIssue(
                str(error),
                line=getattr(error, "line", 0),
                column=getattr(error, "column", 0),
            )
        )
        return result
    _FileParser(tokens, result).parse()
    return result


class _FileParser:
    def __init__(self, tokens: List[Token], result: ConstraintSet) -> None:
        self._tokens = tokens
        self._index = 0
        self._result = result

    # ------------------------------------------------------------ #
    # token plumbing

    def _peek(self) -> Optional[Token]:
        index = self._index
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> Optional[Token]:
        token = self._peek()
        if token is not None:
            self._index += 1
        return token

    def _issue(self, message: str, token: Optional[Token]) -> None:
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            line = last.line if last else 0
            column = last.column if last else 0
        else:
            line, column = token.line, token.column
        self._result.issues.append(ParseIssue(message, line=line, column=column))

    def _recover(self) -> None:
        """Skip to the next rule keyword or block boundary."""
        while True:
            token = self._peek()
            if token is None:
                return
            if token.kind == "ident" and (
                token.text in _RULE_KEYWORDS or token.text == "on"
            ):
                return
            if token.kind == "punct" and token.text == "}":
                return
            self._index += 1

    def _name(self, what: str) -> Optional[Token]:
        """An identifier or quoted string naming a collection or label."""
        token = self._peek()
        if token is not None and token.kind in ("ident", "string"):
            return self._next()
        self._issue(
            f"expected {what}, got "
            + (f"{token.text!r}" if token is not None else "end of file"),
            token,
        )
        return None

    def _number(self, what: str) -> Optional[float]:
        token = self._peek()
        if token is not None and token.kind == "number":
            self._next()
            return float(token.text)
        self._issue(
            f"expected {what} (a number), got "
            + (f"{token.text!r}" if token is not None else "end of file"),
            token,
        )
        return None

    # ------------------------------------------------------------ #
    # grammar

    def parse(self) -> None:
        while True:
            token = self._peek()
            if token is None:
                return
            if token.kind == "ident" and token.text == "on":
                self._next()
                self._parse_block(token)
            else:
                self._issue(
                    f"expected 'on <collection>', got {token.text!r}", token
                )
                self._next()
                self._recover()

    def _parse_block(self, on_token: Token) -> None:
        name = self._name("a collection name after 'on'")
        if name is None:
            self._recover()
            return
        opener = self._peek()
        if opener is None or opener.kind != "punct" or opener.text != "{":
            self._issue(f"expected '{{' after 'on {name.text}'", opener)
            self._recover()
            return
        self._next()
        while True:
            token = self._peek()
            if token is None:
                self._issue(f"unclosed block for collection {name.text!r}", None)
                return
            if token.kind == "punct" and token.text == "}":
                self._next()
                return
            if token.kind == "ident" and token.text in _RULE_KEYWORDS:
                self._parse_rule(name.text, self._next())
            else:
                self._issue(
                    f"expected a constraint keyword "
                    f"({', '.join(sorted(_RULE_KEYWORDS))}), got {token.text!r}",
                    token,
                )
                self._next()
                self._recover()

    def _parse_rule(self, collection: str, keyword: Token) -> None:
        kind = keyword.text
        if kind == "expression":
            self._parse_expression(collection, keyword)
            return
        label = self._name(f"an edge label after '{kind}'")
        if label is None:
            self._recover()
            return
        constraint: Optional[DataConstraint] = None
        if kind == "required":
            constraint = DataConstraint(
                "required", collection, label=label.text,
                line=keyword.line, column=keyword.column,
            )
        elif kind == "exclusive":
            constraint = DataConstraint(
                "exclusive", collection, label=label.text,
                line=keyword.line, column=keyword.column,
            )
        elif kind == "range":
            low = self._number("the lower bound")
            high = self._number("the upper bound") if low is not None else None
            if low is None or high is None:
                self._recover()
                return
            if low > high:
                self._issue(
                    f"empty range [{low}, {high}] on {label.text!r}", keyword
                )
                self._recover()
                return
            constraint = DataConstraint(
                "range", collection, label=label.text, low=low, high=high,
                line=keyword.line, column=keyword.column,
            )
        elif kind == "regexp":
            token = self._peek()
            if token is None or token.kind != "string":
                self._issue("expected a quoted pattern after 'regexp'", token)
                self._recover()
                return
            self._next()
            import re

            try:
                re.compile(token.text)
            except re.error as error:
                self._issue(f"bad pattern {token.text!r}: {error}", token)
                self._recover()
                return
            constraint = DataConstraint(
                "regexp", collection, label=label.text, pattern=token.text,
                line=keyword.line, column=keyword.column,
            )
        elif kind == "max_len":
            limit = self._number("the length limit")
            if limit is None:
                self._recover()
                return
            constraint = DataConstraint(
                "max_len", collection, label=label.text, limit=int(limit),
                line=keyword.line, column=keyword.column,
            )
        if constraint is not None:
            self._result.constraints.append(constraint)

    def _parse_expression(self, collection: str, keyword: Token) -> None:
        opener = self._peek()
        if opener is None or opener.kind != "punct" or opener.text != "(":
            self._issue("expected '(' after 'expression'", opener)
            self._recover()
            return
        self._next()
        collected, closed = self._collect_until_close()
        if not closed:
            self._issue("unterminated expression constraint", keyword)
            return
        text = " ".join(
            f'"{_escape(t.text)}"' if t.kind == "string" else t.text
            for t in collected
        )
        conditions, problem = _parse_expression_text(text)
        if problem:
            self._issue(f"bad expression constraint: {problem}", keyword)
            self._recover()
            return
        self._result.constraints.append(
            DataConstraint(
                "expression", collection, expression=text,
                conditions=tuple(conditions),
                line=keyword.line, column=keyword.column,
            )
        )

    def _collect_until_close(self) -> Tuple[List[Token], bool]:
        depth = 0
        collected: List[Token] = []
        while True:
            token = self._peek()
            if token is None:
                return collected, False
            if token.kind == "punct" and token.text == "(":
                depth += 1
            elif token.kind == "punct" and token.text == ")":
                if depth == 0:
                    self._next()
                    return collected, True
                depth -= 1
            collected.append(self._next())


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _parse_expression_text(text: str) -> Tuple[List[object], str]:
    """Parse an expression body as a STRUQL where-clause; the conditions
    must mention ``__subject__`` so the checker has something to seed."""
    if not text.strip():
        return [], "empty condition list"
    try:
        program = parse_struql("where " + text)
    except StruqlError as error:
        return [], str(error)
    conditions = list(program.queries[0].where)
    variables = set()
    for condition in conditions:
        variables.update(condition.variables())
    if SUBJECT_VAR not in variables:
        return [], f"the conditions never use {SUBJECT_VAR}"
    return conditions, ""
