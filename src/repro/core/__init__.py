"""The paper's primary contribution: declarative site management.

Site definitions, site schemas, integrity constraints, dynamic
("click-time") evaluation, versions, and the measurements the paper
reports per site.
"""

from .audit import AuditReport, audit
from .constraints import (
    And,
    CheckResult,
    ClassAtom,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    PathAtom,
    Verdict,
    check,
    enforce,
    parse_constraint,
    verify_static,
)
from .incremental import (
    BrowseSession,
    ClickMetrics,
    DynamicSite,
    ExpandedEdge,
    NodeInstance,
    RefreshResult,
)
from .maintenance import MaintenanceReport, SiteMaintainer
from .regen import RegeneratingSite, RegenReport
from .propagation import (
    DataOrigin,
    EditPropagator,
    PropagationError,
    PropagationResult,
)
from .schema import NS, SchemaCreation, SchemaEdge, SiteSchema
from .server import LazySiteGraph, PageServer
from .site import BuiltSite, SiteBuilder, SiteDefinition
from .stats import SiteStats, measure_site
from .versions import VersionDiff, derive_version, diff_definitions

__all__ = [
    "And",
    "AuditReport",
    "audit",
    "BrowseSession",
    "BuiltSite",
    "CheckResult",
    "ClassAtom",
    "ClickMetrics",
    "DataOrigin",
    "DynamicSite",
    "EditPropagator",
    "PropagationError",
    "PropagationResult",
    "Exists",
    "ExpandedEdge",
    "ForAll",
    "Formula",
    "Implies",
    "LazySiteGraph",
    "MaintenanceReport",
    "NS",
    "NodeInstance",
    "Not",
    "PageServer",
    "RefreshResult",
    "RegenReport",
    "RegeneratingSite",
    "SiteMaintainer",
    "Or",
    "PathAtom",
    "SchemaCreation",
    "SchemaEdge",
    "SiteBuilder",
    "SiteDefinition",
    "SiteSchema",
    "SiteStats",
    "Verdict",
    "VersionDiff",
    "check",
    "derive_version",
    "diff_definitions",
    "enforce",
    "measure_site",
    "parse_constraint",
    "verify_static",
]
