"""Site auditing: one call answering "is this generated site healthy?".

The paper frames integrity constraints ("connectedness, reachability of
nodes", section 2.5) as the formal tool; in day-to-day site building the
same questions are asked informally after every regeneration.  The
auditor bundles them:

* **dangling links** -- internal hrefs whose target page was never
  generated;
* **unreachable pages** -- site-graph nodes with a template that no
  link path from the roots reaches (content that silently fell off the
  site, usually a missing ``link`` clause);
* **empty pages** -- generated pages whose rendered body has no visible
  text (usually an attribute-name typo in a template);
* **constraint outcomes** -- the definition's declared integrity
  constraints, model-checked on the site graph.

``ok`` is True only when everything passes, which makes
``assert audit(built).ok`` a one-line regression test for a whole site,
and ``python -m repro build`` uses the dangling-link portion for its
exit code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..graph import Oid
from .constraints import CheckResult, check
from .site import BuiltSite

_TAG = re.compile(r"<[^>]+>")


@dataclass
class AuditReport:
    """The auditor's findings; empty lists mean a clean site."""

    pages: int = 0
    dangling_links: List[Tuple[str, str]] = field(default_factory=list)
    unreachable_pages: List[str] = field(default_factory=list)
    empty_pages: List[str] = field(default_factory=list)
    constraint_results: Dict[str, CheckResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            not self.dangling_links
            and not self.unreachable_pages
            and not self.empty_pages
            and all(bool(result) for result in self.constraint_results.values())
        )

    def summary(self) -> str:
        failed = [c for c, r in self.constraint_results.items() if not r]
        lines = [
            f"pages: {self.pages}",
            f"dangling links: {len(self.dangling_links)}",
            f"unreachable pages: {len(self.unreachable_pages)}",
            f"empty pages: {len(self.empty_pages)}",
            f"constraints: {len(self.constraint_results) - len(failed)}"
            f"/{len(self.constraint_results)} hold",
            f"verdict: {'OK' if self.ok else 'PROBLEMS FOUND'}",
        ]
        return "\n".join(lines)


def audit(built: BuiltSite) -> AuditReport:
    """Audit one built site."""
    report = AuditReport(pages=built.generated.page_count)
    report.dangling_links = built.generated.dangling_links()
    report.unreachable_pages = _unreachable_pages(built)
    report.empty_pages = _empty_pages(built)
    if built.constraint_results:
        report.constraint_results = dict(built.constraint_results)
    else:
        for constraint in built.definition.constraints:
            report.constraint_results[str(constraint)] = check(
                constraint, built.site_graph
            )
    return report


def _unreachable_pages(built: BuiltSite) -> List[str]:
    """Site-graph nodes that resolve a template but are neither rendered
    as pages nor reachable from any rendered page -- content the site
    defines but never displays (embedded components hang off generated
    pages, so they do not trigger this)."""
    generated_for = set(built.generated.filenames)
    reachable: set = set()
    for page_oid in generated_for:
        if built.site_graph.has_node(page_oid):
            reachable.update(built.site_graph.reachable(page_oid))
    templates = built.definition.templates
    missing: List[str] = []
    for oid in built.site_graph.nodes():
        if oid in generated_for or oid in reachable:
            continue
        if templates.resolve(built.site_graph, oid) is not None:
            missing.append(oid.name)
    return missing


def _empty_pages(built: BuiltSite) -> List[str]:
    empty: List[str] = []
    for filename, content in built.generated.pages.items():
        text = _TAG.sub("", content)
        if not text.strip():
            empty.append(filename)
    return empty
