"""Integrity constraints on Strudel-generated sites.

"We often want to enforce constraints that refer to the site graph, e.g.
'All paper presentation pages are reachable from a category page' ...
Integrity constraints are logical sentences built from expressions of the
form C(X) and X -> R -> Y using logical connectives and quantifiers"
(paper section 2.5).  The example constraint is written here as::

    forall X (PaperPresentation(X) => exists Y (CategoryPage(Y) and Y -> * -> X))

Two checkers are provided:

* :func:`check` -- exact model checking on a *materialized* site graph:
  quantifiers range over the graph's nodes (active domain), ``C(X)``
  means membership in collection C or, when no such collection exists,
  "X was created by Skolem function C", and path atoms are evaluated
  with the regular-path-expression machinery.  Returns a
  :class:`CheckResult` with a counterexample binding on failure.

* :func:`verify_static` -- conservative verification on the *site
  schema*, before any site is generated.  The paper's complete
  entailment algorithm is in a companion paper [14]; here we implement a
  sound approximation: ``VERIFIED`` answers are guaranteed correct
  (theorems about every site any data graph can produce), anything the
  analysis cannot prove is ``UNKNOWN``.  Experiment E7 measures the
  agreement and speed against the model checker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConstraintError, ConstraintViolation
from ..graph import Graph, Oid
from ..struql.ast import AnyLabel, LabelIs, PathExpr, Star
from ..struql.lexer import Token, tokenize
from ..struql.paths import compile_path, path_exists, reverse_expr, sources_to, targets_from
from .schema import NS, SchemaEdge, SiteSchema

# ---------------------------------------------------------------------- #
# formula AST


class Formula:
    """Base class of constraint formulas."""


@dataclass(frozen=True)
class ClassAtom(Formula):
    """``C(X)`` -- X belongs to class C (collection or Skolem function)."""

    name: str
    var: str

    def __str__(self) -> str:
        return f"{self.name}({self.var})"


@dataclass(frozen=True)
class PathAtom(Formula):
    """``X -> R -> Y`` -- a path matching R from X to Y."""

    source: str
    path: PathExpr
    target: str

    def __str__(self) -> str:
        return f"{self.source} -> {self.path} -> {self.target}"


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def __str__(self) -> str:
        return f"not ({self.inner})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} => {self.right})"


@dataclass(frozen=True)
class ForAll(Formula):
    var: str
    body: Formula

    def __str__(self) -> str:
        return f"forall {self.var} ({self.body})"


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    body: Formula

    def __str__(self) -> str:
        return f"exists {self.var} ({self.body})"


# ---------------------------------------------------------------------- #
# parser (reuses the STRUQL lexer)


def parse_constraint(text: str) -> Formula:
    """Parse a constraint formula.

    Grammar::

        formula  ::= quantified | implied
        quantified ::= ("forall" | "exists") IDENT "(" formula ")"
        implied  ::= disjunct [ ("=>" | "implies") formula ]
        disjunct ::= conjunct ("or" conjunct)*
        conjunct ::= unit ("and" unit)*
        unit     ::= "not" unit | "(" formula ")" | quantified | atom
        atom     ::= IDENT "(" IDENT ")" | IDENT "->" path "->" IDENT
    """
    parser = _ConstraintParser(text)
    formula = parser.parse_formula()
    parser.expect_end()
    return formula


class _ConstraintParser:
    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._index = 0

    def _peek(self, ahead: int = 0) -> Optional[Token]:
        index = self._index + ahead
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ConstraintError(
                "unexpected end of constraint", *self._last_position()
            )
        self._index += 1
        return token

    def _last_position(self) -> tuple:
        last = self._tokens[-1] if self._tokens else None
        return (last.line, last.column) if last else (0, 0)

    def _match_ident(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "ident" and token.text == word:
            self._index += 1
            return True
        return False

    def _match_implies(self) -> bool:
        if self._match_ident("implies"):
            return True
        first, second = self._peek(), self._peek(1)
        if (
            first is not None
            and second is not None
            and first.kind == "op"
            and first.text == "="
            and second.kind == "op"
            and second.text == ">"
        ):
            self._index += 2
            return True
        return False

    def _expect(self, kind: str, text: str = "") -> Token:
        token = self._next()
        if token.kind != kind or (text and token.text != text):
            raise ConstraintError(
                f"expected {text or kind!r}, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def expect_end(self) -> None:
        token = self._peek()
        if token is not None:
            raise ConstraintError(
                f"trailing input: {token.text!r}",
                line=token.line,
                column=token.column,
            )

    # ------------------------------------------------------------ #

    def parse_formula(self) -> Formula:
        left = self._parse_disjunct()
        if self._match_implies():
            return Implies(left, self.parse_formula())
        return left

    def _parse_disjunct(self) -> Formula:
        left = self._parse_conjunct()
        while self._match_ident("or"):
            left = Or(left, self._parse_conjunct())
        return left

    def _parse_conjunct(self) -> Formula:
        left = self._parse_unit()
        while self._match_ident("and"):
            left = And(left, self._parse_unit())
        return left

    def _parse_unit(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ConstraintError(
                "unexpected end of constraint", *self._last_position()
            )
        if token.kind == "ident" and token.text in ("forall", "exists"):
            self._next()
            var = self._expect("ident").text
            self._expect("punct", "(")
            body = self.parse_formula()
            self._expect("punct", ")")
            return ForAll(var, body) if token.text == "forall" else Exists(var, body)
        if token.kind == "ident" and token.text == "not":
            self._next()
            return Not(self._parse_unit())
        if token.kind == "punct" and token.text == "(":
            self._next()
            inner = self.parse_formula()
            self._expect("punct", ")")
            return inner
        return self._parse_atom()

    def _parse_atom(self) -> Formula:
        name = self._expect("ident").text
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == "(":
            self._next()
            var = self._expect("ident").text
            self._expect("punct", ")")
            return ClassAtom(name, var)
        self._expect("arrow")
        path = self._parse_path()
        self._expect("arrow")
        target = self._expect("ident").text
        return PathAtom(name, path, target)

    def _parse_path(self) -> PathExpr:
        # Reuse STRUQL's path grammar through a tiny re-parse of the
        # tokens between the arrows.
        from ..struql.parser import _Parser  # local import to avoid cycle

        depth = 0
        collected: List[Token] = []
        while True:
            token = self._peek()
            if token is None:
                raise ConstraintError(
                    "unterminated path in constraint", *self._last_position()
                )
            if token.kind == "arrow" and depth == 0:
                break
            if token.kind == "punct" and token.text == "(":
                depth += 1
            if token.kind == "punct" and token.text == ")":
                if depth == 0:
                    break
                depth -= 1
            collected.append(self._next())
        text = " ".join(
            f'"{t.text}"' if t.kind == "string" else t.text for t in collected
        )
        sub = _Parser(text)
        path = sub._parse_path_expression()
        if sub._peek() is not None:
            first = collected[0] if collected else None
            raise ConstraintError(
                f"bad path expression: {text!r}",
                line=first.line if first else 0,
                column=first.column if first else 0,
            )
        return path


# ---------------------------------------------------------------------- #
# exact model checking


@dataclass
class CheckResult:
    """Outcome of model checking a constraint on a site graph."""

    holds: bool
    witness: Optional[Dict[str, Oid]] = None  # counterexample for failures

    def __bool__(self) -> bool:
        return self.holds


def check(formula: Union[Formula, str], graph: Graph) -> CheckResult:
    """Exact check of a constraint against a materialized site graph."""
    if isinstance(formula, str):
        formula = parse_constraint(formula)
    checker = _Checker(graph)
    witness: Dict[str, Oid] = {}
    holds = checker.eval(formula, {}, witness)
    return CheckResult(holds=holds, witness=None if holds else dict(witness))


def enforce(
    constraints: Sequence[Union[Formula, str]], graph: Graph
) -> None:
    """Raise :class:`ConstraintViolation` on the first failing constraint."""
    for constraint in constraints:
        result = check(constraint, graph)
        if not result.holds:
            raise ConstraintViolation(constraint, result.witness)


class _Checker:
    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._nfa_cache: Dict[int, tuple] = {}

    def _members(self, name: str) -> List[Oid]:
        if self.graph.has_collection(name):
            return self.graph.collection(name)
        prefix = name + "("
        return [oid for oid in self.graph.nodes() if oid.name.startswith(prefix)]

    def eval(self, formula: Formula, env: Dict[str, Oid], witness: Dict[str, Oid]) -> bool:
        if isinstance(formula, ClassAtom):
            value = env.get(formula.var)
            if value is None:
                raise ConstraintError(f"unbound variable {formula.var} in {formula}")
            return value in self._members(formula.name)
        if isinstance(formula, PathAtom):
            return self._path_holds(formula, env)
        if isinstance(formula, Not):
            return not self.eval(formula.inner, env, witness)
        if isinstance(formula, And):
            return self.eval(formula.left, env, witness) and self.eval(
                formula.right, env, witness
            )
        if isinstance(formula, Or):
            return self.eval(formula.left, env, witness) or self.eval(
                formula.right, env, witness
            )
        if isinstance(formula, Implies):
            return (not self.eval(formula.left, env, witness)) or self.eval(
                formula.right, env, witness
            )
        if isinstance(formula, ForAll):
            for node in self.graph.nodes():
                extended = dict(env)
                extended[formula.var] = node
                if not self.eval(formula.body, extended, witness):
                    witness.update(extended)
                    return False
            return True
        if isinstance(formula, Exists):
            for node in self.graph.nodes():
                extended = dict(env)
                extended[formula.var] = node
                if self.eval(formula.body, extended, witness):
                    return True
            return False
        raise ConstraintError(f"unknown formula: {formula!r}")

    def _path_holds(self, atom: PathAtom, env: Dict[str, Oid]) -> bool:
        source = env.get(atom.source)
        target = env.get(atom.target)
        cached = self._nfa_cache.get(id(atom.path))
        if cached is None:
            cached = (compile_path(atom.path), compile_path(reverse_expr(atom.path)))
            self._nfa_cache[id(atom.path)] = cached
        forward, backward = cached
        if source is not None and target is not None:
            return path_exists(self.graph, forward, source, target)
        if source is not None:
            return bool(targets_from(self.graph, forward, source))
        if target is not None:
            return bool(sources_to(self.graph, backward, target))
        raise ConstraintError(f"path atom {atom} has no bound endpoint")


# ---------------------------------------------------------------------- #
# conservative static verification on the site schema


class Verdict(enum.Enum):
    """Outcome of static verification.  VERIFIED is sound: the constraint
    holds on every site the query can generate.  UNKNOWN means the
    conservative analysis could not prove it (the site may still satisfy
    it -- run :func:`check` on the materialized graph)."""

    VERIFIED = "verified"
    UNKNOWN = "unknown"


def verify_static(formula: Union[Formula, str], schema: SiteSchema) -> Verdict:
    """Conservatively verify a constraint against a site schema.

    Handled pattern (the paper's leading example)::

        forall X (A(X) => exists Y (B(Y) and Y -R-> X))
        forall X (A(X) => exists Y (B(Y) and X -R-> Y))

    The proof obligation: for every creation site of every A-function
    there must be a schema path from some B-function to it (respectively
    from it to some B-function) whose labels can match R, whose guard
    conjunctions are implied by A's creation conjunction (we require the
    guard block-set to be a subset -- sound, not complete), and whose
    Skolem arguments chain compatibly so that the path connects *this*
    A-instance rather than some other.  Everything else returns UNKNOWN.
    """
    if isinstance(formula, str):
        formula = parse_constraint(formula)
    pattern = _match_reachability_pattern(formula)
    if pattern is None:
        return Verdict.UNKNOWN
    class_a, class_b, path, from_b = pattern
    a_functions = schema.functions_of_class(class_a)
    b_functions = schema.functions_of_class(class_b)
    if not a_functions or not b_functions:
        return Verdict.UNKNOWN
    for a_function in a_functions:
        creations = schema.creations_of(a_function)
        if not creations:
            return Verdict.UNKNOWN
        for creation in creations:
            if not _provable_for_creation(
                schema, creation, b_functions, path, from_b
            ):
                return Verdict.UNKNOWN
    return Verdict.VERIFIED


def _match_reachability_pattern(formula: Formula):
    """Destructure forall X (A(X) => exists Y (B(Y) and path)) or the
    variant without the existential when the path endpoint is the
    universal variable itself."""
    if not isinstance(formula, ForAll):
        return None
    body = formula.body
    if not isinstance(body, Implies) or not isinstance(body.left, ClassAtom):
        return None
    if body.left.var != formula.var:
        return None
    class_a = body.left.name
    right = body.right
    if not isinstance(right, Exists):
        return None
    exists_var = right.var
    inner = right.body
    if not isinstance(inner, And):
        return None
    class_atom, path_atom = inner.left, inner.right
    if isinstance(path_atom, ClassAtom) and isinstance(class_atom, PathAtom):
        class_atom, path_atom = path_atom, class_atom
    if not isinstance(class_atom, ClassAtom) or not isinstance(path_atom, PathAtom):
        return None
    if class_atom.var != exists_var:
        return None
    class_b = class_atom.name
    if path_atom.source == exists_var and path_atom.target == formula.var:
        return class_a, class_b, path_atom.path, True
    if path_atom.source == formula.var and path_atom.target == exists_var:
        return class_a, class_b, path_atom.path, False
    return None


def _provable_for_creation(
    schema: SiteSchema,
    creation,
    b_functions: List[str],
    path: PathExpr,
    from_b: bool,
) -> bool:
    """Search the schema graph for a guard-compatible, argument-chained
    path between the creation's function and some B-function matching
    the regular path expression."""
    nfa = compile_path(path) if from_b else compile_path(path)
    # Walk the schema product with the NFA.  State: (function, nfa states,
    # current argument tuple).  Arguments must chain: each traversed edge's
    # endpoint args must equal the args we arrived with.
    target_function = creation.function
    guard = frozenset(creation.query_names)
    start_functions = b_functions if from_b else [creation.function]
    goal_functions = {creation.function} if from_b else set(b_functions)

    initial = nfa.initial
    frontier: List[Tuple[str, frozenset, Tuple[str, ...]]] = []
    seen = set()
    for function in start_functions:
        if from_b:
            for b_creation in schema.creations_of(function):
                state = (function, initial, b_creation.args)
                if state not in seen:
                    seen.add(state)
                    frontier.append(state)
        else:
            state = (function, initial, creation.args)
            if state not in seen:
                seen.add(state)
                frontier.append(state)

    def accepts(function: str, states: frozenset, args: Tuple[str, ...]) -> bool:
        if function not in goal_functions or not nfa.accepts_in(states):
            return False
        if from_b and function == target_function:
            return args == creation.args
        return True

    for function, states, args in frontier:
        if accepts(function, states, args):
            return True
    while frontier:
        function, states, args = frontier.pop()
        for edge in schema.edges_from(function):
            if edge.target == NS:
                continue
            if not frozenset(edge.query_names) <= guard:
                continue  # the edge may not exist for every A-instance
            if edge.source_args != args:
                continue  # would connect a different instance
            label = "any" if edge.label_is_variable else edge.label
            if edge.label_is_variable:
                # an arc variable can be any label; step the NFA with a
                # wildcard by trying AnyLabel semantics: succeed on any
                # transition whose test accepts *some* label; we
                # conservatively require the test to accept everything,
                # i.e. only AnyLabel-derived transitions.
                next_states = _step_wildcard(nfa, states)
            else:
                next_states = nfa.step(states, label)
            if not next_states:
                continue
            state = (edge.target, next_states, edge.target_args)
            if state in seen:
                continue
            seen.add(state)
            if accepts(edge.target, next_states, edge.target_args):
                return True
            frontier.append(state)
    return False


def _step_wildcard(nfa, states: frozenset) -> frozenset:
    """Step the NFA over an edge whose label is data-dependent.

    Sound direction: the step may only use transitions that accept *every*
    label (true / AnyLabel tests); a transition testing a specific label
    might not match the run-time label, so it cannot be relied upon.
    We detect universal tests by probing with two unlikely sentinels.
    """
    out = set()
    for state in states:
        for test, nxt in nfa.transitions.get(state, ()):
            if test("sentinel-a") and test("sentinel-b"):
                out.add(nxt)
    return nfa.closure(frozenset(out))
