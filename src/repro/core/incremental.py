"""Dynamic ("click time") computation of site graphs.

"Site schemas specify, for each node in the site graph, the queries that
must be evaluated to compute the node's contents, i.e. its outgoing
edges" (paper section 2.5).  This module implements that decomposition:

* a site-graph node is a Skolem-term *instance* ``F(values...)``
  (:class:`NodeInstance`);
* its outgoing edges are obtained by taking every site-schema edge whose
  source function is ``F``, binding the edge's formal source arguments to
  the instance's values, and evaluating the edge's governing conjunction
  (the where-clauses of the block path) over the data graph -- the
  *incremental query* of that node;
* :class:`BrowseSession` simulates a user clicking through the site,
  evaluating incremental queries on demand, with two optimizations the
  paper sketches: **caching** of incremental-query results ("our
  optimization techniques cache query results to reduce click time") and
  one-step **lookahead** ("precompute lookahead results for queries of
  reachable nodes").

Equivalence with static evaluation -- the expansion of every instance
matches the out-edges of the corresponding node in the fully materialized
site graph -- is asserted by the test suite and is what makes E6 a fair
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import SiteDefinitionError
from ..graph import Atom, AtomType, Graph, Oid
from ..graph.delta import GraphDelta
from ..struql.ast import Const, Program, Query, SkolemTerm, Var
from ..struql.eval import Binding, QueryEngine, Value, make_engine
from ..struql.footprint import Footprint
from ..struql.parser import parse
from .schema import NS, SchemaCreation, SchemaEdge, SiteSchema

#: Instance argument values are binding values: oids, atoms, labels.
InstanceArgs = Tuple[Value, ...]


@dataclass(frozen=True)
class NodeInstance:
    """A dynamic site-graph node: Skolem function + argument values."""

    function: str
    args: InstanceArgs

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.function}({rendered})"

    def oid(self) -> Oid:
        """The oid this instance has in a statically materialized site
        graph -- Skolem identity is deterministic, so the rendered term
        names agree by construction."""
        from ..graph.oid import skolem_term_name

        return Oid(skolem_term_name(self.function, self.args))


#: An expanded edge: label plus a NodeInstance / data node / atom target.
EdgeTarget = Union[NodeInstance, Oid, Atom]
ExpandedEdge = Tuple[str, EdgeTarget]


@dataclass
class ClickMetrics:
    """Counters for experiment E6 and the incremental-maintenance path."""

    expansions: int = 0
    queries_evaluated: int = 0
    cache_hits: int = 0
    lookahead_prefetches: int = 0
    #: lookahead prefetches skipped because the target was fully cached
    lookahead_skipped: int = 0
    #: cache entries dropped by footprint-vs-delta intersection
    fine_invalidations: int = 0
    #: cache entries that survived a delta refresh (footprint untouched)
    entries_retained: int = 0
    #: whole-cache flushes (explicit invalidate, or delta log truncated)
    coarse_invalidations: int = 0
    #: requests answered with a stale last-known-good page after a failure
    degraded_serves: int = 0
    #: requests answered with a structured error page (no stale copy)
    error_pages: int = 0
    #: renders cancelled because the request deadline expired (504s)
    deadline_exceeded: int = 0

    def merge(self, other: "ClickMetrics") -> None:
        """Fold another worker's counters into this one.

        The concurrency contract: counter instances are owned by one
        thread (one engine, one serve worker) and merged only when a
        stats reader aggregates them -- increments are never shared.
        """
        for spec in fields(self):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )


@dataclass
class RefreshResult:
    """What :meth:`DynamicSite.refresh` did with one delta."""

    #: the delta applied, or None when the log was truncated (coarse)
    delta: Optional[GraphDelta]
    #: True when everything was flushed instead of intersected
    coarse: bool
    #: owners of dropped expansion entries (for page-level invalidation)
    dropped_instances: List[NodeInstance] = field(default_factory=list)
    #: functions whose instance lists were dropped
    dropped_functions: List[str] = field(default_factory=list)
    #: cache entries that survived
    retained: int = 0
    #: cache entries dropped
    dropped: int = 0


class DynamicSite:
    """Click-time evaluation of one site definition over one data graph."""

    def __init__(
        self,
        program: Union[Program, Query, str],
        data_graph: Graph,
        cache: bool = True,
        lookahead: bool = False,
        use_blocks: bool = True,
    ) -> None:
        if isinstance(program, str):
            program = parse(program)
        if isinstance(program, Query):
            program = Program(queries=[program])
        self.program = program
        self.schema = SiteSchema.from_program(program)
        self.data_graph = data_graph
        self.cache_enabled = cache
        self.lookahead = lookahead
        self.metrics = ClickMetrics()
        # set-at-a-time evaluation by default; use_blocks=False is the
        # row-at-a-time ablation, end to end through the click path
        self._engine = make_engine(data_graph, use_blocks=use_blocks)
        #: key -> (expanded edges, read footprint, owning instance)
        self._edge_cache: Dict[
            Tuple[int, InstanceArgs], Tuple[List[ExpandedEdge], Footprint, NodeInstance]
        ] = {}
        #: function -> (instances, read footprint of the creation queries)
        self._instance_cache: Dict[str, Tuple[List[NodeInstance], Footprint]] = {}
        #: data-graph epoch the caches are consistent with
        self._synced_epoch = data_graph.epoch

    def invalidate(self) -> None:
        """Coarse invalidation: drop every cached click result.

        The engine itself needs nothing: its statistics and plans are
        keyed by the graph's mutation epoch and refresh on the next
        query.  Only the materialized expansion caches must go.  Prefer
        :meth:`refresh`, which drops only the entries the mutation can
        have affected.
        """
        if self._edge_cache or self._instance_cache:
            self.metrics.coarse_invalidations += 1
        self._edge_cache.clear()
        self._instance_cache.clear()
        self._synced_epoch = self.data_graph.epoch

    def refresh(self) -> RefreshResult:
        """Selective invalidation after data-graph mutations.

        Computes the delta since the caches were last consistent and
        drops only the entries whose read footprint the delta touches --
        the warm cost of an edit scales with |delta|, not |site|.  Falls
        back to :meth:`invalidate` when the bounded delta log no longer
        reaches back (always sound).
        """
        current = self.data_graph.epoch
        if current == self._synced_epoch:
            return RefreshResult(delta=None, coarse=False)
        delta = self.data_graph.delta_since(self._synced_epoch)
        if delta is None:
            self.invalidate()
            return RefreshResult(delta=None, coarse=True)
        result = RefreshResult(delta=delta, coarse=False)
        for key, (edges, footprint, owner) in list(self._edge_cache.items()):
            if footprint.touches(delta):
                del self._edge_cache[key]
                result.dropped += 1
                result.dropped_instances.append(owner)
            else:
                result.retained += 1
        for function, (instances, footprint) in list(self._instance_cache.items()):
            if footprint.touches(delta):
                del self._instance_cache[function]
                result.dropped += 1
                result.dropped_functions.append(function)
            else:
                result.retained += 1
        self.metrics.fine_invalidations += result.dropped
        self.metrics.entries_retained += result.retained
        self._synced_epoch = current
        return result

    def is_fully_cached(self, instance: NodeInstance) -> bool:
        """True when :meth:`expand` would be served entirely from cache."""
        if not self.cache_enabled:
            return False
        for schema_edge in self.schema.edges_from(instance.function):
            if len(schema_edge.source_args) != len(instance.args):
                continue
            if (id(schema_edge), instance.args) not in self._edge_cache:
                return False
        return True

    # ------------------------------------------------------------ #
    # entry points

    def instances_of(self, function: str) -> List[NodeInstance]:
        """All instances of a Skolem function the site query creates.

        Evaluates the creation conjunction(s) of the function and
        projects onto the formal arguments -- this answers "what pages of
        this type exist?" without materializing the site.
        """
        cached = self._instance_cache.get(function)
        if cached is not None:
            return cached[0]
        creations = self.schema.creations_of(function)
        if not creations:
            raise SiteDefinitionError(
                f"{function!r} is not a Skolem function of this site definition"
            )
        found: Dict[NodeInstance, None] = {}
        footprint = Footprint()
        with self._engine.record_into(footprint):
            for creation in creations:
                self.metrics.queries_evaluated += 1
                for row in self._engine.bindings(list(creation.conditions)):
                    args = _project_args(creation.args, row)
                    if args is not None:
                        found.setdefault(NodeInstance(function, args), None)
        instances = list(found)
        if self.cache_enabled:
            self._instance_cache[function] = (instances, footprint)
        return instances

    def roots(self) -> List[NodeInstance]:
        """Instances of every zero-argument Skolem function (site entry
        points like ``RootPage()``)."""
        out: List[NodeInstance] = []
        for function in self.schema.functions:
            if all(not c.args for c in self.schema.creations_of(function)):
                out.extend(self.instances_of(function))
        return out

    def expand(self, instance: NodeInstance) -> List[ExpandedEdge]:
        """The outgoing edges of a dynamic node -- one click's work."""
        self.metrics.expansions += 1
        edges: List[ExpandedEdge] = []
        seen: Dict[Tuple[str, EdgeTarget], None] = {}
        for schema_edge in self.schema.edges_from(instance.function):
            for edge in self._expand_edge(schema_edge, instance):
                if edge not in seen:
                    seen[edge] = None
                    edges.append(edge)
        return edges

    # ------------------------------------------------------------ #

    def _expand_edge(
        self, schema_edge: SchemaEdge, instance: NodeInstance
    ) -> List[ExpandedEdge]:
        if len(schema_edge.source_args) != len(instance.args):
            return []
        key = (id(schema_edge), instance.args)
        if self.cache_enabled:
            cached = self._edge_cache.get(key)
            if cached is not None:
                self.metrics.cache_hits += 1
                return cached[0]
        seed: Binding = {}
        consistent = True
        for name, value in zip(schema_edge.source_args, instance.args):
            if name in seed and not _values_same(seed[name], value):
                consistent = False
                break
            seed[name] = value
        edges: List[ExpandedEdge] = []
        footprint = Footprint()
        if consistent:
            self.metrics.queries_evaluated += 1
            with self._engine.record_into(footprint):
                for row in self._engine.bindings(
                    list(schema_edge.conditions), initial=[seed]
                ):
                    rendered = self._edge_from_row(schema_edge, row)
                    if rendered is not None:
                        edges.append(rendered)
        edges = _dedupe_edges(edges)
        if self.cache_enabled:
            self._edge_cache[key] = (edges, footprint, instance)
        return edges

    def _edge_from_row(
        self, schema_edge: SchemaEdge, row: Binding
    ) -> Optional[ExpandedEdge]:
        if schema_edge.label_is_variable:
            label_value = row.get(schema_edge.label)
            if isinstance(label_value, Atom):
                label = label_value.as_string()
            elif isinstance(label_value, str):
                label = label_value
            else:
                return None
        else:
            label = schema_edge.label
        link = schema_edge.link
        assert link is not None
        if isinstance(link.target, SkolemTerm):
            args = _term_args(link.target, row)
            if args is None:
                return None
            return (label, NodeInstance(link.target.function, args))
        if isinstance(link.target, Const):
            return (label, link.target.atom)
        value = row.get(link.target.name)
        if value is None:
            return None
        if isinstance(value, str):
            value = Atom(AtomType.STRING, value)
        return (label, value)


def _project_args(formals: Tuple[str, ...], row: Binding) -> Optional[InstanceArgs]:
    values: List[Value] = []
    for formal in formals:
        value = row.get(formal)
        if value is None:
            return None
        if isinstance(value, str):
            value = Atom(AtomType.STRING, value)
        values.append(value)
    return tuple(values)


def _term_args(term: SkolemTerm, row: Binding) -> Optional[InstanceArgs]:
    values: List[Value] = []
    for arg in term.args:
        if isinstance(arg, Const):
            values.append(arg.atom)
            continue
        value = row.get(arg.name)
        if value is None:
            return None
        if isinstance(value, str):
            value = Atom(AtomType.STRING, value)
        values.append(value)
    return tuple(values)


def _values_same(left: Value, right: Value) -> bool:
    if isinstance(left, Oid) or isinstance(right, Oid):
        return left == right
    left_atom = left if isinstance(left, Atom) else Atom(AtomType.STRING, str(left))
    right_atom = right if isinstance(right, Atom) else Atom(AtomType.STRING, str(right))
    return left_atom == right_atom


def _dedupe_edges(edges: List[ExpandedEdge]) -> List[ExpandedEdge]:
    seen: Dict[ExpandedEdge, None] = {}
    for edge in edges:
        seen.setdefault(edge, None)
    return list(seen)


class BrowseSession:
    """Simulates a user browsing a dynamic site.

    Each :meth:`visit` computes the page's outgoing edges by incremental
    query evaluation.  With ``lookahead`` on, the session prefetches the
    expansions of every NodeInstance target of the just-visited page, so
    the next click is usually a cache hit (the paper's "precompute
    lookahead results for queries of reachable nodes").  Targets whose
    expansions are already fully cached -- e.g. entries that survived a
    delta refresh because the edit did not touch their footprint -- are
    skipped rather than redundantly re-expanded.
    """

    def __init__(self, site: DynamicSite) -> None:
        self.site = site
        self.history: List[NodeInstance] = []

    def visit(self, instance: NodeInstance) -> List[ExpandedEdge]:
        edges = self.site.expand(instance)
        self.history.append(instance)
        if self.site.lookahead:
            for _, target in edges:
                if isinstance(target, NodeInstance):
                    if self.site.is_fully_cached(target):
                        self.site.metrics.lookahead_skipped += 1
                        continue
                    self.site.metrics.lookahead_prefetches += 1
                    self.site.expand(target)
        return edges

    def walk(self, start: NodeInstance, chooser, clicks: int) -> List[NodeInstance]:
        """Follow ``clicks`` links from ``start``; ``chooser(edges)``
        picks the next NodeInstance (or None to stop).  Returns the
        trajectory."""
        current = start
        trajectory = [current]
        for _ in range(clicks):
            edges = self.visit(current)
            candidates = [t for _, t in edges if isinstance(t, NodeInstance)]
            next_instance = chooser(candidates) if candidates else None
            if next_instance is None:
                break
            current = next_instance
            trajectory.append(current)
        return trajectory
