"""Incremental maintenance of materialized site graphs.

Section 7 of the paper: "we need to solve the problem of incremental
view updates for semistructured data, which is an open problem" --
warehoused sites were rebuilt from scratch on every data change.  This
module implements a practical insert-maintenance algorithm on top of the
machinery we already have, with honest fallbacks:

* **Skip** -- a data-graph insertion that cannot match any condition of a
  query (wrong label, wrong collection) cannot change that query's
  output; the query is skipped entirely.
* **Seed** -- when the insertion matches only conditions in a query's
  *root block* and the query is monotone, the root block's binding
  relation is recomputed *seeded* with the delta (the matched condition
  is removed and its variables are pre-bound), and construction is
  re-run for just those rows.  Nested blocks run on the seeded rows, so
  descendants stay consistent.  Skolem memoization and the graph's set
  semantics make re-construction idempotent: only genuinely new nodes
  and edges appear.
* **Recompute** -- if the match is inside a nested block (its
  construction depends on ancestor constructions for those rows) or the
  query contains a regular-path condition (a new edge anywhere can
  extend a path), the affected query -- and only it -- is re-evaluated.
* **Full rebuild** -- non-monotone cases: the query contains negation
  (an insertion can *invalidate* old rows, and a materialized site graph
  cannot un-construct), or the update is a deletion.  The maintainer
  rebuilds the site graph from scratch and says so.

Every path preserves the invariant checked property-style in the tests:
after any sequence of updates, the maintained site graph equals a fresh
evaluation of the program over the current data graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..graph import Atom, Graph, Oid, Target, from_python
from ..struql.ast import (
    CollectionCond,
    ComparisonCond,
    Condition,
    Const,
    EdgeCond,
    NotCond,
    PathCond,
    PredicateCond,
    Program,
    Query,
    Var,
)
from ..struql.eval import Binding, QueryEngine, _Constructor, Metrics, make_engine
from ..struql.parser import parse


@dataclass
class MaintenanceReport:
    """What one update cost: per-query dispositions plus graph deltas."""

    queries_skipped: int = 0
    queries_seeded: int = 0
    queries_recomputed: int = 0
    full_rebuilds: int = 0
    nodes_added: int = 0
    edges_added: int = 0

    def merge(self, other: "MaintenanceReport") -> None:
        self.queries_skipped += other.queries_skipped
        self.queries_seeded += other.queries_seeded
        self.queries_recomputed += other.queries_recomputed
        self.full_rebuilds += other.full_rebuilds
        self.nodes_added += other.nodes_added
        self.edges_added += other.edges_added


class SiteMaintainer:
    """Keeps a materialized site graph consistent with a mutating data graph.

    All data-graph mutations must go through the maintainer's update
    methods; it owns both graphs for the duration.
    """

    def __init__(
        self,
        program: Union[Program, Query, str],
        data_graph: Graph,
        site_graph: Optional[Graph] = None,
        use_blocks: bool = True,
    ) -> None:
        if isinstance(program, str):
            program = parse(program)
        if isinstance(program, Query):
            program = Program(queries=[program])
        self.program = program
        self.data_graph = data_graph
        # one warm engine for every maintenance pass: plans, the
        # statistics snapshot, and the path-reachability memo carry
        # across updates (epoch-invalidated); set-at-a-time by default
        self._engine = make_engine(data_graph, use_blocks=use_blocks)
        if site_graph is None:
            site_graph = self._evaluate_all()
        self.site_graph = site_graph
        self.last_report = MaintenanceReport()

    # ------------------------------------------------------------ #
    # update entry points

    def add_object(
        self,
        collection: str,
        attributes: Sequence[Tuple[str, object]],
        oid: Optional[Oid] = None,
    ) -> Oid:
        """Insert a new object with its attributes and membership; a
        single maintenance pass covers all of it."""
        node = self.data_graph.add_node(oid, hint=collection.lower())
        edges: List[Tuple[Oid, str, Target]] = []
        for label, value in attributes:
            stored = self.data_graph.add_edge(node, label, value)
            edges.append((node, label, stored))
        self.data_graph.add_to_collection(collection, node)
        self.last_report = self._maintain(
            new_edges=edges, new_members=[(collection, node)]
        )
        return node

    def add_edge(self, source: Oid, label: str, target: object) -> Target:
        """Insert one edge into the data graph and maintain the site."""
        stored = self.data_graph.add_edge(source, label, target)
        self.last_report = self._maintain(
            new_edges=[(source, label, stored)], new_members=[]
        )
        return stored

    def add_to_collection(self, collection: str, oid: Oid) -> None:
        """Add an existing object to a collection and maintain the site."""
        self.data_graph.add_to_collection(collection, oid)
        self.last_report = self._maintain(
            new_edges=[], new_members=[(collection, oid)]
        )

    def remove_edge(self, source: Oid, label: str, target: Target) -> None:
        """Deletions are non-monotone: full rebuild."""
        self.data_graph.remove_edge(source, label, target)
        self.site_graph = self._evaluate_all()
        self.last_report = MaintenanceReport(full_rebuilds=1)

    def remove_object(self, oid: Oid) -> None:
        """Object deletion: full rebuild."""
        self.data_graph.remove_node(oid)
        self.site_graph = self._evaluate_all()
        self.last_report = MaintenanceReport(full_rebuilds=1)

    # ------------------------------------------------------------ #
    # the maintenance pass

    def _maintain(
        self,
        new_edges: List[Tuple[Oid, str, Target]],
        new_members: List[Tuple[str, Oid]],
    ) -> MaintenanceReport:
        report = MaintenanceReport()
        before = (self.site_graph.node_count, self.site_graph.edge_count)
        self._mirror_imported_subgraphs(new_edges)
        for query in self.program.queries:
            disposition = self._classify(query, new_edges, new_members)
            if disposition == "skip":
                report.queries_skipped += 1
            elif disposition == "rebuild":
                self.site_graph = self._evaluate_all()
                report.full_rebuilds += 1
                report.nodes_added = self.site_graph.node_count - before[0]
                report.edges_added = self.site_graph.edge_count - before[1]
                return report
            elif disposition == "recompute":
                self._recompute_query(query)
                report.queries_recomputed += 1
            else:
                self._seed_query(query, new_edges, new_members)
                report.queries_seeded += 1
        report.nodes_added = self.site_graph.node_count - before[0]
        report.edges_added = self.site_graph.edge_count - before[1]
        return report

    def _mirror_imported_subgraphs(
        self, new_edges: List[Tuple[Oid, str, Target]]
    ) -> None:
        """Data nodes referenced by link/collect clauses were imported into
        the site graph *with their reachable subgraph*; when such a node
        gains an edge in the data graph, the site-graph copy must gain it
        too (and the new target's subgraph must be imported)."""
        for source, label, target in new_edges:
            if not self.site_graph.has_node(source):
                continue
            if isinstance(target, Oid) and not self.site_graph.has_node(target):
                for reached in self.data_graph.reachable(target):
                    self.site_graph.add_node(reached)
                for reached in self.data_graph.reachable(target):
                    for out_label, out_target in self.data_graph.out_edges(reached):
                        if isinstance(out_target, Oid) and not self.site_graph.has_node(out_target):
                            self.site_graph.add_node(out_target)
                        self.site_graph.add_edge(reached, out_label, out_target)
            self.site_graph.add_edge(source, label, target)

    def _classify(
        self,
        query: Query,
        new_edges: List[Tuple[Oid, str, Target]],
        new_members: List[Tuple[str, Oid]],
    ) -> str:
        root_matches = False
        nested_matches = False
        has_path = False
        has_negation = False
        for block in query.walk():
            in_root = block is query
            for condition in block.where:
                if isinstance(condition, NotCond):
                    has_negation = True
                if isinstance(condition, PathCond):
                    has_path = True
                if self._condition_matches(condition, new_edges, new_members):
                    if in_root:
                        root_matches = True
                    else:
                        nested_matches = True
        if not root_matches and not nested_matches:
            # an insertion can also matter to path conditions regardless
            # of labels (a new edge may extend any path)
            if has_path and new_edges:
                return "recompute"
            return "skip"
        if has_negation:
            return "rebuild"
        if has_path or nested_matches:
            return "recompute"
        return "seed"

    @staticmethod
    def _condition_matches(
        condition: Condition,
        new_edges: List[Tuple[Oid, str, Target]],
        new_members: List[Tuple[str, Oid]],
    ) -> bool:
        if isinstance(condition, EdgeCond):
            if isinstance(condition.label, Var):
                return bool(new_edges)
            return any(label == condition.label for _, label, _ in new_edges)
        if isinstance(condition, CollectionCond):
            return any(name == condition.collection for name, _ in new_members)
        if isinstance(condition, NotCond):
            return any(
                SiteMaintainer._condition_matches(inner, new_edges, new_members)
                for inner in condition.inner
            )
        if isinstance(condition, PathCond):
            return bool(new_edges)
        return False  # predicates / comparisons never match a delta alone

    # ------------------------------------------------------------ #
    # dispositions

    def _evaluate_all(self) -> Graph:
        from ..struql.eval import evaluate

        return evaluate(self.program, self.data_graph, engine=self._engine)

    def _recompute_query(self, query: Query) -> None:
        """Re-evaluate one query into the existing site graph; Skolem
        memoization + set semantics make this purely additive and
        idempotent."""
        engine = self._engine
        rows = engine.bindings(query.where, initial=[{}])
        _Constructor(self.site_graph, Metrics(), self.data_graph).run(
            query, rows, engine
        )

    def _seed_query(
        self,
        query: Query,
        new_edges: List[Tuple[Oid, str, Target]],
        new_members: List[Tuple[str, Oid]],
    ) -> None:
        """Delta-seeded evaluation of a root block whose condition matched."""
        engine = self._engine
        all_rows: List[Binding] = []
        for index, condition in enumerate(query.where):
            seeds = self._seeds_for(condition, new_edges, new_members)
            if not seeds:
                continue
            remaining = [c for i, c in enumerate(query.where) if i != index]
            rows = engine.bindings(remaining, initial=seeds)
            # the seeded rows must still satisfy the matched condition as
            # a filter (e.g. the delta member must be in the collection --
            # trivially true for the delta itself, but seeds for edges
            # with constants must respect target constants)
            all_rows.extend(rows)
        deduped: Dict[Tuple, Binding] = {}
        for row in all_rows:
            key = tuple(sorted((k, repr(v)) for k, v in row.items()))
            deduped[key] = row
        _Constructor(self.site_graph, Metrics(), self.data_graph).run(
            query, list(deduped.values()), engine
        )

    @staticmethod
    def _seeds_for(
        condition: Condition,
        new_edges: List[Tuple[Oid, str, Target]],
        new_members: List[Tuple[str, Oid]],
    ) -> List[Binding]:
        seeds: List[Binding] = []
        if isinstance(condition, EdgeCond):
            for source, label, target in new_edges:
                if isinstance(condition.label, str) and label != condition.label:
                    continue
                seed: Binding = {condition.source.name: source}
                conflict = False
                if isinstance(condition.label, Var):
                    if condition.label.name in seed:
                        conflict = True  # same var as source: oid vs label
                    else:
                        seed[condition.label.name] = label
                if isinstance(condition.target, Var):
                    existing = seed.get(condition.target.name)
                    if existing is not None and existing != target:
                        conflict = True  # e.g. x -> "l" -> x on a non-loop
                    else:
                        seed[condition.target.name] = target
                elif isinstance(condition.target, Const):
                    from ..graph import atoms_equal

                    if not (
                        isinstance(target, Atom)
                        and atoms_equal(target, condition.target.atom)
                    ):
                        continue
                if not conflict:
                    seeds.append(seed)
        elif isinstance(condition, CollectionCond):
            for name, member in new_members:
                if name == condition.collection:
                    seeds.append({condition.var.name: member})
        return seeds
