"""Propagating page edits back to the underlying data.

Section 5.2: "Both the CNN team and [the] Web site design firm indicated
... that they would need to edit both the structure and content of the
generated pages and that these changes should be propagated
automatically back into the HTML templates, site-definition query, or
underlying data."

This module implements the *data* direction of that request for content
edits: a user edits an atomic value shown on a generated page; we trace
the site-graph edge carrying that value back through the site-definition
query to the data-graph edge(s) it was copied from, rewrite them, and
let the :class:`~repro.core.maintenance.SiteMaintainer` refresh the
site.  (Template and query edits remain out of scope, as in the paper --
they are the site builder's artifacts, not data.)

Tracing uses the same machinery as incremental evaluation: a site edge
``F(args) -L-> value`` corresponds to a site-schema edge whose guard
conjunction we evaluate with the Skolem formals bound to ``args``; a
where-clause edge condition whose variables produced the link's label
and target pinpoints the originating data edge.  Edits are refused --
never guessed -- when the value is not a copy of a data edge (constants,
Skolem targets) or when the trace is ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import StrudelError
from ..graph import Atom, Oid, Target, atoms_equal, from_python
from ..struql.ast import Const, EdgeCond, Var
from ..struql.eval import Binding, QueryEngine, make_engine
from .incremental import DynamicSite, NodeInstance
from .maintenance import SiteMaintainer
from .schema import SchemaEdge


class PropagationError(StrudelError):
    """The edit could not be traced to exactly one kind of data origin."""


@dataclass(frozen=True)
class DataOrigin:
    """A data-graph edge that produced the edited site value."""

    source: Oid
    label: str
    value: Target

    def __str__(self) -> str:
        return f"{self.source} -{self.label}-> {self.value!r}"


@dataclass
class PropagationResult:
    """What one edit did."""

    origins_rewritten: List[DataOrigin] = field(default_factory=list)
    new_value: Optional[Atom] = None
    site_rebuilt: bool = False


class EditPropagator:
    """Traces and applies content edits for one maintained site."""

    def __init__(self, maintainer: SiteMaintainer) -> None:
        self.maintainer = maintainer
        self._dynamic = DynamicSite(
            maintainer.program, maintainer.data_graph, cache=False
        )

    # ------------------------------------------------------------ #
    # tracing

    def instance_for(self, oid: Oid) -> Optional[NodeInstance]:
        """The NodeInstance whose Skolem term materializes as ``oid``."""
        for function in self._dynamic.schema.functions:
            for instance in self._dynamic.instances_of(function):
                if instance.oid() == oid:
                    return instance
        return None

    def trace(
        self, page_oid: Oid, label: str, value: Union[Atom, object]
    ) -> List[DataOrigin]:
        """All data edges whose value was copied into
        ``page_oid -label-> value`` by the site definition."""
        if not isinstance(value, Atom):
            value = from_python(value)
        instance = self.instance_for(page_oid)
        if instance is None:
            raise PropagationError(
                f"{page_oid} is not a Skolem-created page of this site"
            )
        origins: Dict[DataOrigin, None] = {}
        engine = make_engine(self.maintainer.data_graph)
        for schema_edge in self._dynamic.schema.edges_from(instance.function):
            if len(schema_edge.source_args) != len(instance.args):
                continue
            link = schema_edge.link
            assert link is not None
            if not isinstance(link.target, Var):
                continue  # constants and Skolem targets are not data copies
            seed: Binding = dict(zip(schema_edge.source_args, instance.args))
            for row in engine.bindings(list(schema_edge.conditions), initial=[seed]):
                rendered_label = self._row_label(schema_edge, row)
                if rendered_label != label:
                    continue
                bound = row.get(link.target.name)
                if not isinstance(bound, Atom) or not atoms_equal(bound, value):
                    continue
                origin = self._origin_from_row(schema_edge, link.target.name, row)
                if origin is not None:
                    origins[origin] = None
        return list(origins)

    @staticmethod
    def _row_label(schema_edge: SchemaEdge, row: Binding) -> Optional[str]:
        if not schema_edge.label_is_variable:
            return schema_edge.label
        bound = row.get(schema_edge.label)
        if isinstance(bound, Atom):
            return bound.as_string()
        if isinstance(bound, str):
            return bound
        return None

    @staticmethod
    def _origin_from_row(
        schema_edge: SchemaEdge, value_var: str, row: Binding
    ) -> Optional[DataOrigin]:
        """Find the where-clause edge condition that bound the value
        variable; its matched data edge is the origin."""
        for condition in schema_edge.conditions:
            if not isinstance(condition, EdgeCond):
                continue
            if not isinstance(condition.target, Var):
                continue
            if condition.target.name != value_var:
                continue
            source = row.get(condition.source.name)
            if not isinstance(source, Oid):
                continue
            if isinstance(condition.label, str):
                edge_label: Optional[str] = condition.label
            else:
                bound = row.get(condition.label.name)
                edge_label = bound if isinstance(bound, str) else (
                    bound.as_string() if isinstance(bound, Atom) else None
                )
            value = row.get(value_var)
            if edge_label is not None and value is not None and not isinstance(value, Oid):
                atom = value if isinstance(value, Atom) else from_python(value)
                return DataOrigin(source=source, label=edge_label, value=atom)
        return None

    # ------------------------------------------------------------ #
    # applying

    def apply(
        self,
        page_oid: Oid,
        label: str,
        old_value: Union[Atom, object],
        new_value: Union[Atom, object],
    ) -> PropagationResult:
        """Rewrite the data origin(s) of one displayed value and refresh
        the site.  Raises :class:`PropagationError` when the value has no
        data origin (it is a query constant or structural link)."""
        if not isinstance(old_value, Atom):
            old_value = from_python(old_value)
        if not isinstance(new_value, Atom):
            new_value = from_python(new_value)
        origins = self.trace(page_oid, label, old_value)
        if not origins:
            raise PropagationError(
                f"{page_oid} -{label}-> {old_value!r} does not originate "
                "from a data edge; edit the query or templates instead"
            )
        data = self.maintainer.data_graph
        for origin in origins:
            data.remove_edge(origin.source, origin.label, origin.value)
            replaced = new_value
            if isinstance(origin.value, Atom) and origin.value.type is not new_value.type:
                # keep the original flavour (e.g. TEXT_FILE) for same-kind edits
                if isinstance(new_value.value, str) and isinstance(
                    origin.value.value, str
                ):
                    replaced = Atom(origin.value.type, new_value.value)
            data.add_edge(origin.source, origin.label, replaced)
        # value rewrites are delete+insert: rebuild through the maintainer
        self.maintainer.site_graph = self.maintainer._evaluate_all()
        self._dynamic = DynamicSite(
            self.maintainer.program, self.maintainer.data_graph, cache=False
        )
        return PropagationResult(
            origins_rewritten=origins,
            new_value=new_value,
            site_rebuilt=True,
        )
