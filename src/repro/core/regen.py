"""Selective regeneration: re-render only the pages an edit affected.

The static pipeline's answer to the incremental-maintenance problem:
:class:`RegeneratingSite` owns the whole chain

    data graph --maintainer--> site graph --generator--> HTML pages

and keeps it warm across data-graph mutations.  Each mutation flows
through the :class:`~repro.core.maintenance.SiteMaintainer` (which
patches the materialized site graph), then the regenerator reads the
*site graph's own delta log* to learn which site-graph nodes changed and
re-renders only the pages whose recorded read set intersects them --
every other page keeps its bytes.  The persistent generator keeps the
filename table, so retained pages keep their names and the whole output
stays byte-identical to a from-scratch build (property-tested).

Honest fallbacks, matching the maintainer's: deletions and negation make
the maintainer replace the site graph wholesale, and the bounded delta
log can truncate -- both regenerate everything (counted as ``coarse``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..graph import Graph, Oid, Target
from ..struql.ast import Program, Query
from ..template import GeneratedSite, HtmlGenerator, TemplateSet
from .maintenance import MaintenanceReport, SiteMaintainer


class _ReadTracker:
    """Delegation wrapper over a site graph that records which nodes a
    render reads.  Only the accessors the renderer, the template
    selector, and root resolution use are intercepted; everything else
    forwards untouched."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        #: when set, every node read is recorded here
        self.log: Optional[Set[Oid]] = None

    def _note(self, oid: Oid) -> None:
        if self.log is not None:
            self.log.add(oid)

    def targets(self, oid: Oid, label: str):
        self._note(oid)
        return self._graph.targets(oid, label)

    def attribute(self, oid: Oid, label: str):
        self._note(oid)
        return self._graph.attribute(oid, label)

    def out_edges(self, oid: Oid):
        self._note(oid)
        return self._graph.out_edges(oid)

    def labels_of(self, oid: Oid):
        self._note(oid)
        return self._graph.labels_of(oid)

    def has_node(self, oid: Oid) -> bool:
        self._note(oid)
        return self._graph.has_node(oid)

    def collections_of(self, oid: Oid) -> List[str]:
        self._note(oid)
        return self._graph.collections_of(oid)

    def in_collection(self, name: str, oid: Oid) -> bool:
        self._note(oid)
        return self._graph.in_collection(name, oid)

    def __getattr__(self, name: str):
        return getattr(self._graph, name)


class _TrackingGenerator(HtmlGenerator):
    """An :class:`HtmlGenerator` that records, for every page it
    renders, the set of site-graph nodes the render read."""

    def __init__(self, graph: Graph, templates: TemplateSet) -> None:
        tracker = _ReadTracker(graph)
        super().__init__(tracker, templates)  # type: ignore[arg-type]
        self.tracker = tracker
        #: page oid -> site-graph nodes its last render read
        self.page_deps: Dict[Oid, Set[Oid]] = {}

    def _render_page(self, oid: Oid) -> str:
        reads: Set[Oid] = set()
        previous = self.tracker.log
        self.tracker.log = reads
        try:
            html = super()._render_page(oid)
        finally:
            self.tracker.log = previous
        self.page_deps[oid] = reads
        return html


@dataclass
class RegenReport:
    """What one mutation cost the static pipeline."""

    #: the maintainer's disposition for the site-graph update
    maintenance: MaintenanceReport = field(default_factory=MaintenanceReport)
    #: True when everything was re-rendered (rebuild or truncated log)
    coarse: bool = False
    #: pages re-rendered because their read set met the delta
    pages_rerendered: int = 0
    #: brand-new pages discovered and rendered
    pages_added: int = 0
    #: pages whose bytes were provably unaffected and kept
    pages_retained: int = 0
    #: individual site-graph mutations the delta carried
    delta_size: int = 0


class RegeneratingSite:
    """A statically generated site kept warm under data-graph edits.

    ``regen.pages`` is always byte-identical to building the site from
    scratch over the current data graph; the point is that after a small
    edit only the affected pages are re-rendered to get there.
    """

    def __init__(
        self,
        program: Union[Program, Query, str],
        data_graph: Graph,
        templates: TemplateSet,
        roots: Sequence[Union[Oid, str]],
        site_name: str = "site",
        use_blocks: bool = True,
    ) -> None:
        self.maintainer = SiteMaintainer(program, data_graph, use_blocks=use_blocks)
        self.templates = templates
        self.roots = list(roots)
        self.site_name = site_name
        self.last_report = RegenReport()
        self._full_build()

    # ------------------------------------------------------------ #
    # output

    @property
    def site(self) -> GeneratedSite:
        return self._site

    @property
    def pages(self) -> Dict[str, str]:
        return self._site.pages

    # ------------------------------------------------------------ #
    # mutation entry points (mirror SiteMaintainer's)

    def add_object(
        self,
        collection: str,
        attributes: Sequence[Tuple[str, object]],
        oid: Optional[Oid] = None,
    ) -> Oid:
        node = self.maintainer.add_object(collection, attributes, oid)
        self.last_report = self._regenerate()
        return node

    def add_edge(self, source: Oid, label: str, target: object) -> Target:
        stored = self.maintainer.add_edge(source, label, target)
        self.last_report = self._regenerate()
        return stored

    def add_to_collection(self, collection: str, oid: Oid) -> None:
        self.maintainer.add_to_collection(collection, oid)
        self.last_report = self._regenerate()

    def remove_edge(self, source: Oid, label: str, target: Target) -> None:
        self.maintainer.remove_edge(source, label, target)
        self.last_report = self._regenerate()

    def remove_object(self, oid: Oid) -> None:
        self.maintainer.remove_object(oid)
        self.last_report = self._regenerate()

    # ------------------------------------------------------------ #

    def rebuild(self) -> RegenReport:
        """Re-render every page from the current site graph.

        The explicit recovery path: after an external failure mid-edit
        (e.g. a fault injected between maintenance and re-render) the
        warm page set may be behind the site graph; a rebuild restores
        the byte-identical-to-scratch invariant.  Counted as coarse.
        """
        self._full_build()
        report = RegenReport(maintenance=self.maintainer.last_report, coarse=True)
        report.pages_rerendered = len(self._site.pages)
        self.last_report = report
        return report

    def _full_build(self) -> None:
        site_graph = self.maintainer.site_graph
        self._generator = _TrackingGenerator(site_graph, self.templates)
        self._site = self._generator.generate(self.roots, self.site_name)
        self._site_graph_ref = site_graph
        self._site_epoch = site_graph.epoch

    def _regenerate(self) -> RegenReport:
        report = RegenReport(maintenance=self.maintainer.last_report)
        site_graph = self.maintainer.site_graph
        if site_graph is not self._site_graph_ref:
            # the maintainer rebuilt the site graph wholesale (deletion
            # or negation): page identity is gone, regenerate everything
            self._full_build()
            report.coarse = True
            report.pages_rerendered = len(self._site.pages)
            return report
        delta = site_graph.delta_since(self._site_epoch)
        if delta is None:
            self._full_build()
            report.coarse = True
            report.pages_rerendered = len(self._site.pages)
            return report
        report.delta_size = delta.size()
        self._site_epoch = site_graph.epoch
        if delta.empty:
            report.pages_retained = len(self._site.pages)
            return report
        affected: Set[Oid] = delta.touched_oids()
        affected.update(delta.nodes_added)
        generator = self._generator
        # roots naming collections can have gained members: any root oid
        # without a filename yet becomes a new page seed
        for root in self.roots:
            for oid in generator._resolve_root(root):
                generator._assign_filename(oid)
        stale = [
            oid
            for oid, deps in generator.page_deps.items()
            if deps & affected
        ]
        for oid in stale:
            self._site.pages[generator._filenames[oid]] = generator._render_page(oid)
        report.pages_rerendered = len(stale)
        report.pages_retained = len(generator.page_deps) - len(stale)
        # re-rendering (and new root members) can have discovered brand
        # new pages: drain the generator queue exactly like a full build
        while generator._queue:
            oid = generator._queue.popleft()
            if oid in generator.page_deps:
                continue
            self._site.pages[generator._filenames[oid]] = generator._render_page(oid)
            report.pages_added += 1
        self._site.filenames = dict(generator._filenames)
        return report
