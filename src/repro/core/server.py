"""A click-time page server: dynamic evaluation end to end.

Section 7 of the paper: "Currently, STRUDEL does not support dynamically
generated sites.  In practice, dynamic generation is supported by often
large sets of loosely related CGI programs.  Supporting dynamic
evaluation would eliminate writing such programs by hand."

This module closes that gap for the reproduction.  :class:`PageServer`
answers ``GET``-style requests by

1. resolving the request path to a Skolem-term :class:`NodeInstance`;
2. computing the node's outgoing edges with the *incremental query* of
   its site-schema edges (:class:`~repro.core.incremental.DynamicSite`,
   with caching and optional lookahead);
3. rendering the node's HTML template against a
   :class:`LazySiteGraph` -- a site graph materialized on demand, one
   node expansion at a time, so a request touches only the data it
   displays.

No sockets are involved: ``server.get("/")`` returns HTML text.  The
test suite asserts that every page the server produces is byte-identical
to the statically generated page for the same object, which is the
correctness contract for dynamic evaluation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

import html as html_escape

from ..errors import (
    DeadlineExceeded,
    SiteDefinitionError,
    StrudelError,
    TemplateResolutionError,
)
from ..graph import Atom, Graph, Oid
from ..resilience.chaos import ChaosFault
from ..struql.ast import Program, Query
from ..template import Renderer, Template, TemplateSet
from ..template.eval import PageRegistry
from .incremental import DynamicSite, NodeInstance, RefreshResult


class LazySiteGraph(Graph):
    """A site graph whose nodes materialize on first touch.

    Backed by a :class:`DynamicSite`: touching a Skolem node runs its
    incremental queries and installs the resulting edges; touching a
    *data-graph* node (referenced by a link clause) copies its out-edges
    from the data graph, one level at a time.  Every read accessor the
    renderer and template selector use is overridden to ensure the node
    first.
    """

    def __init__(self, dynamic: DynamicSite) -> None:
        super().__init__("lazy-site")
        self.dynamic = dynamic
        self._instances: Dict[Oid, NodeInstance] = {}
        self._materialized: Dict[Oid, None] = {}
        self.expansions = 0
        #: when set, every node read is recorded here (page dep tracking)
        self._read_log: Optional[Set[Oid]] = None

    # ------------------------------------------------------------ #
    # instance bookkeeping

    def register_instance(self, instance: NodeInstance) -> Oid:
        oid = instance.oid()
        self._instances[oid] = instance
        return oid

    def instance_for(self, oid: Oid) -> Optional[NodeInstance]:
        return self._instances.get(oid)

    # ------------------------------------------------------------ #
    # lazy materialization

    def _ensure(self, oid: Oid) -> None:
        if self._read_log is not None:
            self._read_log.add(oid)
        if oid in self._materialized:
            return
        self._materialized[oid] = None
        instance = self._instances.get(oid)
        if instance is not None:
            self.expansions += 1
            self.add_node(oid)
            for label, target in self.dynamic.expand(instance):
                if isinstance(target, NodeInstance):
                    target_oid = self.register_instance(target)
                    self.add_node(target_oid)
                    self.add_edge(oid, label, target_oid)
                elif isinstance(target, Oid):
                    self.add_node(target)
                    self.add_edge(oid, label, target)
                else:
                    self.add_edge(oid, label, target)
            return
        data = self.dynamic.data_graph
        if data.has_node(oid):
            self.add_node(oid)
            for label, target in data.out_edges(oid):
                if isinstance(target, Oid):
                    self.add_node(target)
                self.add_edge(oid, label, target)

    def demote(self, oid: Oid) -> None:
        """De-materialize one node: drop its copied out-edges so the next
        touch re-runs its incremental queries (or re-copies it from the
        data graph).  Incoming edges from other materialized nodes are
        kept -- the node itself still exists, only its expansion is
        stale."""
        if oid not in self._materialized:
            return
        del self._materialized[oid]
        if Graph.has_node(self, oid):
            for label, target in list(Graph.out_edges(self, oid)):
                self.remove_edge(oid, label, target)

    # ------------------------------------------------------------ #
    # read accessors used by the renderer / template selection

    def has_node(self, oid: Oid) -> bool:
        self._ensure(oid)
        return super().has_node(oid)

    def targets(self, oid: Oid, label: str):
        self._ensure(oid)
        return super().targets(oid, label)

    def attribute(self, oid: Oid, label: str):
        self._ensure(oid)
        return super().attribute(oid, label)

    def out_edges(self, oid: Oid):
        self._ensure(oid)
        return super().out_edges(oid)

    def labels_of(self, oid: Oid):
        self._ensure(oid)
        return super().labels_of(oid)

    def collections_of(self, oid: Oid) -> List[str]:
        """Collection membership is derived from the site schema's collect
        clauses (for Skolem nodes) or the data graph (for data nodes)."""
        if self._read_log is not None:
            self._read_log.add(oid)
        instance = self._instances.get(oid)
        if instance is not None:
            return [
                name
                for name, functions in self.dynamic.schema.collections.items()
                if instance.function in functions
            ]
        data = self.dynamic.data_graph
        if data.has_node(oid):
            return data.collections_of(oid)
        return []


@dataclass(frozen=True)
class PageResponse:
    """One served page with real HTTP semantics.

    ``status`` is the HTTP status an HTTP front-end should send --
    ``404`` for paths the site does not define, ``200`` for a healthy
    render, ``200`` with ``kind="stale"`` for last-known-good bytes
    after a render fault, and ``500`` with ``kind="error-page"`` for a
    fault with no stale copy (a structured error page, never a
    traceback).
    """

    status: int
    body: str
    #: "ok" | "stale" | "error-page" | "not-found"
    kind: str = "ok"


class PageServer(PageRegistry):
    """Serves one site definition dynamically, path by path.

    Paths look like the static generator's filenames, rooted at ``/``:
    the first zero-argument Skolem instance is ``/``; every other page is
    ``/<sanitized-term>.html``.
    """

    def __init__(
        self,
        program: Union[Program, Query, str],
        data_graph: Graph,
        templates: TemplateSet,
        cache: bool = True,
        lookahead: bool = False,
        use_blocks: bool = True,
    ) -> None:
        self.dynamic = DynamicSite(
            program, data_graph, cache=cache, lookahead=lookahead, use_blocks=use_blocks
        )
        self.templates = templates
        self.graph = LazySiteGraph(self.dynamic)
        self._renderer = Renderer(self.graph, registry=self)
        self._paths: Dict[str, Oid] = {}
        self._hrefs: Dict[Oid, str] = {}
        #: path -> (rendered HTML, site-graph oids the render read)
        self._page_cache: Dict[str, Tuple[str, Set[Oid]]] = {}
        #: path -> last successfully rendered HTML; survives invalidation,
        #: so a failing re-render can fall back to it
        self._last_good: Dict[str, str] = {}
        #: one entry per degraded response (stale page or error page)
        self.degradations: List[Dict[str, str]] = []
        self.requests = 0
        self.page_cache_hits = 0
        self.pages_invalidated = 0
        self.pages_retained = 0
        roots = self.dynamic.roots()
        if not roots:
            raise SiteDefinitionError(
                "site definition has no zero-argument Skolem function to "
                "serve as the root page"
            )
        for index, root in enumerate(roots):
            oid = self.graph.register_instance(root)
            path = "/" if index == 0 else self._path_for(oid)
            self._paths[path] = oid
            self._hrefs[oid] = path

    # ------------------------------------------------------------ #
    # PageRegistry interface

    def href_for(self, oid: Oid) -> Optional[str]:
        if self.templates.resolve(self.graph, oid) is None:
            return None
        href = self._hrefs.get(oid)
        if href is None:
            href = self._path_for(oid)
            self._hrefs[oid] = href
            self._paths[href] = oid
        return href

    def template_for(self, oid: Oid) -> Optional[Template]:
        return self.templates.resolve(self.graph, oid)

    # ------------------------------------------------------------ #

    def get(self, path: str, strict: bool = False) -> str:
        """Render the page at ``path``; raises KeyError for unknown paths.

        This is one "click": only the incremental queries of the
        requested node (and of objects its template embeds or links)
        run.

        A render or evaluation failure never leaks a traceback to the
        requester: the server answers with the page's last-known-good
        bytes when it has them, else a structured error page, recording
        the degradation in ``degradations`` and the click metrics.  Pass
        ``strict=True`` to re-raise instead (tests and debugging).

        :meth:`get_response` is the HTTP-shaped variant: it never
        raises, mapping every outcome to a real status code.
        """
        response = self.get_response(path, strict=strict)
        if response.kind == "not-found":
            raise KeyError(f"no page at {path!r}")
        return response.body

    def get_response(self, path: str, strict: bool = False) -> PageResponse:
        """Serve ``path`` with HTTP status semantics instead of
        in-process sentinels: 404 for paths the site does not define,
        200 for healthy or stale (last-known-good) bytes, 500 for a
        render fault with nothing stale to fall back on."""
        oid = self._paths.get(path)
        if oid is None:
            return PageResponse(404, _not_found_page(path), "not-found")
        self.requests += 1
        cached = self._page_cache.get(path)
        if cached is not None:
            self.page_cache_hits += 1
            return PageResponse(200, cached[0])
        reads: Set[Oid] = set()
        previous_log = self.graph._read_log
        self.graph._read_log = reads
        try:
            template = self.templates.resolve(self.graph, oid)
            if template is None:
                raise TemplateResolutionError(f"no template for page object {oid}")
            html = self._renderer.render(template, oid)
        except DeadlineExceeded:
            # cancellation is not degradation: no stale fallback, no
            # error page -- the serving tier maps this to a 504
            self.dynamic.metrics.deadline_exceeded += 1
            raise
        except (StrudelError, ChaosFault) as error:
            if strict:
                raise
            return self._degrade(path, error)
        finally:
            self.graph._read_log = previous_log
        self._page_cache[path] = (html, reads)
        self._last_good[path] = html
        return PageResponse(200, html)

    def _degrade(self, path: str, error: BaseException) -> PageResponse:
        """Answer a failed render: stale last-known-good bytes when
        available (200, degraded), else a structured error page (500).
        Never a traceback."""
        stale = self._last_good.get(path)
        record = {
            "path": path,
            "error": f"{type(error).__name__}: {error}",
            "kind": "stale" if stale is not None else "error-page",
        }
        self.degradations.append(record)
        if stale is not None:
            self.dynamic.metrics.degraded_serves += 1
            return PageResponse(200, stale, "stale")
        self.dynamic.metrics.error_pages += 1
        return PageResponse(500, _error_page(path, error), "error-page")

    def known_paths(self) -> List[str]:
        """Paths discovered so far (grows as pages are served)."""
        return sorted(self._paths)

    def refresh(self) -> RefreshResult:
        """Selective invalidation after data-graph mutations.

        Asks the :class:`DynamicSite` for the delta since the caches
        were last consistent, then (a) de-materializes only the lazy
        site-graph nodes whose expansions the delta touched and (b)
        drops only the cached pages whose recorded read set intersects
        those nodes.  Unaffected pages keep serving their cached bytes
        -- the warm cost of an edit scales with |delta|, not |site|.
        Falls back to the coarse :meth:`invalidate` when the bounded
        delta log no longer reaches back.
        """
        result = self.dynamic.refresh()
        if result.coarse:
            self._coarse_reset()
            return result
        delta = result.delta
        if delta is None:
            return result
        affected: Set[Oid] = {owner.oid() for owner in result.dropped_instances}
        affected |= delta.touched_oids()
        for oid in affected:
            self.graph.demote(oid)
        for path, (_, deps) in list(self._page_cache.items()):
            if deps & affected:
                del self._page_cache[path]
                self.pages_invalidated += 1
            else:
                self.pages_retained += 1
        return result

    def invalidate(self) -> None:
        """Drop every cached expansion after the data graph changed.

        The server keeps answering on the same paths; the next request
        for each page re-runs its incremental queries against the
        current data.  :meth:`refresh` is the selective variant -- it
        drops only what a delta can have affected.

        The warm :class:`DynamicSite` -- its query engine, cached plans,
        and statistics snapshot -- survives; only its materialized
        expansion caches and the lazily built site graph are dropped.
        """
        self.dynamic.invalidate()
        self._coarse_reset()

    def _coarse_reset(self) -> None:
        self._page_cache.clear()
        self.graph = LazySiteGraph(self.dynamic)
        self._renderer = Renderer(self.graph, registry=self)
        for oid in self._hrefs:
            instance = None
            for root in self.dynamic.roots():
                if root.oid() == oid:
                    instance = root
            if instance is not None:
                self.graph.register_instance(instance)
        # re-register every known page instance so old paths keep working
        for path, oid in list(self._paths.items()):
            for function in self.dynamic.schema.functions:
                prefix = function + "("
                if oid.name.startswith(prefix):
                    for candidate in self.dynamic.instances_of(function):
                        if candidate.oid() == oid:
                            self.graph.register_instance(candidate)
                            break
                    break

    def links_of(self, path: str) -> List[str]:
        """The local hrefs on a served page -- the next clickable paths."""
        html = self.get(path)
        return [
            href
            for href in re.findall(r'href="([^"]+)"', html)
            if href.startswith("/")
        ]

    @staticmethod
    def _path_for(oid: Oid) -> str:
        stem = re.sub(r"[^A-Za-z0-9_\-]+", "_", oid.name).strip("_") or "page"
        return f"/{stem}.html"


def _not_found_page(path: str) -> str:
    """A minimal, structured 404 page (the HTTP-shaped sibling of the
    library API's KeyError)."""
    safe_path = html_escape.escape(path)
    return (
        "<html><head><title>Not found</title></head>\n"
        "<body>\n"
        "<h1>404 Not Found</h1>\n"
        f"<p>No page is served at <code>{safe_path}</code>.</p>\n"
        "</body></html>\n"
    )


def _error_page(path: str, error: BaseException) -> str:
    """A minimal, structured "temporarily unavailable" page.

    One line of sanitized diagnostic -- the error type and message,
    HTML-escaped -- and never a traceback.
    """
    detail = html_escape.escape(f"{type(error).__name__}: {error}")
    safe_path = html_escape.escape(path)
    return (
        "<html><head><title>Page temporarily unavailable</title></head>\n"
        "<body>\n"
        "<h1>Page temporarily unavailable</h1>\n"
        f"<p>The page at <code>{safe_path}</code> could not be generated.</p>\n"
        f"<p><small>{detail}</small></p>\n"
        "</body></html>\n"
    )


def _deadline_page(path: str, error: BaseException) -> str:
    """The structured 504 body for a request whose deadline expired.

    Same contract as :func:`_error_page` -- one sanitized line, never a
    traceback -- but phrased as a timeout so clients know retrying a
    cheaper request may succeed while this exact one will not.
    """
    detail = html_escape.escape(str(error))
    safe_path = html_escape.escape(path)
    return (
        "<html><head><title>Request timed out</title></head>\n"
        "<body>\n"
        "<h1>504 Gateway Timeout</h1>\n"
        f"<p>Generating the page at <code>{safe_path}</code> exceeded "
        "its time budget and was cancelled.</p>\n"
        f"<p><small>{detail}</small></p>\n"
        "</body></html>\n"
    )
