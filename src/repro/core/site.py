"""The site-management facade: Strudel's three separated tasks in one API.

A :class:`SiteDefinition` bundles what the paper keeps separate on
purpose: (1) where the data comes from (a data graph, usually produced by
the mediator), (2) the site-definition STRUQL query, and (3) the HTML
templates plus root objects.  :meth:`SiteBuilder.build` runs the whole
pipeline of the paper's Fig. 1:

    data graph --site-definition query--> site graph --HTML generator-->
    browsable web site

Multiple *versions* of a site come from either applying different queries
to the same data graph or different template sets to the same site graph
(section 6.1: "all versions share one site graph, but each version has
its own HTML templates"); see :mod:`repro.core.versions` for the
derivation helpers and diff measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import SiteAnalysisError, SiteDefinitionError
from ..graph import Graph, Oid
from ..struql import Metrics, Program, QueryEngine, evaluate, make_engine, parse
from ..template import GeneratedSite, HtmlGenerator, TemplateSet
from .constraints import CheckResult, Formula, check
from .incremental import DynamicSite
from .schema import SiteSchema
from .stats import SiteStats, measure_site


@dataclass
class SiteDefinition:
    """A complete declarative site specification."""

    name: str
    query: Union[Program, str]
    templates: TemplateSet
    roots: List[Union[Oid, str]] = field(default_factory=list)
    constraints: List[Union[Formula, str]] = field(default_factory=list)

    def program(self) -> Program:
        if isinstance(self.query, str):
            self.query = parse(self.query)
        return self.query

    def site_schema(self) -> SiteSchema:
        """The abstract structure of sites this definition generates."""
        return SiteSchema.from_program(self.program())


@dataclass
class BuiltSite:
    """Everything one build produces."""

    definition: SiteDefinition
    data_graph: Graph
    site_graph: Graph
    generated: GeneratedSite
    constraint_results: Dict[str, CheckResult] = field(default_factory=dict)

    @property
    def pages(self) -> Dict[str, str]:
        return self.generated.pages

    def stats(self, sources: int = 0) -> SiteStats:
        return measure_site(
            self.definition.name,
            self.definition.program(),
            templates=self.definition.templates,
            data_graph=self.data_graph,
            site_graph=self.site_graph,
            generated=self.generated,
            sources=sources,
        )

    def write(self, directory: str) -> List[str]:
        return self.generated.write(directory)


class SiteBuilder:
    """Builds browsable sites from one data graph.

    The builder holds the data graph (task 1's output) and any number of
    registered definitions; building is side-effect free on the data
    graph, so the same builder serves all versions of a site.
    """

    def __init__(self, data_graph: Graph) -> None:
        self.data_graph = data_graph
        self._definitions: Dict[str, SiteDefinition] = {}
        # one warm engine for every build: plans and statistics carry
        # across rebuilds and are invalidated by the graph epoch
        self._engine = make_engine(data_graph)

    # ------------------------------------------------------------ #

    def define(self, definition: SiteDefinition) -> SiteDefinition:
        """Register a site definition under its name."""
        if definition.name in self._definitions:
            raise SiteDefinitionError(
                f"site {definition.name!r} is already defined"
            )
        self._definitions[definition.name] = definition
        return definition

    def definition(self, name: str) -> SiteDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise SiteDefinitionError(f"no site named {name!r}") from None

    def definition_names(self) -> List[str]:
        return list(self._definitions)

    # ------------------------------------------------------------ #
    # the pipeline

    def site_graph(self, name: str, metrics: Optional[Metrics] = None) -> Graph:
        """Stage 2: evaluate the site-definition query -> site graph."""
        definition = self.definition(name)
        graph = evaluate(
            definition.program(), self.data_graph, metrics=metrics, engine=self._engine
        )
        graph.name = f"{name}.site"
        return graph

    def analyze(self, name: str, include_data: bool = True, suppress=()):
        """Statically analyze a registered definition -- no build.

        Runs the full :class:`~repro.analysis.Analyzer` pass (query type
        checking against this builder's data graph, schema reachability,
        template lint, constraint verification) and returns the
        :class:`~repro.analysis.DiagnosticReport`.  ``include_data=False``
        skips the data-dependent vocabulary checks (useful when the data
        graph is huge or not yet loaded).
        """
        from ..analysis import Analyzer  # deferred: analysis imports core

        definition = self.definition(name)
        analyzer = Analyzer.for_definition(
            definition,
            data_graph=self.data_graph if include_data else None,
        )
        return analyzer.run(suppress=suppress)

    def build(
        self,
        name: str,
        site_graph: Optional[Graph] = None,
        check_constraints: bool = True,
        workers: Optional[int] = None,
        metrics: Optional[Metrics] = None,
        gate: bool = False,
    ) -> BuiltSite:
        """Run the full pipeline for a registered definition.

        Passing ``site_graph`` reuses an existing site graph (how an
        alternative template set re-renders one structure); otherwise the
        query is evaluated fresh.  ``workers`` > 1 renders pages on a
        thread pool (output stays byte-identical to serial); ``metrics``
        collects evaluation and generation counters for this build.
        ``gate=True`` runs :meth:`analyze` first and raises
        :class:`~repro.errors.SiteAnalysisError` (carrying the report)
        when any error-severity finding exists -- the pre-build gate.
        """
        definition = self.definition(name)
        if gate:
            report = self.analyze(name)
            if not report.ok:
                raise SiteAnalysisError(report)
        if site_graph is None:
            site_graph = self.site_graph(name, metrics=metrics)
        roots = definition.roots or _default_roots(definition)
        generator = HtmlGenerator(site_graph, definition.templates)
        generated = generator.generate(
            roots, site_name=name, workers=workers, metrics=metrics
        )
        results: Dict[str, CheckResult] = {}
        if check_constraints:
            for constraint in definition.constraints:
                results[str(constraint)] = check(constraint, site_graph)
        return BuiltSite(
            definition=definition,
            data_graph=self.data_graph,
            site_graph=site_graph,
            generated=generated,
            constraint_results=results,
        )

    def dynamic_site(
        self, name: str, cache: bool = True, lookahead: bool = False
    ) -> DynamicSite:
        """A click-time evaluated version of a registered definition."""
        definition = self.definition(name)
        return DynamicSite(
            definition.program(), self.data_graph, cache=cache, lookahead=lookahead
        )


def _default_roots(definition: SiteDefinition) -> List[Union[Oid, str]]:
    """Default page roots: instances of every zero-argument Skolem
    function of the definition (RootPage() and friends)."""
    schema = definition.site_schema()
    roots: List[Union[Oid, str]] = []
    for function in schema.functions:
        creations = schema.creations_of(function)
        if creations and all(not c.args for c in creations):
            roots.append(f"{function}()")
    if not roots:
        raise SiteDefinitionError(
            f"site {definition.name!r} has no zero-argument Skolem function; "
            "specify roots explicitly"
        )
    return roots
