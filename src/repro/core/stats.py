"""Site measurements: the numbers the paper reports per site.

Section 5.1 measures each site as "(defined by) a 115-line query and 17
HTML templates (380 lines)"; section 6.1 proposes "the number of link
clauses in the site-definition query" as the structural-complexity
measure.  :class:`SiteStats` collects exactly these, plus generated-site
sizes, for experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..graph import Graph
from ..struql.ast import Program
from ..template import GeneratedSite, TemplateSet


@dataclass
class SiteStats:
    """Per-site measurements in the paper's units."""

    site_name: str = ""
    #: non-blank, non-comment lines of the site-definition query
    query_lines: int = 0
    #: the structural-complexity measure of section 6.1
    link_clauses: int = 0
    #: number of queries composed into the definition
    queries: int = 0
    template_count: int = 0
    template_lines: int = 0
    #: data-graph size
    data_nodes: int = 0
    data_edges: int = 0
    #: site-graph size
    site_nodes: int = 0
    site_edges: int = 0
    #: generated browsable site
    pages: int = 0
    sources: int = 0
    #: resilience of the ingest that produced the data graph (not part
    #: of the paper's E1 row): records quarantined and sources missing
    quarantined_records: int = 0
    missing_sources: int = 0

    def as_row(self) -> Dict[str, object]:
        """The row the E1 bench prints."""
        return {
            "site": self.site_name,
            "query lines": self.query_lines,
            "link clauses": self.link_clauses,
            "templates": self.template_count,
            "template lines": self.template_lines,
            "pages": self.pages,
            "sources": self.sources,
        }


def measure_site(
    site_name: str,
    program: Program,
    templates: Optional[TemplateSet] = None,
    data_graph: Optional[Graph] = None,
    site_graph: Optional[Graph] = None,
    generated: Optional[GeneratedSite] = None,
    sources: int = 0,
    mediation: Optional[object] = None,
) -> SiteStats:
    """Collect :class:`SiteStats` from whichever artifacts are at hand.

    ``mediation`` may be a :class:`~repro.mediator.MediationReport`; its
    quarantine and missing-source counts are folded in.
    """
    stats = SiteStats(site_name=site_name, sources=sources)
    if mediation is not None:
        quarantine = getattr(mediation, "quarantine", {}) or {}
        stats.quarantined_records = sum(
            int(q.get("quarantined", 0)) for q in quarantine.values()
        )
        stats.missing_sources = len(
            getattr(mediation, "failed_sources", {}) or {}
        ) + len(getattr(mediation, "skipped_sources", []) or [])
    stats.query_lines = program.line_count()
    stats.link_clauses = program.link_clause_count()
    stats.queries = len(program.queries)
    if templates is not None:
        stats.template_count = templates.template_count()
        stats.template_lines = templates.total_source_lines()
    if data_graph is not None:
        stats.data_nodes = data_graph.node_count
        stats.data_edges = data_graph.edge_count
    if site_graph is not None:
        stats.site_nodes = site_graph.node_count
        stats.site_edges = site_graph.edge_count
    if generated is not None:
        stats.pages = generated.page_count
    return stats
