"""Multiple site versions and the cost of deriving them.

The paper's headline economy claims (section 5.1) are about *versions*:

* the AT&T external site needed "no new queries ... only five HTML
  template files differ";
* the CNN sports-only site's query "only differs in two extra predicates
  in one where clause; both sites use the same templates";
* the INRIA site's English and French views come from one query.

This module provides the derivation helpers and the *diff measures* that
experiment E2 reports: how many query lines and how many templates change
between a base site and a derived version.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..struql import Program, parse
from ..template import TemplateSet
from .site import SiteDefinition


@dataclass
class VersionDiff:
    """The cost of deriving one site version from another."""

    base: str
    derived: str
    #: query lines present only in the derived version
    query_lines_added: int = 0
    query_lines_removed: int = 0
    #: templates whose text differs (or that only one version has)
    templates_changed: int = 0
    templates_shared: int = 0
    changed_template_names: List[str] = field(default_factory=list)

    @property
    def new_queries_needed(self) -> bool:
        return self.query_lines_added > 0

    def as_row(self) -> Dict[str, object]:
        return {
            "base": self.base,
            "derived": self.derived,
            "query lines +": self.query_lines_added,
            "query lines -": self.query_lines_removed,
            "templates changed": self.templates_changed,
            "templates shared": self.templates_shared,
        }


def _query_text(query: Union[Program, str]) -> List[str]:
    if isinstance(query, Program):
        text = query.source_text
    else:
        text = query
    return [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("//")
    ]


def diff_definitions(base: SiteDefinition, derived: SiteDefinition) -> VersionDiff:
    """Measure what changed between two site definitions."""
    diff = VersionDiff(base=base.name, derived=derived.name)
    matcher = difflib.SequenceMatcher(
        a=_query_text(base.query), b=_query_text(derived.query), autojunk=False
    )
    for op, a_start, a_end, b_start, b_end in matcher.get_opcodes():
        if op in ("replace", "delete"):
            diff.query_lines_removed += a_end - a_start
        if op in ("replace", "insert"):
            diff.query_lines_added += b_end - b_start
    base_names = set(base.templates.names())
    derived_names = set(derived.templates.names())
    for name in sorted(base_names | derived_names):
        base_template = base.templates.get(name)
        derived_template = derived.templates.get(name)
        if base_template is None or derived_template is None:
            diff.templates_changed += 1
            diff.changed_template_names.append(name)
        elif base_template.source_text != derived_template.source_text:
            diff.templates_changed += 1
            diff.changed_template_names.append(name)
        else:
            diff.templates_shared += 1
    return diff


def derive_version(
    base: SiteDefinition,
    name: str,
    query: Optional[Union[Program, str]] = None,
    template_overrides: Optional[Dict[str, str]] = None,
    roots: Optional[List] = None,
) -> SiteDefinition:
    """Create a derived site definition.

    * ``query=None`` keeps the base query (template-only version, like the
      AT&T external site);
    * ``template_overrides`` maps template name -> new text; unmentioned
      templates are shared verbatim (the common case: "only five HTML
      template files differ");
    * with a new ``query`` and no overrides, templates are shared exactly
      (the CNN sports-only case).
    """
    templates = base.templates
    if template_overrides:
        templates = _clone_templates(base.templates, template_overrides)
    derived_query: Union[Program, str]
    if query is None:
        base_program = base.program()
        derived_query = parse(base_program.source_text) if base_program.source_text else base_program
    else:
        derived_query = query
    return SiteDefinition(
        name=name,
        query=derived_query,
        templates=templates,
        roots=list(roots) if roots is not None else list(base.roots),
        constraints=list(base.constraints),
    )


def _clone_templates(base: TemplateSet, overrides: Dict[str, str]) -> TemplateSet:
    clone = TemplateSet()
    for name in base.names():
        template = base.get(name)
        assert template is not None
        text = overrides.get(name, template.source_text)
        clone.add(name, text)
    for name, text in overrides.items():
        if clone.get(name) is None:
            clone.add(name, text)
    # copy the selection rules
    clone._object_templates = dict(base._object_templates)
    clone._collection_templates = dict(base._collection_templates)
    clone._default = base._default
    return clone
