"""Exception hierarchy for the Strudel reproduction.

Every error raised by this library derives from :class:`StrudelError`, so
callers can catch one type at an API boundary.  Subsystems raise the more
specific subclasses below; each carries a plain-language message and, where
useful, source positions (parsers) or offending object identifiers.
"""

from __future__ import annotations


class StrudelError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(StrudelError):
    """Violation of the semistructured data model.

    Raised for unknown oids, attempts to mutate immutable (pre-existing)
    nodes during query construction, or malformed edges.
    """


class UnknownObjectError(GraphError):
    """An oid was referenced that does not exist in the graph."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"unknown object: {oid!r}")
        self.oid = oid


class ImmutableNodeError(GraphError):
    """A construction step tried to add an edge out of a pre-existing node.

    STRUQL requires that edges are added only from *new* (Skolem-created)
    nodes; nodes of the queried graph are immutable (paper section 2.2).
    """


class RepositoryError(StrudelError):
    """Problems in the data repository: missing graphs, bad storage files."""


class DDLSyntaxError(RepositoryError):
    """Malformed Strudel data-definition-language input."""

    def __init__(self, message: str, line: int = 0) -> None:
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line


class WrapperError(StrudelError):
    """A source wrapper could not translate its input into a graph."""


class MediatorError(StrudelError):
    """Misconfigured mediation: unknown sources, bad GAV mappings."""


class StruqlError(StrudelError):
    """Base class for STRUQL errors."""


class StruqlSyntaxError(StruqlError):
    """Lexical or grammatical error in a STRUQL query string."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class StruqlSemanticError(StruqlError):
    """The query parsed but is not well formed.

    Examples: a link source that is neither created nor a data-graph node,
    an unbound variable used in a construction clause, or a Skolem function
    applied with inconsistent arity.  Carries the offending clause's source
    position when the parser knows it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class StruqlEvaluationError(StruqlError):
    """A runtime failure while evaluating a query (e.g. type mismatch that
    cannot be resolved by coercion)."""


class TemplateError(StrudelError):
    """Base class for HTML-template language errors."""


class TemplateSyntaxError(TemplateError):
    """Malformed template text (bad SFMT/SIF/SFOR syntax, unclosed tags)."""

    def __init__(self, message: str, line: int = 0) -> None:
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line


class TemplateEvaluationError(TemplateError):
    """A template referenced something the site graph cannot supply."""


class TemplateResolutionError(TemplateError):
    """No template could be selected for an object that must be rendered."""


class ConstraintError(StrudelError):
    """Malformed integrity-constraint formula."""


class ConstraintViolation(StrudelError):
    """An integrity constraint failed during enforcement.

    Carries the constraint and the first counterexample binding found.
    """

    def __init__(self, constraint: object, witness: object = None) -> None:
        detail = f"; counterexample: {witness!r}" if witness is not None else ""
        super().__init__(f"integrity constraint violated: {constraint}{detail}")
        self.constraint = constraint
        self.witness = witness


class SiteDefinitionError(StrudelError):
    """The site builder was given an inconsistent specification."""


class SiteAnalysisError(StrudelError):
    """The pre-build static analysis gate found error-severity findings.

    Carries the full :class:`~repro.analysis.DiagnosticReport` so callers
    can render or filter it.
    """

    def __init__(self, report: object) -> None:
        errors = getattr(report, "errors", [])
        codes = sorted({getattr(d, "code", "?") for d in errors})
        super().__init__(
            f"static analysis found {len(errors)} error(s) "
            f"({', '.join(codes)}); site was not built"
        )
        self.report = report
