"""Exception hierarchy for the Strudel reproduction.

Every error raised by this library derives from :class:`StrudelError`, so
callers can catch one type at an API boundary.  Subsystems raise the more
specific subclasses below; each carries a plain-language message and, where
useful, source positions (parsers) or offending object identifiers.
"""

from __future__ import annotations


class StrudelError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(StrudelError):
    """Violation of the semistructured data model.

    Raised for unknown oids, attempts to mutate immutable (pre-existing)
    nodes during query construction, or malformed edges.
    """


class UnknownObjectError(GraphError):
    """An oid was referenced that does not exist in the graph."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"unknown object: {oid!r}")
        self.oid = oid


class ImmutableNodeError(GraphError):
    """A construction step tried to add an edge out of a pre-existing node.

    STRUQL requires that edges are added only from *new* (Skolem-created)
    nodes; nodes of the queried graph are immutable (paper section 2.2).
    """


class RepositoryError(StrudelError):
    """Problems in the data repository: missing graphs, bad storage files."""


class RepositoryCorruptionError(RepositoryError):
    """A stored graph file failed its integrity check (bad checksum,
    truncated write).  The repository tries the previous good generation
    before surfacing this to callers."""


class DDLSyntaxError(RepositoryError):
    """Malformed Strudel data-definition-language input."""

    def __init__(self, message: str, line: int = 0) -> None:
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line


class WrapperError(StrudelError):
    """A source wrapper could not translate its input into a graph.

    Carries the source name, a record locator ("entry p3 (line 12)",
    "row 7", "page a.html") and the underlying cause when known, so a
    failed ingest names the offending record instead of a bare parse
    message.
    """

    def __init__(
        self,
        message: str,
        source_name: str = "",
        locator: str = "",
        cause: object = None,
    ) -> None:
        self.base_message = message
        self.source_name = source_name
        self.locator = locator
        self.cause = cause
        context = [part for part in (source_name, locator) if part]
        super().__init__(": ".join(context + [message]))

    def with_source(self, source_name: str) -> "WrapperError":
        """A copy of this error attributed to ``source_name``."""
        return type(self)(
            self.base_message,
            source_name=source_name,
            locator=self.locator,
            cause=self.cause,
        )


class QuarantineExceeded(WrapperError):
    """A tolerant wrap blew its error budget.

    More records failed than :class:`~repro.resilience.WrapPolicy`
    allowed -- the source is more likely misconfigured than dirty, so
    the load aborts.  Carries the quarantine report so far.
    """

    def __init__(self, source_name: str, count: int, budget: int, report: object = None) -> None:
        super().__init__(
            f"quarantined {count} records, more than the error budget of {budget}",
            source_name=source_name,
        )
        self.count = count
        self.budget = budget
        self.report = report


class MediatorError(StrudelError):
    """Misconfigured mediation: unknown sources, bad GAV mappings."""


class StruqlError(StrudelError):
    """Base class for STRUQL errors."""


class StruqlSyntaxError(StruqlError):
    """Lexical or grammatical error in a STRUQL query string."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class StruqlSemanticError(StruqlError):
    """The query parsed but is not well formed.

    Examples: a link source that is neither created nor a data-graph node,
    an unbound variable used in a construction clause, or a Skolem function
    applied with inconsistent arity.  Carries the offending clause's source
    position when the parser knows it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class StruqlEvaluationError(StruqlError):
    """A runtime failure while evaluating a query (e.g. type mismatch that
    cannot be resolved by coercion)."""


class TemplateError(StrudelError):
    """Base class for HTML-template language errors."""


class TemplateSyntaxError(TemplateError):
    """Malformed template text (bad SFMT/SIF/SFOR syntax, unclosed tags)."""

    def __init__(self, message: str, line: int = 0) -> None:
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line


class TemplateEvaluationError(TemplateError):
    """A template referenced something the site graph cannot supply."""


class TemplateResolutionError(TemplateError):
    """No template could be selected for an object that must be rendered."""


class ConstraintError(StrudelError):
    """Malformed integrity-constraint formula.

    Carries the source position of the offending token when the parser
    knows it, so analyzer diagnostics for constraint files get real
    line/column spans like every other front-end.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ConstraintViolation(StrudelError):
    """An integrity constraint failed during enforcement.

    Carries the constraint and the first counterexample binding found.
    """

    def __init__(self, constraint: object, witness: object = None) -> None:
        detail = f"; counterexample: {witness!r}" if witness is not None else ""
        super().__init__(f"integrity constraint violated: {constraint}{detail}")
        self.constraint = constraint
        self.witness = witness


class DeadlineExceeded(StrudelError):
    """A request-scoped evaluation deadline expired mid-flight.

    Raised cooperatively by the query engine, the regular-path search,
    template expansion, and the SQL pushdown layer when the ambient
    :class:`~repro.resilience.deadline.Deadline` runs out.  Carries the
    budget, the elapsed time at detection, and the site (operator or
    layer) that noticed, so slow-query reports can say *where* a
    pathological query was spending its time.
    """

    def __init__(self, budget: float, elapsed: float, site: str = "") -> None:
        where = f" in {site}" if site else ""
        super().__init__(
            f"deadline of {budget:.3f}s exceeded after {elapsed:.3f}s{where}"
        )
        self.budget = budget
        self.elapsed = elapsed
        self.site = site


class SiteDefinitionError(StrudelError):
    """The site builder was given an inconsistent specification."""


class SiteAnalysisError(StrudelError):
    """The pre-build static analysis gate found error-severity findings.

    Carries the full :class:`~repro.analysis.DiagnosticReport` so callers
    can render or filter it.
    """

    def __init__(self, report: object) -> None:
        errors = getattr(report, "errors", [])
        codes = sorted({getattr(d, "code", "?") for d in errors})
        super().__init__(
            f"static analysis found {len(errors)} error(s) "
            f"({', '.join(codes)}); site was not built"
        )
        self.report = report
