"""Semistructured data model: labeled directed graphs, atoms, oids, schema.

Public surface of the substrate every other Strudel component builds on.
"""

from .delta import DeltaLog, GraphDelta
from .dot import to_dot
from .graph import Edge, Graph, Target
from .oid import Oid, OidAllocator, SkolemRegistry, skolem_term_name
from .schema import AttributeStats, CollectionSchema, GraphSchema, summarize
from .values import (
    Atom,
    AtomType,
    atoms_equal,
    boolean,
    coercion_probes,
    compare_atoms,
    from_python,
    html_file,
    image_file,
    integer,
    parse_typed_value,
    postscript_file,
    real,
    string,
    text_file,
    type_predicate,
    type_predicate_names,
    url,
)

__all__ = [
    "Atom",
    "AtomType",
    "AttributeStats",
    "CollectionSchema",
    "DeltaLog",
    "Edge",
    "Graph",
    "GraphDelta",
    "GraphSchema",
    "Oid",
    "OidAllocator",
    "SkolemRegistry",
    "Target",
    "atoms_equal",
    "boolean",
    "coercion_probes",
    "compare_atoms",
    "from_python",
    "html_file",
    "image_file",
    "integer",
    "parse_typed_value",
    "postscript_file",
    "real",
    "skolem_term_name",
    "string",
    "summarize",
    "text_file",
    "to_dot",
    "type_predicate",
    "type_predicate_names",
    "url",
]
