"""Structured mutation deltas: what changed in a graph, per epoch.

The bare mutation ``epoch`` counter (PR 1) tells consumers *that* a graph
changed, which forces every derived cache -- click-time expansions,
compiled plans, statistics snapshots, served pages -- to be flushed
wholesale on any edit.  This module records *what* changed, so a
consumer that also knows what it *read* (a
:class:`~repro.struql.footprint.Footprint`) can invalidate only the
entries the edit can possibly affect.

Two pieces:

* :class:`DeltaLog` -- a bounded ring of per-mutation records the
  :class:`~repro.graph.graph.Graph` appends to alongside every epoch
  bump.  Bounded so an arbitrarily long-lived graph never grows an
  unbounded history; when a consumer asks for a delta older than the
  ring reaches, the answer is ``None`` and the consumer must fall back
  to coarse invalidation (always sound).
* :class:`GraphDelta` -- the aggregation of the records between two
  epochs: edges and nodes added/removed, collection memberships
  changed.  Consumers intersect it with read footprints.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple, Union

from .oid import Oid
from .values import Atom

Target = Union[Oid, Atom]
Edge = Tuple[Oid, str, Target]

#: Record kinds in the log.
_EDGE_ADD = 0
_EDGE_REMOVE = 1
_NODE_ADD = 2
_NODE_REMOVE = 3
_MEMBER_ADD = 4
_MEMBER_REMOVE = 5
_COLLECTION_CREATE = 6


class GraphDelta:
    """Every structural change between ``base_epoch`` (exclusive) and
    ``epoch`` (inclusive) of one graph.

    The lists are in mutation order and *not* net effects: an edge added
    and then removed appears in both lists.  That is exactly what
    footprint intersection needs -- any entry that read either state
    must be invalidated.
    """

    __slots__ = (
        "base_epoch", "epoch",
        "edges_added", "edges_removed",
        "nodes_added", "nodes_removed",
        "members_added", "members_removed",
        "collections_created",
        "_labels", "_collections",
    )

    def __init__(self, base_epoch: int, epoch: int) -> None:
        self.base_epoch = base_epoch
        self.epoch = epoch
        self.edges_added: List[Edge] = []
        self.edges_removed: List[Edge] = []
        self.nodes_added: List[Oid] = []
        self.nodes_removed: List[Oid] = []
        self.members_added: List[Tuple[str, Oid]] = []
        self.members_removed: List[Tuple[str, Oid]] = []
        self.collections_created: List[str] = []
        self._labels: Optional[Set[str]] = None
        self._collections: Optional[Set[str]] = None

    # ------------------------------------------------------------ #
    # summaries

    @property
    def empty(self) -> bool:
        return not (
            self.edges_added or self.edges_removed
            or self.nodes_added or self.nodes_removed
            or self.members_added or self.members_removed
            or self.collections_created
        )

    @property
    def has_removals(self) -> bool:
        """True when any edge, node, or membership was removed --
        the non-monotone case several consumers treat conservatively."""
        return bool(self.edges_removed or self.nodes_removed or self.members_removed)

    def edge_changes(self) -> List[Edge]:
        """Added then removed edges, in one list."""
        return self.edges_added + self.edges_removed

    def member_changes(self) -> List[Tuple[str, Oid]]:
        return self.members_added + self.members_removed

    def labels(self) -> Set[str]:
        """Edge labels touched by any change (cached)."""
        if self._labels is None:
            self._labels = {label for _, label, _ in self.edges_added}
            self._labels.update(label for _, label, _ in self.edges_removed)
        return self._labels

    def collections(self) -> Set[str]:
        """Collection names touched by membership changes or creation."""
        if self._collections is None:
            self._collections = {name for name, _ in self.members_added}
            self._collections.update(name for name, _ in self.members_removed)
            self._collections.update(self.collections_created)
        return self._collections

    def touched_oids(self) -> Set[Oid]:
        """Oids whose *own* state changed: sources of changed edges,
        removed nodes, and re-collected members.  (Targets of changed
        edges are not included -- their out-edges did not change.)"""
        touched: Set[Oid] = {source for source, _, _ in self.edges_added}
        touched.update(source for source, _, _ in self.edges_removed)
        touched.update(self.nodes_removed)
        touched.update(oid for _, oid in self.members_added)
        touched.update(oid for _, oid in self.members_removed)
        return touched

    def size(self) -> int:
        """Number of individual mutations aggregated."""
        return (
            len(self.edges_added) + len(self.edges_removed)
            + len(self.nodes_added) + len(self.nodes_removed)
            + len(self.members_added) + len(self.members_removed)
            + len(self.collections_created)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GraphDelta epochs ({self.base_epoch}, {self.epoch}]: "
            f"+{len(self.edges_added)}/-{len(self.edges_removed)} edges, "
            f"+{len(self.nodes_added)}/-{len(self.nodes_removed)} nodes, "
            f"+{len(self.members_added)}/-{len(self.members_removed)} members>"
        )


class DeltaLog:
    """A bounded ring of per-mutation records.

    Each record is ``(epoch, kind, a, b, c)``; ``since(epoch)``
    aggregates everything newer than ``epoch`` into a
    :class:`GraphDelta`, or returns ``None`` when the ring no longer
    reaches back that far (the consumer must then invalidate coarsely).
    """

    __slots__ = ("maxlen", "_records", "_floor")

    def __init__(self, maxlen: int = 4096) -> None:
        self.maxlen = maxlen
        self._records: Deque[Tuple[int, int, object, object, object]] = deque()
        #: every mutation with epoch <= _floor has been evicted
        self._floor = 0

    def _append(self, epoch: int, kind: int, a: object, b: object = None,
                c: object = None) -> None:
        records = self._records
        records.append((epoch, kind, a, b, c))
        while len(records) > self.maxlen:
            evicted = records.popleft()
            self._floor = evicted[0]

    # ------------------------------------------------------------ #
    # recording (called by Graph mutators, after the epoch bump)

    def edge_added(self, epoch: int, source: Oid, label: str, target: Target) -> None:
        self._append(epoch, _EDGE_ADD, source, label, target)

    def edge_removed(self, epoch: int, source: Oid, label: str, target: Target) -> None:
        self._append(epoch, _EDGE_REMOVE, source, label, target)

    def node_added(self, epoch: int, oid: Oid) -> None:
        self._append(epoch, _NODE_ADD, oid)

    def node_removed(self, epoch: int, oid: Oid) -> None:
        self._append(epoch, _NODE_REMOVE, oid)

    def member_added(self, epoch: int, name: str, oid: Oid) -> None:
        self._append(epoch, _MEMBER_ADD, name, oid)

    def member_removed(self, epoch: int, name: str, oid: Oid) -> None:
        self._append(epoch, _MEMBER_REMOVE, name, oid)

    def collection_created(self, epoch: int, name: str) -> None:
        self._append(epoch, _COLLECTION_CREATE, name)

    # ------------------------------------------------------------ #

    def since(self, epoch: int, current_epoch: int) -> Optional[GraphDelta]:
        """The aggregated delta for mutations with epoch > ``epoch``.

        ``None`` when the log has evicted records newer than ``epoch``
        (the delta would be incomplete).  An up-to-date consumer gets an
        empty delta.
        """
        if epoch < self._floor:
            return None
        delta = GraphDelta(epoch, current_epoch)
        for record_epoch, kind, a, b, c in self._records:
            if record_epoch <= epoch:
                continue
            if kind == _EDGE_ADD:
                delta.edges_added.append((a, b, c))  # type: ignore[arg-type]
            elif kind == _EDGE_REMOVE:
                delta.edges_removed.append((a, b, c))  # type: ignore[arg-type]
            elif kind == _NODE_ADD:
                delta.nodes_added.append(a)  # type: ignore[arg-type]
            elif kind == _NODE_REMOVE:
                delta.nodes_removed.append(a)  # type: ignore[arg-type]
            elif kind == _MEMBER_ADD:
                delta.members_added.append((a, b))  # type: ignore[arg-type]
            elif kind == _MEMBER_REMOVE:
                delta.members_removed.append((a, b))  # type: ignore[arg-type]
            else:
                delta.collections_created.append(a)  # type: ignore[arg-type]
        return delta

    def __len__(self) -> int:
        return len(self._records)
