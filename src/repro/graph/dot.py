"""GraphViz (DOT) export for data and site graphs.

The paper's site schemas had a visualization tool (section 6.2: "we
built a tool to view a query's site schema"); this module provides the
matching view of *instance* graphs -- handy when debugging wrappers or
eyeballing a small site graph (its Fig. 2 and Fig. 4 are exactly such
drawings).

Only export is provided (layout belongs to ``dot``); atoms are drawn as
ellipses with their value and type, nodes as boxes, collection members
grouped into clusters when ``cluster_collections`` is set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import Graph
from .oid import Oid
from .values import Atom


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    graph: Graph,
    name: str = "graph_dump",
    max_value_length: int = 24,
    cluster_collections: bool = False,
) -> str:
    """Render a graph as DOT text."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    atom_ids: Dict[Atom, str] = {}

    def atom_id(atom: Atom) -> str:
        identifier = atom_ids.get(atom)
        if identifier is None:
            identifier = f"atom{len(atom_ids)}"
            atom_ids[atom] = identifier
            text = atom.as_string()
            if len(text) > max_value_length:
                text = text[: max_value_length - 1] + "…"
            label = f"{_escape(text)}\\n({atom.type.value})"
            lines.append(f'  {identifier} [shape=ellipse, label="{label}"];')
        return identifier

    if cluster_collections:
        for index, collection in enumerate(graph.collection_names()):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f'    label="{_escape(collection)}";')
            for member in graph.collection(collection):
                lines.append(f'    "{_escape(member.name)}" [shape=box];')
            lines.append("  }")
        clustered = {
            member
            for collection in graph.collection_names()
            for member in graph.collection(collection)
        }
    else:
        clustered = set()

    for oid in graph.nodes():
        if oid not in clustered:
            lines.append(f'  "{_escape(oid.name)}" [shape=box];')
    for source, label, target in graph.edges():
        if isinstance(target, Oid):
            target_ref = f'"{_escape(target.name)}"'
        else:
            target_ref = atom_id(target)
        lines.append(
            f'  "{_escape(source.name)}" -> {target_ref} '
            f'[label="{_escape(label)}"];'
        )
    lines.append("}")
    return "\n".join(lines)
