"""The labeled directed graph at the heart of every Strudel component.

"In every level of the STRUDEL system, the data model is a labeled,
directed graph" (paper section 2.1).  The same :class:`Graph` class stores
wrapper outputs, the mediated *data graph*, and query-produced *site
graphs*.

The model, following OEM:

* the database is a set of objects connected by directed edges labeled
  with string-valued attribute names;
* objects are *nodes* (identified by an :class:`~repro.graph.oid.Oid`) or
  *atomic values* (:class:`~repro.graph.values.Atom`);
* objects are grouped into named *collections*; an object may belong to
  several collections, and members of one collection may have different
  attribute sets (this is what "semistructured" buys us);
* edges form a set: adding the same ``(source, label, target)`` twice is
  a no-op; within one ``(source, label)`` the distinct targets keep
  insertion order, which the template ORDER directive can override.

Because the repository cannot rely on schema information to lay data out,
the graph *fully indexes both the schema and the data* (section 2.1): it
maintains, incrementally, a label extent index, a reverse-adjacency index
(which doubles as the global atomic-value index), and collection extents.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..errors import GraphError, UnknownObjectError
from .delta import DeltaLog, GraphDelta
from .oid import Oid, OidAllocator, SkolemRegistry
from .values import Atom, from_python

#: An edge target: an internal node or an atomic value.
Target = Union[Oid, Atom]

#: A fully-specified edge.
Edge = Tuple[Oid, str, Target]


class Graph:
    """A labeled directed multigraph with named collections and full indexes.

    All mutation goes through :meth:`add_node`, :meth:`add_edge`,
    :meth:`remove_edge`, :meth:`remove_node` and the collection methods, so
    the three indexes (forward adjacency, reverse adjacency / value index,
    label extents) never go stale.

    The graph owns an :class:`OidAllocator` for anonymous nodes and a
    :class:`SkolemRegistry` so that composed STRUQL queries adding to the
    same graph agree on Skolem identity.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._out: Dict[Oid, Dict[str, List[Target]]] = {}
        self._in: Dict[Target, Dict[Tuple[Oid, str], None]] = {}
        self._by_label: Dict[str, Dict[Tuple[Oid, Target], None]] = {}
        self._collections: Dict[str, Dict[Oid, None]] = {}
        self._edge_count = 0
        self._epoch = 0
        #: per-label edge counts keyed by atomic target (optimizer statistic)
        self._label_values: Dict[str, Dict[Atom, int]] = {}
        self._distinct_atoms = 0
        #: epoch-stamped IndexStatistics snapshot, owned by repository.indexes
        self._stats_cache: Optional[object] = None
        #: bounded structured mutation history, one record per epoch bump
        self._delta_log = DeltaLog()
        self.allocator = OidAllocator()
        self.skolems = SkolemRegistry()

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped on every structural change.

        Consumers (statistics snapshots, compiled-plan caches) stamp
        their derived state with the epoch they observed; an unchanged
        epoch guarantees the graph has not been mutated since.
        """
        return self._epoch

    def _bump(self) -> None:
        self._epoch += 1

    def delta_since(self, epoch: int) -> Optional[GraphDelta]:
        """Everything that changed after ``epoch``, or ``None``.

        ``None`` means the bounded delta log no longer reaches back that
        far; the caller must fall back to coarse (flush-everything)
        invalidation, which is always sound.
        """
        return self._delta_log.since(epoch, self._epoch)

    # ------------------------------------------------------------------ #
    # nodes

    def add_node(self, oid: Optional[Oid] = None, hint: str = "") -> Oid:
        """Add a node and return its oid.

        With no ``oid`` a fresh anonymous one is allocated (``hint`` makes
        dumps readable).  Re-adding an existing node is a no-op, so wrapper
        code can be written idempotently.
        """
        if oid is None:
            oid = self.allocator.fresh(hint)
        if oid not in self._out:
            self._out[oid] = {}
            self._bump()
            self._delta_log.node_added(self._epoch, oid)
        return oid

    def skolem(self, function: str, *args: object) -> Oid:
        """Apply a Skolem function and ensure the resulting node exists.

        Arguments may be oids, atoms, or plain Python values (which are
        wrapped as atoms).  ``graph.skolem("YearPage", 1998)`` twice yields
        the same node.
        """
        wrapped = tuple(a if isinstance(a, Oid) else from_python(a) for a in args)
        oid = self.skolems.apply(function, wrapped)
        return self.add_node(oid)

    def has_node(self, oid: Oid) -> bool:
        return oid in self._out

    def nodes(self) -> Iterator[Oid]:
        """All node oids, in insertion order."""
        return iter(self._out)

    @property
    def node_count(self) -> int:
        return len(self._out)

    def remove_node(self, oid: Oid) -> None:
        """Remove a node together with all its incident edges.

        Collection memberships are dropped too.  Unknown oids raise
        :class:`UnknownObjectError`.
        """
        if oid not in self._out:
            raise UnknownObjectError(oid)
        for label, targets in list(self._out[oid].items()):
            for target in list(targets):
                self.remove_edge(oid, label, target)
        for source, label in list(self._in.get(oid, {})):
            self.remove_edge(source, label, oid)
        self._in.pop(oid, None)
        del self._out[oid]
        dropped_from = [
            name for name, members in self._collections.items() if oid in members
        ]
        for name in dropped_from:
            del self._collections[name][oid]
        self._bump()
        self._delta_log.node_removed(self._epoch, oid)
        for name in dropped_from:
            self._delta_log.member_removed(self._epoch, name, oid)

    # ------------------------------------------------------------------ #
    # edges

    def add_edge(self, source: Oid, label: str, target: object) -> Target:
        """Add edge ``source -label-> target``; returns the stored target.

        ``target`` may be an oid (which must exist), an :class:`Atom`, or a
        plain Python value which is wrapped via
        :func:`~repro.graph.values.from_python`.  Duplicate edges are
        ignored (set semantics).
        """
        if source not in self._out:
            raise UnknownObjectError(source)
        if isinstance(target, Oid):
            if target not in self._out:
                raise UnknownObjectError(target)
            stored: Target = target
        elif isinstance(target, Atom):
            stored = target
        else:
            stored = from_python(target)
        if not isinstance(label, str) or not label:
            raise GraphError(f"edge label must be a non-empty string, got {label!r}")
        # Intern at load time: a site graph repeats a small label
        # vocabulary across millions of edges, and interning makes every
        # downstream label compare/hash (index probes, NFA label tests)
        # an identity check on a shared object.
        label = sys.intern(label)

        pair = (source, stored)
        label_extent = self._by_label.setdefault(label, {})
        if pair in label_extent:
            return stored
        label_extent[pair] = None
        self._out[source].setdefault(label, []).append(stored)
        if stored not in self._in:
            self._in[stored] = {}
            if isinstance(stored, Atom):
                self._distinct_atoms += 1
        self._in[stored][(source, label)] = None
        if isinstance(stored, Atom):
            values = self._label_values.setdefault(label, {})
            values[stored] = values.get(stored, 0) + 1
        self._edge_count += 1
        self._bump()
        self._delta_log.edge_added(self._epoch, source, label, stored)
        return stored

    def remove_edge(self, source: Oid, label: str, target: Target) -> None:
        """Remove one edge; raises GraphError if it is not present."""
        targets = self._out.get(source, {}).get(label)
        if not targets or target not in targets:
            raise GraphError(f"no edge {source} -{label}-> {target!r}")
        targets.remove(target)
        if not targets:
            del self._out[source][label]
        incoming = self._in.get(target)
        if incoming is not None:
            incoming.pop((source, label), None)
            if not incoming:
                del self._in[target]
                if isinstance(target, Atom):
                    self._distinct_atoms -= 1
        extent = self._by_label.get(label)
        if extent is not None:
            extent.pop((source, target), None)
            if not extent:
                del self._by_label[label]
        if isinstance(target, Atom):
            values = self._label_values.get(label)
            if values is not None:
                count = values.get(target, 0)
                if count <= 1:
                    values.pop(target, None)
                    if not values:
                        del self._label_values[label]
                else:
                    values[target] = count - 1
        self._edge_count -= 1
        self._bump()
        self._delta_log.edge_removed(self._epoch, source, label, target)

    def has_edge(self, source: Oid, label: str, target: Target) -> bool:
        return (source, target) in self._by_label.get(label, {})

    def edges(self) -> Iterator[Edge]:
        """All edges as ``(source, label, target)`` triples."""
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield source, label, target

    @property
    def edge_count(self) -> int:
        return self._edge_count

    # ------------------------------------------------------------------ #
    # navigation

    def out_edges(self, oid: Oid) -> Iterator[Tuple[str, Target]]:
        """Outgoing ``(label, target)`` pairs of a node."""
        if oid not in self._out:
            raise UnknownObjectError(oid)
        for label, targets in self._out[oid].items():
            for target in targets:
                yield label, target

    def labels_of(self, oid: Oid) -> List[str]:
        """The attribute names present on a node, in insertion order."""
        if oid not in self._out:
            raise UnknownObjectError(oid)
        return list(self._out[oid])

    def targets(self, oid: Oid, label: str) -> List[Target]:
        """All targets of ``oid -label->``, in insertion order."""
        if oid not in self._out:
            raise UnknownObjectError(oid)
        return list(self._out[oid].get(label, ()))

    def attribute(self, oid: Oid, label: str) -> Optional[Target]:
        """The first target of ``oid -label->``, or None if absent.

        Convenience accessor for single-valued attributes; multi-valued
        attributes should use :meth:`targets`.
        """
        targets = self._out.get(oid, {}).get(label)
        return targets[0] if targets else None

    def in_edges(self, target: Target) -> Iterator[Tuple[Oid, str]]:
        """Incoming ``(source, label)`` pairs of a node or atom."""
        return iter(self._in.get(target, {}))

    def edges_with_label(self, label: str) -> Iterator[Tuple[Oid, Target]]:
        """The extent of one label: all ``(source, target)`` pairs.

        Backed by the label index; this is the workhorse of the STRUQL
        evaluator.
        """
        return iter(self._by_label.get(label, {}))

    def labels(self) -> List[str]:
        """All edge labels present in the graph (the "attribute schema")."""
        return list(self._by_label)

    def label_cardinality(self, label: str) -> int:
        """Number of edges carrying ``label`` (optimizer statistic)."""
        return len(self._by_label.get(label, {}))

    def label_value_cardinality(self, label: str) -> int:
        """Distinct atomic targets under ``label`` (optimizer statistic).

        Maintained incrementally alongside the label extent, so a
        statistics snapshot never needs to rescan the edges.
        """
        return len(self._label_values.get(label, ()))

    def label_atoms(self, label: str) -> Iterator[Tuple[Atom, int]]:
        """The per-label value index: every distinct atomic target under
        ``label`` with its edge count.

        Maintained incrementally alongside the label extent.  The
        data-constraint checker uses it to *refute* value-shaped
        constraints (range/regexp/max_len/exclusive) without visiting a
        single collection member: if every value under the label passes,
        no member can hold a failing one.
        """
        return iter(self._label_values.get(label, {}).items())

    @property
    def distinct_atom_count(self) -> int:
        """Number of distinct atomic values appearing as edge targets."""
        return self._distinct_atoms

    def atoms(self) -> Iterator[Atom]:
        """All distinct atomic values appearing as edge targets."""
        for target in self._in:
            if isinstance(target, Atom):
                yield target

    def sources_of_value(self, atom: Atom) -> Iterator[Tuple[Oid, str]]:
        """Global value index: where does this atom appear?

        Yields ``(source, label)`` for every edge whose target equals the
        atom exactly (no coercion; coercing lookups are the evaluator's
        job).
        """
        return iter(self._in.get(atom, {}))

    def reachable(
        self, start: Oid, via: Optional[Set[str]] = None, include_atoms: bool = False
    ) -> List[Target]:
        """Objects reachable from ``start`` (inclusive), breadth first.

        ``via`` restricts traversal to a set of labels; by default all
        labels are followed.  Atoms terminate paths and are included only
        when ``include_atoms`` is set.
        """
        if start not in self._out:
            raise UnknownObjectError(start)
        seen: Dict[Target, None] = {start: None}
        queue: List[Oid] = [start]
        while queue:
            current = queue.pop(0)
            for label, target in self.out_edges(current):
                if via is not None and label not in via:
                    continue
                if target in seen:
                    continue
                seen[target] = None
                if isinstance(target, Oid):
                    queue.append(target)
        if include_atoms:
            return list(seen)
        return [t for t in seen if isinstance(t, Oid)]

    # ------------------------------------------------------------------ #
    # collections

    def create_collection(self, name: str) -> None:
        """Declare an (initially empty) named collection; idempotent."""
        if name not in self._collections:
            self._collections[name] = {}
            self._bump()
            self._delta_log.collection_created(self._epoch, name)

    def add_to_collection(self, name: str, oid: Oid) -> None:
        """Add a node to a collection, creating the collection if needed."""
        if oid not in self._out:
            raise UnknownObjectError(oid)
        if name not in self._collections:
            self.create_collection(name)
        members = self._collections[name]
        if oid not in members:
            members[oid] = None
            self._bump()
            self._delta_log.member_added(self._epoch, name, oid)

    def remove_from_collection(self, name: str, oid: Oid) -> None:
        members = self._collections.get(name)
        if members is None or oid not in members:
            raise GraphError(f"{oid} is not in collection {name!r}")
        del members[oid]
        self._bump()
        self._delta_log.member_removed(self._epoch, name, oid)

    def collection(self, name: str) -> List[Oid]:
        """Members of a collection (empty list if it does not exist)."""
        return list(self._collections.get(name, {}))

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def in_collection(self, name: str, oid: Oid) -> bool:
        return oid in self._collections.get(name, {})

    def collection_names(self) -> List[str]:
        """All collection names (part of the queryable schema)."""
        return list(self._collections)

    def collections_of(self, oid: Oid) -> List[str]:
        """Names of the collections a node belongs to."""
        return [name for name, members in self._collections.items() if oid in members]

    def collection_cardinality(self, name: str) -> int:
        return len(self._collections.get(name, {}))

    # ------------------------------------------------------------------ #
    # whole-graph operations

    def copy(self, name: str = "") -> "Graph":
        """A deep structural copy sharing no mutable state.

        Skolem memoization is copied too, so further queries composed onto
        the copy keep agreeing with terms created so far.
        """
        clone = Graph(name or self.name)
        for oid in self._out:
            clone.add_node(oid)
        for source, label, target in self.edges():
            clone.add_edge(source, label, target)
        for coll, members in self._collections.items():
            clone.create_collection(coll)
            for oid in members:
                clone.add_to_collection(coll, oid)
        for function, args, oid in self.skolems.terms():
            clone.skolems.apply(function, args)
        clone.allocator.reserve_past(_max_anonymous(self._out))
        return clone

    def merge(self, other: "Graph", collection_prefix: str = "") -> Dict[Oid, Oid]:
        """Union another graph into this one, renaming clashing oids.

        Anonymous oids of ``other`` are re-allocated here to avoid
        collisions; Skolem-named and wrapper-named oids are kept verbatim
        (Skolem identity is global by design).  Returns the oid rename map
        (identity entries included) so callers can relocate references.

        ``collection_prefix`` optionally prefixes ``other``'s collection
        names, which the mediator uses to keep per-source extents apart.
        """
        rename: Dict[Oid, Oid] = {}
        for oid in other.nodes():
            if oid.name.startswith("&") and self.has_node(oid):
                rename[oid] = self.add_node(hint="m")
            else:
                rename[oid] = self.add_node(oid)
        for source, label, target in other.edges():
            new_target: Target = rename[target] if isinstance(target, Oid) else target
            self.add_edge(rename[source], label, new_target)
        for coll in other.collection_names():
            name = collection_prefix + coll
            self.create_collection(name)
            for member in other.collection(coll):
                self.add_to_collection(name, rename[member])
        for function, args, _ in other.skolems.terms():
            mapped = tuple(rename.get(a, a) if isinstance(a, Oid) else a for a in args)
            self.skolems.apply(function, mapped)
        self.allocator.reserve_past(_max_anonymous(self._out))
        return rename

    def stats(self) -> Dict[str, int]:
        """Size summary used by benchmarks and the repository catalog."""
        return {
            "nodes": self.node_count,
            "edges": self.edge_count,
            "labels": len(self._by_label),
            "collections": len(self._collections),
            "atoms": self._distinct_atoms,
        }

    def __repr__(self) -> str:
        label = self.name or "graph"
        return f"<Graph {label}: {self.node_count} nodes, {self.edge_count} edges>"


def _max_anonymous(nodes: Iterable[Oid]) -> int:
    """Highest numeric suffix among anonymous oids (``&7`` or ``&pub.7``)."""
    highest = 0
    for oid in nodes:
        if not oid.name.startswith("&"):
            continue
        tail = oid.name[1:].rsplit(".", 1)[-1]
        if tail.isdigit():
            highest = max(highest, int(tail))
    return highest
