"""Object identity: oids and Skolem functions.

Nodes of the semistructured graph are identified by unique object
identifiers (oids).  STRUQL creates new nodes with *Skolem functions*: by
definition a Skolem function applied to the same inputs produces the same
oid (paper section 2.2), which is what makes declarative site construction
compositional -- two link clauses mentioning ``YearPage(y)`` for the same
year talk about the same page.

:class:`Oid` is a lightweight immutable handle.  :class:`OidAllocator`
hands out fresh anonymous oids.  :class:`SkolemRegistry` memoizes
``(function name, argument tuple) -> Oid`` per result graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .values import Atom


@dataclass(frozen=True)
class Oid:
    """An object identifier.

    ``name`` is a human-readable identity string.  Anonymous oids are named
    ``&<n>``; Skolem-created oids are named after their term, e.g.
    ``YearPage(1998)``, which makes site graphs self-describing in dumps
    and gives stable page file names to the HTML generator.
    """

    name: str

    def __hash__(self) -> int:
        # oids live in every binding tuple; skip the generated hash's
        # per-call tuple construction by caching the name's hash
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(self.name)
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Oid({self.name})"


class OidAllocator:
    """Allocates fresh anonymous oids: ``&1``, ``&2``, ...

    A graph owns one allocator so that loading a dump can resume the
    counter past the highest anonymous oid seen.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def fresh(self, hint: str = "") -> Oid:
        """Return a new, never-before-issued oid.

        ``hint`` is embedded for readability (``&pub.3``) but does not
        affect uniqueness.
        """
        number = next(self._counter)
        if hint:
            return Oid(f"&{hint}.{number}")
        return Oid(f"&{number}")

    def reserve_past(self, number: int) -> None:
        """Ensure future oids are numbered strictly above ``number``."""
        current = next(self._counter)
        if current <= number:
            self._counter = itertools.count(number + 1)
        else:
            self._counter = itertools.count(current)


#: A Skolem argument is an existing node oid or an atomic value.
SkolemArg = Tuple[object, ...]


def _render_arg(arg: object) -> str:
    if isinstance(arg, Oid):
        return arg.name
    if isinstance(arg, Atom):
        return repr(arg.value) if isinstance(arg.value, str) else str(arg.value)
    return repr(arg)


def skolem_term_name(function: str, args: Tuple[object, ...]) -> str:
    """Render a Skolem term, e.g. ``YearPage(1998)`` or ``RootPage()``."""
    rendered = ", ".join(_render_arg(a) for a in args)
    return f"{function}({rendered})"


class SkolemRegistry:
    """Memoized Skolem-function application.

    The registry guarantees the defining property of Skolem functions:
    the same ``(function, args)`` pair always yields the same oid, within
    one registry.  A result graph owns its registry, so composed queries
    that add to the same graph agree on node identity, while independent
    site graphs stay disjoint.
    """

    def __init__(self) -> None:
        self._terms: Dict[Tuple[str, Tuple[object, ...]], Oid] = {}

    def __len__(self) -> int:
        return len(self._terms)

    def apply(self, function: str, args: Tuple[object, ...]) -> Oid:
        """Apply Skolem function ``function`` to ``args``; memoized.

        Arguments must be hashable (oids and atoms are).  The returned
        oid's name is the rendered term, so dumps stay readable.
        """
        key = (function, args)
        existing = self._terms.get(key)
        if existing is not None:
            return existing
        oid = Oid(skolem_term_name(function, args))
        self._terms[key] = oid
        return oid

    def lookup(self, function: str, args: Tuple[object, ...]) -> Optional[Oid]:
        """Return the oid for a term if it was ever created, else None."""
        return self._terms.get((function, args))

    def terms(self) -> Iterator[Tuple[str, Tuple[object, ...], Oid]]:
        """Iterate ``(function, args, oid)`` for every created term."""
        for (function, args), oid in self._terms.items():
            yield function, args, oid

    def functions(self) -> frozenset:
        """The set of Skolem function names that have been applied."""
        return frozenset(function for function, _ in self._terms)

    def instances_of(self, function: str) -> Iterator[Tuple[Tuple[object, ...], Oid]]:
        """Iterate ``(args, oid)`` pairs for one Skolem function."""
        for (name, args), oid in self._terms.items():
            if name == function:
                yield args, oid
