"""Schema extraction for semistructured graphs.

Semistructured data has no a-priori schema, but a *posteriori* schema --
which collections exist, which attributes their members carry, how
irregular the attribute sets are -- is still queryable ("our query
language ... can also query the schema", paper section 2.1) and is what
the repository's schema index stores.

:func:`summarize` computes a :class:`GraphSchema`: per-collection
attribute statistics plus irregularity measures.  The irregularity
numbers drive experiment E8 (semistructured vs. relational modelling,
paper section 6.3): a relational encoding would need the *maximal schema*
(every attribute on every row), so ``null_fraction`` is exactly the
fraction of wasted cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .graph import Graph
from .oid import Oid
from .values import Atom


@dataclass
class AttributeStats:
    """Usage statistics of one attribute within one collection."""

    name: str
    #: members of the collection carrying the attribute at least once
    present_on: int = 0
    #: total number of edges with this label out of collection members
    occurrences: int = 0
    #: distinct atom types (and "object" for node targets) observed
    value_kinds: List[str] = field(default_factory=list)

    def note(self, target: object) -> None:
        kind = target.type.value if isinstance(target, Atom) else "object"
        if kind not in self.value_kinds:
            self.value_kinds.append(kind)

    @property
    def is_multivalued(self) -> bool:
        return self.occurrences > self.present_on

    @property
    def is_type_heterogeneous(self) -> bool:
        """True when the same attribute carries values of different kinds
        on different objects (the "address is a string here, a structure
        there" irregularity of section 6.3)."""
        return len(self.value_kinds) > 1


@dataclass
class CollectionSchema:
    """The observed schema of one collection."""

    name: str
    size: int
    attributes: Dict[str, AttributeStats]

    @property
    def maximal_schema_width(self) -> int:
        """Number of columns a NULL-padded relational table would need."""
        return len(self.attributes)

    @property
    def null_fraction(self) -> float:
        """Fraction of cells that would be NULL in the maximal-schema table.

        0.0 means the collection is perfectly regular (a clean relation);
        values near 1.0 mean members share almost no attributes.
        """
        if not self.attributes or not self.size:
            return 0.0
        cells = self.size * len(self.attributes)
        filled = sum(a.present_on for a in self.attributes.values())
        return 1.0 - filled / cells

    @property
    def irregular_attributes(self) -> List[str]:
        """Attributes absent from at least one member (sorted)."""
        return sorted(
            name for name, a in self.attributes.items() if a.present_on < self.size
        )


@dataclass
class GraphSchema:
    """Observed schema of a whole graph: one entry per collection, plus the
    global label and collection-name lists (the schema index contents)."""

    labels: List[str]
    collection_names: List[str]
    collections: Dict[str, CollectionSchema]

    def collection_schema(self, name: str) -> CollectionSchema:
        return self.collections[name]

    @property
    def overall_null_fraction(self) -> float:
        """Size-weighted mean null fraction across collections."""
        weighted = 0.0
        total = 0
        for schema in self.collections.values():
            weighted += schema.null_fraction * schema.size
            total += schema.size
        return weighted / total if total else 0.0


def summarize(graph: Graph) -> GraphSchema:
    """Compute the observed schema of ``graph``.

    Only collection members are profiled per collection; the global label
    list covers every edge regardless of membership.
    """
    collections: Dict[str, CollectionSchema] = {}
    for coll_name in graph.collection_names():
        members = graph.collection(coll_name)
        attributes: Dict[str, AttributeStats] = {}
        for member in members:
            _profile_member(graph, member, attributes)
        collections[coll_name] = CollectionSchema(
            name=coll_name, size=len(members), attributes=attributes
        )
    return GraphSchema(
        labels=graph.labels(),
        collection_names=graph.collection_names(),
        collections=collections,
    )


def _profile_member(graph: Graph, member: Oid, attributes: Dict[str, AttributeStats]) -> None:
    seen_here: Dict[str, None] = {}
    for label, target in graph.out_edges(member):
        stats = attributes.setdefault(label, AttributeStats(name=label))
        stats.occurrences += 1
        stats.note(target)
        if label not in seen_here:
            seen_here[label] = None
            stats.present_on += 1
