"""Atomic values of the semistructured data model.

The paper's model (section 2.1) has two kinds of objects: *nodes*,
identified by oids, and *atomic values* -- integers, strings, and a family
of file-flavoured types that commonly appear in web pages (URLs and
PostScript, text, image, and HTML files).  Atomic types are handled
uniformly and values are *coerced dynamically* when compared at run time.

This module defines:

* :class:`AtomType` -- the enumeration of supported atomic types;
* :class:`Atom` -- an immutable, hashable (type, value) pair;
* dynamic-coercion comparison helpers (:func:`atoms_equal`,
  :func:`compare_atoms`) used by the STRUQL evaluator;
* type predicates (``is_image_file`` etc.) registered for use inside
  STRUQL regular path expressions and where-clauses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple, Union


class AtomType(enum.Enum):
    """Atomic types supported by the data model.

    The file-flavoured members mirror the paper's list of "atomic types
    that commonly appear in Web pages".  A file atom's value is its path
    (or inline content for small payloads); the distinction matters only
    to predicates and to the HTML generator, which renders each flavour
    differently.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    URL = "url"
    TEXT_FILE = "text"
    IMAGE_FILE = "image"
    POSTSCRIPT_FILE = "postscript"
    HTML_FILE = "html"

    @property
    def is_file(self) -> bool:
        """True for the file-flavoured types (text/image/postscript/html)."""
        return self in _FILE_TYPES


_FILE_TYPES = frozenset(
    {
        AtomType.TEXT_FILE,
        AtomType.IMAGE_FILE,
        AtomType.POSTSCRIPT_FILE,
        AtomType.HTML_FILE,
    }
)

#: Python payload types an Atom may carry.
AtomValue = Union[str, int, float, bool]


@dataclass(frozen=True)
class Atom:
    """An immutable atomic value: a payload tagged with an :class:`AtomType`.

    Atoms are hashable so they can appear as edge targets, in indexes and
    in binding tuples.  Two atoms are equal only if both type and payload
    are equal; use :func:`atoms_equal` for the coercing comparison STRUQL
    performs.
    """

    type: AtomType
    value: AtomValue

    def __post_init__(self) -> None:
        if not isinstance(self.value, (str, int, float, bool)):
            raise TypeError(
                f"atom payload must be str/int/float/bool, got {type(self.value).__name__}"
            )

    def __hash__(self) -> int:
        # atoms are hashed millions of times inside binding-tuple rows
        # (dedup, hash joins, indexes); the generated dataclass hash
        # re-hashes the enum member -- a Python-level call -- every
        # time, so memoize the result on the (frozen) instance
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.type, self.value))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Atom({self.type.value}:{self.value!r})"

    @property
    def is_file(self) -> bool:
        return self.type.is_file

    def as_string(self) -> str:
        """The payload rendered as a string (used for display and sorting)."""
        if self.type is AtomType.BOOLEAN:
            return "true" if self.value else "false"
        return str(self.value)

    def as_number(self) -> Optional[float]:
        """The payload as a float, or None if it does not look numeric."""
        if isinstance(self.value, bool):
            return float(self.value)
        if isinstance(self.value, (int, float)):
            return float(self.value)
        try:
            return float(str(self.value).strip())
        except ValueError:
            return None


def string(value: str) -> Atom:
    """Convenience constructor for a STRING atom."""
    return Atom(AtomType.STRING, value)


def integer(value: int) -> Atom:
    """Convenience constructor for an INTEGER atom."""
    return Atom(AtomType.INTEGER, int(value))


def real(value: float) -> Atom:
    """Convenience constructor for a FLOAT atom."""
    return Atom(AtomType.FLOAT, float(value))


def boolean(value: bool) -> Atom:
    """Convenience constructor for a BOOLEAN atom."""
    return Atom(AtomType.BOOLEAN, bool(value))


def url(value: str) -> Atom:
    """Convenience constructor for a URL atom."""
    return Atom(AtomType.URL, value)


def text_file(path: str) -> Atom:
    """Convenience constructor for a TEXT_FILE atom."""
    return Atom(AtomType.TEXT_FILE, path)


def image_file(path: str) -> Atom:
    """Convenience constructor for an IMAGE_FILE atom."""
    return Atom(AtomType.IMAGE_FILE, path)


def postscript_file(path: str) -> Atom:
    """Convenience constructor for a POSTSCRIPT_FILE atom."""
    return Atom(AtomType.POSTSCRIPT_FILE, path)


def html_file(path: str) -> Atom:
    """Convenience constructor for an HTML_FILE atom."""
    return Atom(AtomType.HTML_FILE, path)


def from_python(value: object) -> Atom:
    """Wrap a plain Python value in an Atom, inferring its type.

    Strings become STRING atoms; callers wanting URL or file flavours must
    use the explicit constructors.  Raises TypeError for unsupported
    payloads.
    """
    if isinstance(value, Atom):
        return value
    if isinstance(value, bool):
        return boolean(value)
    if isinstance(value, int):
        return integer(value)
    if isinstance(value, float):
        return real(value)
    if isinstance(value, str):
        return string(value)
    raise TypeError(f"cannot make an atom from {type(value).__name__}")


def atoms_equal(left: Atom, right: Atom) -> bool:
    """Equality with the paper's dynamic coercion.

    Atoms of the same type compare payloads directly.  Across types, both
    sides are coerced: numerically if both look numeric, otherwise by
    string rendering.  ``Atom(INTEGER, 1998) == Atom(STRING, "1998")`` is
    therefore true, matching "values are coerced dynamically when they are
    compared at run time".
    """
    if left.type is right.type:
        return left.value == right.value
    left_num, right_num = left.as_number(), right.as_number()
    if left_num is not None and right_num is not None:
        return left_num == right_num
    return left.as_string() == right.as_string()


@lru_cache(maxsize=4096)
def coercion_probes(atom: Atom) -> Tuple[Atom, ...]:
    """All exact spellings a coercing equality against ``atom`` can match.

    Exact-match value indexes (the in-memory reverse adjacency, the
    SQLite ``atoms`` table) store atoms verbatim, but STRUQL equality
    coerces: a probe for ``"1998"`` must also try the INTEGER and FLOAT
    spellings, and vice versa.  The probe order is significant -- index
    lookups report matches probe-by-probe -- so both engines share this
    one definition.  Memoized per distinct atom: the same constant is
    probed for every frontier row, and the spelling set never changes.
    """
    probes: List[Atom] = [atom]
    number = atom.as_number()
    if number is not None:
        as_int = Atom(AtomType.INTEGER, int(number)) if number == int(number) else None
        candidates = [as_int, Atom(AtomType.FLOAT, float(number))]
        text = atom.as_string()
        for atom_type in (AtomType.STRING, AtomType.URL):
            candidates.append(Atom(atom_type, text))
        if number == int(number):
            candidates.append(Atom(AtomType.STRING, str(int(number))))
        for candidate in candidates:
            if candidate is not None and candidate not in probes:
                probes.append(candidate)
    else:
        text = atom.as_string()
        for atom_type in (AtomType.STRING, AtomType.URL, AtomType.TEXT_FILE):
            candidate = Atom(atom_type, text)
            if candidate not in probes:
                probes.append(candidate)
    return tuple(probes)


def compare_atoms(left: Atom, right: Atom) -> int:
    """Three-way coercing comparison: negative / zero / positive.

    Numeric when both sides look numeric, lexicographic otherwise.  Used
    by STRUQL's ``<`` / ``<=`` / ``>`` / ``>=`` operators and by the
    template ORDER directive.
    """
    left_num, right_num = left.as_number(), right.as_number()
    if left_num is not None and right_num is not None:
        return (left_num > right_num) - (left_num < right_num)
    left_str, right_str = left.as_string(), right.as_string()
    return (left_str > right_str) - (left_str < right_str)


#: Registry of named atom predicates usable in STRUQL, e.g. isImageFile(q).
PredicateFn = Callable[[Atom], bool]

_TYPE_PREDICATES: Dict[str, PredicateFn] = {
    "isString": lambda a: a.type is AtomType.STRING,
    "isInteger": lambda a: a.type is AtomType.INTEGER,
    "isFloat": lambda a: a.type is AtomType.FLOAT,
    "isBoolean": lambda a: a.type is AtomType.BOOLEAN,
    "isUrl": lambda a: a.type is AtomType.URL,
    "isTextFile": lambda a: a.type is AtomType.TEXT_FILE,
    "isImageFile": lambda a: a.type is AtomType.IMAGE_FILE,
    "isPostScript": lambda a: a.type is AtomType.POSTSCRIPT_FILE,
    "isHtmlFile": lambda a: a.type is AtomType.HTML_FILE,
    "isFile": lambda a: a.is_file,
    "isNumber": lambda a: a.as_number() is not None,
}


def type_predicate(name: str) -> Optional[PredicateFn]:
    """Look up a built-in atom-type predicate by its STRUQL name."""
    return _TYPE_PREDICATES.get(name)


def type_predicate_names() -> frozenset:
    """Names of all built-in atom-type predicates."""
    return frozenset(_TYPE_PREDICATES)


#: Mapping from DDL / wrapper type directives ("text", "image", ...) to types.
TYPE_DIRECTIVES: Dict[str, AtomType] = {t.value: t for t in AtomType}


def parse_typed_value(type_name: str, raw: str) -> Atom:
    """Build an atom from a DDL type directive name and a raw string.

    ``parse_typed_value("integer", "1998")`` -> INTEGER atom 1998.
    Unknown type names raise ValueError; bad payloads raise ValueError.
    """
    try:
        atom_type = TYPE_DIRECTIVES[type_name]
    except KeyError:
        raise ValueError(f"unknown atomic type directive: {type_name!r}") from None
    if atom_type is AtomType.INTEGER:
        return integer(int(raw))
    if atom_type is AtomType.FLOAT:
        return real(float(raw))
    if atom_type is AtomType.BOOLEAN:
        lowered = raw.strip().lower()
        if lowered not in ("true", "false"):
            raise ValueError(f"bad boolean payload: {raw!r}")
        return boolean(lowered == "true")
    return Atom(atom_type, raw)
