"""GAV warehousing mediator: sources + mapping queries -> the data graph."""

from .mediator import MediationReport, Mediator

__all__ = ["MediationReport", "Mediator"]
