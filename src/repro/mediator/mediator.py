"""The mediator: a uniform, integrated view of all underlying data.

"STRUDEL's mediator supports data integration by providing a uniform view
of all underlying data, irrespective of where it is stored" (paper
section 2.1).  Two design decisions follow the paper:

* **Warehousing.**  "In STRUDEL's prototype, we implemented warehousing;
  the result of data integration is stored in STRUDEL's data repository."
  :meth:`Mediator.materialize` wraps every source, stages them side by
  side, runs the mappings, and stores the resulting *data graph*.
  :meth:`Mediator.refresh` recomputes the warehouse after sources change.

* **Global-as-view (GAV).**  "For each relation R in the mediated schema,
  a query over the source relations specifies how to obtain R's tuples."
  A mapping here is a STRUQL program over the *staging graph*, in which
  each source's collections appear prefixed with ``<source>.`` (so two
  sources may both have a ``Publications`` collection).  The mapping's
  ``create``/``link``/``collect`` clauses build the mediated collections.

For sources that need no restructuring, :meth:`import_collection` copies
a source collection (with everything reachable from its members) into the
warehouse verbatim -- cheaper than an identity mapping query and it
preserves oids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..errors import MediatorError
from ..graph import Graph, Oid
from ..repository import Repository
from ..struql import Program, evaluate, parse
from ..wrappers import Wrapper


@dataclass
class _ImportSpec:
    source: str
    collection: str
    target_collection: str


@dataclass
class MediationReport:
    """What a materialization did: per-source and per-mapping sizes."""

    source_sizes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    warehouse_size: Dict[str, int] = field(default_factory=dict)
    mappings_run: int = 0
    collections_imported: int = 0


class Mediator:
    """Registers sources + GAV mappings; materializes the data graph."""

    def __init__(self, repository: Optional[Repository] = None) -> None:
        self.repository = repository
        self._sources: Dict[str, Wrapper] = {}
        self._mappings: List[Program] = []
        self._imports: List[_ImportSpec] = []
        self.last_report: Optional[MediationReport] = None

    # ------------------------------------------------------------ #
    # configuration

    def add_source(self, name: str, wrapper: Wrapper) -> None:
        """Register a wrapped source under ``name``.

        In the staging graph its collections appear as ``name.<coll>``.
        """
        if name in self._sources:
            raise MediatorError(f"source {name!r} already registered")
        self._sources[name] = wrapper

    def remove_source(self, name: str) -> None:
        if name not in self._sources:
            raise MediatorError(f"unknown source {name!r}")
        del self._sources[name]
        self._imports = [spec for spec in self._imports if spec.source != name]

    def source_names(self) -> List[str]:
        return list(self._sources)

    def add_mapping(self, query: Union[str, Program]) -> None:
        """Add a GAV mapping: a STRUQL program over the staging graph."""
        if isinstance(query, str):
            query = parse(query)
        self._mappings.append(query)

    def import_collection(
        self, source: str, collection: str, as_name: str = ""
    ) -> None:
        """Copy a source collection into the warehouse verbatim."""
        if source not in self._sources:
            raise MediatorError(f"unknown source {source!r}")
        self._imports.append(
            _ImportSpec(source, collection, as_name or collection)
        )

    # ------------------------------------------------------------ #
    # materialization

    def staging_graph(self) -> Graph:
        """Wrap every source and merge side by side (collections prefixed)."""
        staging = Graph("staging")
        report = MediationReport()
        for name, wrapper in self._sources.items():
            wrapped = wrapper.wrap()
            report.source_sizes[name] = wrapped.stats()
            staging.merge(wrapped, collection_prefix=f"{name}.")
        self.last_report = report
        return staging

    def materialize(self, name: str = "data") -> Graph:
        """Build the warehouse data graph and store it in the repository."""
        if not self._sources:
            raise MediatorError("no sources registered")
        staging = self.staging_graph()
        report = self.last_report
        assert report is not None
        warehouse = Graph(name)
        for spec in self._imports:
            self._run_import(staging, warehouse, spec)
            report.collections_imported += 1
        for mapping in self._mappings:
            evaluate(mapping, staging, into=warehouse)
            report.mappings_run += 1
        report.warehouse_size = warehouse.stats()
        if self.repository is not None:
            self.repository.store(name, warehouse)
        return warehouse

    def refresh(self, name: str = "data") -> Graph:
        """Recompute the warehouse (sources are re-wrapped from scratch).

        The paper (section 7) notes that warehousing "is inadequate for
        sites whose data sources are large or change frequently";
        incremental view update for semistructured data was an open
        problem, so refresh is a full recomputation, as in the prototype.
        """
        return self.materialize(name)

    # ------------------------------------------------------------ #

    def _run_import(self, staging: Graph, warehouse: Graph, spec: _ImportSpec) -> None:
        staged_name = f"{spec.source}.{spec.collection}"
        members = staging.collection(staged_name)
        if not staging.has_collection(staged_name):
            raise MediatorError(
                f"source {spec.source!r} has no collection {spec.collection!r}"
            )
        warehouse.create_collection(spec.target_collection)
        copied: Dict[Oid, None] = {}
        for member in members:
            for reached in staging.reachable(member):
                copied.setdefault(reached, None)
        for oid in copied:
            warehouse.add_node(oid)
        for oid in copied:
            for label, target in staging.out_edges(oid):
                if isinstance(target, Oid) and target not in copied:
                    continue
                warehouse.add_edge(oid, label, target)
        for member in members:
            warehouse.add_to_collection(spec.target_collection, member)
