"""The mediator: a uniform, integrated view of all underlying data.

"STRUDEL's mediator supports data integration by providing a uniform view
of all underlying data, irrespective of where it is stored" (paper
section 2.1).  Two design decisions follow the paper:

* **Warehousing.**  "In STRUDEL's prototype, we implemented warehousing;
  the result of data integration is stored in STRUDEL's data repository."
  :meth:`Mediator.materialize` wraps every source, stages them side by
  side, runs the mappings, and stores the resulting *data graph*.
  :meth:`Mediator.refresh` recomputes the warehouse after sources change.

* **Global-as-view (GAV).**  "For each relation R in the mediated schema,
  a query over the source relations specifies how to obtain R's tuples."
  A mapping here is a STRUQL program over the *staging graph*, in which
  each source's collections appear prefixed with ``<source>.`` (so two
  sources may both have a ``Publications`` collection).  The mapping's
  ``create``/``link``/``collect`` clauses build the mediated collections.

For sources that need no restructuring, :meth:`import_collection` copies
a source collection (with everything reachable from its members) into the
warehouse verbatim -- cheaper than an identity mapping query and it
preserves oids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..errors import MediatorError, StrudelError
from ..graph import Graph, Oid, boolean, integer, string
from ..repository import Repository
from ..resilience import (
    ChaosFault,
    CircuitBreaker,
    ResiliencePolicy,
    record_recovery_event,
)
from ..struql import Program, evaluate, parse
from ..wrappers import Wrapper

#: oid of the provenance object stamped into resilient warehouses
PROVENANCE_OID = "mediation:provenance"


@dataclass
class _ImportSpec:
    source: str
    collection: str
    target_collection: str


@dataclass
class MediationReport:
    """What a materialization did: per-source and per-mapping sizes,
    plus -- under a :class:`~repro.resilience.ResiliencePolicy` -- what
    degraded along the way."""

    source_sizes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    warehouse_size: Dict[str, int] = field(default_factory=dict)
    mappings_run: int = 0
    collections_imported: int = 0
    #: source name -> final error string after retries gave up
    failed_sources: Dict[str, str] = field(default_factory=dict)
    #: sources not even tried because their circuit breaker was open
    skipped_sources: List[str] = field(default_factory=list)
    #: source name -> QuarantineReport.as_dict() of per-record failures
    quarantine: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: source name -> failed attempts before success or giving up
    retries: Dict[str, int] = field(default_factory=dict)
    #: data-constraint enforcement accounting (checked/violated/refuted
    #: counters plus the warehouse-level quarantined records)
    constraints: Dict[str, object] = field(default_factory=dict)
    #: the warehouse was built from a subset of the registered sources,
    #: or with quarantined records
    partial: bool = False
    #: a previous warehouse generation was returned instead of a rebuild
    stale: bool = False


class Mediator:
    """Registers sources + GAV mappings; materializes the data graph."""

    def __init__(
        self,
        repository: Optional[Repository] = None,
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        #: either repository backend works here: the in-memory/DDL-file
        #: :class:`Repository` or a :class:`~repro.repository.sql.SqlRepository`
        #: (whose ``rebuild`` hook materializes transactionally in-store)
        self.repository = repository
        #: default resilience policy; ``None`` keeps mediation strict
        self.policy = policy
        self._sources: Dict[str, Wrapper] = {}
        self._mappings: List[Program] = []
        self._imports: List[_ImportSpec] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.last_report: Optional[MediationReport] = None

    # ------------------------------------------------------------ #
    # configuration

    def add_source(self, name: str, wrapper: Wrapper) -> None:
        """Register a wrapped source under ``name``.

        In the staging graph its collections appear as ``name.<coll>``.
        """
        if name in self._sources:
            raise MediatorError(f"source {name!r} already registered")
        self._sources[name] = wrapper

    def remove_source(self, name: str) -> None:
        if name not in self._sources:
            raise MediatorError(f"unknown source {name!r}")
        del self._sources[name]
        self._imports = [spec for spec in self._imports if spec.source != name]

    def source_names(self) -> List[str]:
        return list(self._sources)

    def add_mapping(self, query: Union[str, Program]) -> None:
        """Add a GAV mapping: a STRUQL program over the staging graph."""
        if isinstance(query, str):
            query = parse(query)
        self._mappings.append(query)

    def import_collection(
        self, source: str, collection: str, as_name: str = ""
    ) -> None:
        """Copy a source collection into the warehouse verbatim."""
        if source not in self._sources:
            raise MediatorError(f"unknown source {source!r}")
        self._imports.append(
            _ImportSpec(source, collection, as_name or collection)
        )

    def import_source(self, source: str) -> None:
        """Copy *every* collection of a source into the warehouse verbatim.

        The collection list is discovered at materialization time, so
        it tracks whatever the wrapper produces on each run.
        """
        if source not in self._sources:
            raise MediatorError(f"unknown source {source!r}")
        self._imports.append(_ImportSpec(source, "*", ""))

    # ------------------------------------------------------------ #
    # circuit breakers

    def breaker(self, name: str, policy: Optional[ResiliencePolicy] = None) -> CircuitBreaker:
        """The circuit breaker guarding ``name`` (created on first use)."""
        existing = self._breakers.get(name)
        if existing is not None:
            return existing
        policy = policy or self.policy or ResiliencePolicy()
        created = CircuitBreaker(
            name,
            failure_threshold=policy.breaker_threshold,
            reset_timeout=policy.breaker_reset,
            clock=policy.breaker_clock(),
        )
        self._breakers[name] = created
        return created

    def breaker_states(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every source's circuit breaker."""
        return {name: breaker.snapshot() for name, breaker in self._breakers.items()}

    # ------------------------------------------------------------ #
    # materialization

    def staging_graph(self, policy: Optional[ResiliencePolicy] = None) -> Graph:
        """Wrap every source and merge side by side (collections prefixed).

        With a resilience ``policy`` (argument or constructor default),
        each source is wrapped under quarantine, retried with backoff,
        and guarded by its circuit breaker; sources that still fail are
        recorded in ``last_report`` and left out instead of raising.
        """
        policy = policy or self.policy
        staging = Graph("staging")
        report = MediationReport()
        for name, wrapper in self._sources.items():
            if policy is None:
                wrapped = wrapper.wrap()
            else:
                wrapped = self._wrap_source(name, wrapper, policy, report)
                if wrapped is None:
                    continue
            report.source_sizes[name] = wrapped.stats()
            staging.merge(wrapped, collection_prefix=f"{name}.")
        report.partial = bool(
            report.failed_sources
            or report.skipped_sources
            or any(q.get("quarantined") for q in report.quarantine.values())
        )
        self.last_report = report
        return staging

    def _wrap_source(
        self,
        name: str,
        wrapper: Wrapper,
        policy: ResiliencePolicy,
        report: MediationReport,
    ) -> Optional[Graph]:
        breaker = self.breaker(name, policy)
        if not breaker.allow():
            report.skipped_sources.append(name)
            return None
        retries = 0

        def on_retry(attempt: int, error: BaseException, delay: float) -> None:
            nonlocal retries
            retries += 1

        try:
            wrapped = policy.retry.call(
                lambda: wrapper.wrap(policy.wrap),
                retry_on=(ChaosFault, OSError),
                on_retry=on_retry,
            )
        except (StrudelError, ChaosFault, OSError) as error:
            breaker.record_failure()
            report.failed_sources[name] = f"{type(error).__name__}: {error}"
            if retries:
                report.retries[name] = retries
            return None
        breaker.record_success()
        if retries:
            report.retries[name] = retries
        if wrapper.last_quarantine.count:
            report.quarantine[name] = wrapper.last_quarantine.as_dict()
        assert isinstance(wrapped, Graph)
        return wrapped

    def materialize(
        self, name: str = "data", policy: Optional[ResiliencePolicy] = None
    ) -> Graph:
        """Build the warehouse data graph and store it in the repository.

        Strict without a policy: any source failure propagates.  With one,
        the warehouse is built from the surviving sources and stamped with
        a provenance object (oid ``mediation:provenance``) recording
        ``partial`` status and which sources are present or missing.  When
        fewer than ``policy.min_sources`` survive, the repository's
        previous generation of ``name`` is returned instead (``stale``);
        with no fallback available, a :class:`MediatorError` is raised.
        """
        if not self._sources:
            raise MediatorError("no sources registered")
        policy = policy or self.policy
        staging = self.staging_graph(policy)
        report = self.last_report
        assert report is not None
        if policy is not None:
            unavailable = set(report.failed_sources) | set(report.skipped_sources)
            survivors = len(self._sources) - len(unavailable)
            if survivors < policy.min_sources:
                return self._stale_fallback(name, survivors, report, policy)
        else:
            unavailable = set()
        if self.repository is not None and hasattr(self.repository, "rebuild"):
            # transactional backends (the SQLite repository) expose
            # ``rebuild``: imports, mappings, constraint checks, and the
            # provenance stamp all write directly into the store inside
            # one transaction, skipping the build-then-copy of the
            # in-memory path; an exception rolls the whole build back,
            # leaving the previous generation of ``name`` untouched
            with self.repository.rebuild(name) as warehouse:
                self._populate_warehouse(
                    staging, warehouse, unavailable, policy, report
                )
            report.warehouse_size = warehouse.stats()
            return warehouse
        warehouse = Graph(name)
        self._populate_warehouse(staging, warehouse, unavailable, policy, report)
        report.warehouse_size = warehouse.stats()
        if self.repository is not None:
            self.repository.store(name, warehouse)
        return warehouse

    def _populate_warehouse(
        self,
        staging: Graph,
        warehouse: Graph,
        unavailable: set,
        policy: Optional[ResiliencePolicy],
        report: MediationReport,
    ) -> None:
        """Run imports, mappings, the warehouse-level constraint pass,
        and the provenance stamp against ``warehouse`` (an in-memory
        graph or a transactional store target)."""
        for spec in self._imports:
            if spec.source in unavailable:
                continue
            for actual in self._expand_import(staging, spec):
                self._run_import(staging, warehouse, actual)
                report.collections_imported += 1
        for mapping in self._mappings:
            evaluate(mapping, staging, into=warehouse)
            report.mappings_run += 1
        if policy is not None and getattr(policy.wrap, "constraints", None) is not None:
            # the per-wrapper gates already ran; this warehouse-level
            # pass catches what no single source can see (cross-source
            # exclusive collisions, constraints on mapped collections)
            self._apply_warehouse_constraints(warehouse, policy, report)
        if policy is not None:
            self._stamp_provenance(warehouse, report)

    def ingest(
        self, name: str = "data", policy: Optional[ResiliencePolicy] = None
    ) -> Graph:
        """Resilient materialization: :meth:`materialize` under a policy.

        The default policy quarantines bad records with no error budget,
        retries flaky sources, and requires one surviving source.
        """
        return self.materialize(name, policy or self.policy or ResiliencePolicy())

    def refresh(self, name: str = "data") -> Graph:
        """Recompute the warehouse (sources are re-wrapped from scratch).

        The paper (section 7) notes that warehousing "is inadequate for
        sites whose data sources are large or change frequently";
        incremental view update for semistructured data was an open
        problem, so refresh is a full recomputation, as in the prototype.
        """
        return self.materialize(name)

    def _stale_fallback(
        self,
        name: str,
        survivors: int,
        report: MediationReport,
        policy: ResiliencePolicy,
    ) -> Graph:
        report.stale = True
        report.partial = True
        total = len(self._sources)
        if self.repository is not None and name in self.repository:
            record_recovery_event(
                "mediator",
                f"served previous warehouse {name!r}: only {survivors} of "
                f"{total} sources available",
            )
            previous = self.repository.fetch(name)
            report.warehouse_size = previous.stats()
            return previous
        raise MediatorError(
            f"only {survivors} of {total} sources available "
            f"(minimum {policy.min_sources}) "
            f"and no previous warehouse to fall back to"
        )

    def _apply_warehouse_constraints(
        self,
        warehouse: Graph,
        policy: ResiliencePolicy,
        report: MediationReport,
    ) -> None:
        from ..constraints.gate import apply_constraint_gate
        from ..resilience.quarantine import QuarantineReport

        gate_report = QuarantineReport(source="warehouse")
        apply_constraint_gate(warehouse, policy.wrap, gate_report, "warehouse")
        counters = policy.wrap.constraints.counters
        report.constraints = {
            "checked": counters.checked,
            "violated": counters.violated,
            "refuted": counters.refuted,
            "quarantined": [record.as_dict() for record in gate_report.records],
        }
        if gate_report.count:
            report.partial = True

    def _stamp_provenance(self, warehouse: Graph, report: MediationReport) -> None:
        oid = warehouse.add_node(Oid(PROVENANCE_OID))
        warehouse.add_edge(oid, "partial", boolean(report.partial))
        missing = set(report.failed_sources) | set(report.skipped_sources)
        for name in self._sources:
            label = "missingSource" if name in missing else "source"
            warehouse.add_edge(oid, label, string(name))
        quarantined = sum(
            int(q.get("quarantined", 0)) for q in report.quarantine.values()
        )
        if quarantined:
            warehouse.add_edge(oid, "quarantined", integer(quarantined))
        constraints = report.constraints
        if constraints:
            violated = int(constraints.get("violated", 0))
            if violated:
                warehouse.add_edge(
                    oid, "constraintViolations", integer(violated)
                )
            for record in constraints.get("quarantined", ()):
                warehouse.add_edge(
                    oid, "constraintQuarantined", string(record["locator"])
                )

    # ------------------------------------------------------------ #

    def _expand_import(self, staging: Graph, spec: _ImportSpec) -> List[_ImportSpec]:
        """Resolve an :meth:`import_source` wildcard against the staging
        graph; plain specs pass through unchanged."""
        if spec.collection != "*":
            return [spec]
        prefix = f"{spec.source}."
        return [
            _ImportSpec(spec.source, name[len(prefix):], name[len(prefix):])
            for name in staging.collection_names()
            if name.startswith(prefix)
        ]

    def _run_import(self, staging: Graph, warehouse: Graph, spec: _ImportSpec) -> None:
        staged_name = f"{spec.source}.{spec.collection}"
        members = staging.collection(staged_name)
        if not staging.has_collection(staged_name):
            raise MediatorError(
                f"source {spec.source!r} has no collection {spec.collection!r}"
            )
        warehouse.create_collection(spec.target_collection)
        copied: Dict[Oid, None] = {}
        for member in members:
            for reached in staging.reachable(member):
                copied.setdefault(reached, None)
        for oid in copied:
            warehouse.add_node(oid)
        for oid in copied:
            for label, target in staging.out_edges(oid):
                if isinstance(target, Oid) and target not in copied:
                    continue
                warehouse.add_edge(oid, label, target)
        for member in members:
            warehouse.add_to_collection(spec.target_collection, member)
