"""Data repository for semistructured graphs: DDL exchange, persistence,
full indexing of schema and data."""

from . import ddl
from .indexes import (
    IndexStatistics,
    SchemaIndex,
    graph_statistics,
    statistics_refresh_counters,
)
from .store import Repository
from .summary import LabelSummary, label_summary

__all__ = [
    "IndexStatistics",
    "LabelSummary",
    "Repository",
    "SchemaIndex",
    "ddl",
    "graph_statistics",
    "label_summary",
    "statistics_refresh_counters",
]
