"""Data repository for semistructured graphs: DDL exchange, persistence,
full indexing of schema and data."""

from . import ddl
from .indexes import IndexStatistics, SchemaIndex, graph_statistics
from .store import Repository

__all__ = [
    "IndexStatistics",
    "Repository",
    "SchemaIndex",
    "ddl",
    "graph_statistics",
]
