"""Data repository for semistructured graphs: DDL exchange, persistence,
full indexing of schema and data.

Two interchangeable backends implement the repository interface: the
original in-memory/JSON-file :class:`Repository` and the SQLite
edge-triple :class:`~repro.repository.sql.SqlRepository`
(:func:`open_repository` selects one by name).
"""

from . import ddl
from .atomic import atomic_write_text
from .indexes import (
    IndexStatistics,
    SchemaIndex,
    graph_statistics,
    statistics_refresh_counters,
)
from .sql import SqlGraph, SqlRepository, SqlStore, open_repository
from .store import Repository
from .summary import LabelSummary, label_summary

__all__ = [
    "IndexStatistics",
    "LabelSummary",
    "Repository",
    "SchemaIndex",
    "SqlGraph",
    "SqlRepository",
    "SqlStore",
    "atomic_write_text",
    "ddl",
    "graph_statistics",
    "label_summary",
    "open_repository",
    "statistics_refresh_counters",
]
