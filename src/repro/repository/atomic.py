"""Crash-safe file-write primitive shared by every storage backend.

One copy of the tmp+fsync+rename dance, used by the DDL store
(:mod:`repro.repository.store`), the SQLite backend's DDL export
(:mod:`repro.repository.sql`), and the resilience report writer
(:mod:`repro.resilience.report`).  Previously each grew its own copy;
they drifted on fsync behaviour, which is exactly the kind of bug a
chaos harness exists to catch -- so the harness hooks are part of the
shared primitive, not the callers.
"""

from __future__ import annotations

import os

from ..resilience.chaos import maybe_fail


def atomic_write_text(path: str, text: str, site: str) -> None:
    """Write ``text`` to ``path`` via tmp+fsync+rename.

    The ``site``-prefixed chaos hooks mark the three points a crash can
    land: before the tmp write, after writing but before fsync, and
    after fsync but before the rename.  At every one of them, ``path``
    still holds its previous content in full.
    """
    maybe_fail(f"{site}.tmp")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        maybe_fail(f"{site}.flush")
        handle.flush()
        os.fsync(handle.fileno())
    maybe_fail(f"{site}.rename")
    os.replace(tmp, path)
