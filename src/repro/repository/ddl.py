"""Strudel's data-definition language (DDL).

"Data is exchanged between the data repository and external sources in a
common data definition language, in the style of OEM's" (paper section
2.1).  This module implements a line-oriented, human-readable DDL with a
loader and a dumper that round-trip exactly.

Grammar (``#`` starts a comment, blank lines are ignored)::

    graph      ::= statement*
    statement  ::= "collection" name [ "{" default* "}" ]
                 | "object" name "{" attribute* "}"
                 | "member" name ":" name ("," name)*
    default    ::= label ":" typename          # per-collection value typing
    attribute  ::= label ":" value
    value      ::= string                      # typed by defaults, else STRING
                 | typename string             # explicit atomic type
                 | integer | float | "true" | "false"
                 | "ref" name                  # edge to another node

Names and labels are bare identifiers (``[A-Za-z_][A-Za-z0-9_.-]*``) or
double-quoted strings with backslash escapes -- quoting lets Skolem-term
oids like ``YearPage(1998)`` round-trip.  Collection *default* directives
reproduce the paper's "collection directive specifies the default types of
attribute values that would otherwise be interpreted as strings"; they are
hints, not constraints, and an explicit typename on a value overrides
them.
"""

from __future__ import annotations

import hashlib
import io
import re
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from ..errors import DDLSyntaxError
from ..graph import Atom, AtomType, Graph, Oid, parse_typed_value

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")
_NUMBER = re.compile(r"-?\d+(\.\d+)?([eE][+-]?\d+)?")
_TYPE_NAMES = frozenset(t.value for t in AtomType)

Token = Tuple[str, str, int]  # (kind, text, line)


def _tokenize(text: str) -> Iterator[Token]:
    """Yield (kind, text, line) tokens; kinds: ident, string, number, punct."""
    for line_no, line in enumerate(text.splitlines(), start=1):
        position = 0
        length = len(line)
        while position < length:
            char = line[position]
            if char in " \t":
                position += 1
                continue
            if char == "#":
                break
            if char == '"':
                value, position = _read_string(line, position, line_no)
                yield "string", value, line_no
                continue
            match = _NUMBER.match(line, position)
            if match and (char.isdigit() or char == "-"):
                yield "number", match.group(0), line_no
                position = match.end()
                continue
            match = _IDENT.match(line, position)
            if match:
                yield "ident", match.group(0), line_no
                position = match.end()
                continue
            if char in "{}:,":
                yield "punct", char, line_no
                position += 1
                continue
            raise DDLSyntaxError(f"unexpected character {char!r}", line_no)


def _read_string(line: str, position: int, line_no: int) -> Tuple[str, int]:
    """Read a double-quoted string starting at ``position``; returns (value, end)."""
    out: List[str] = []
    index = position + 1
    while index < len(line):
        char = line[index]
        if char == "\\":
            if index + 1 >= len(line):
                raise DDLSyntaxError("dangling backslash in string", line_no)
            escape = line[index + 1]
            out.append({"n": "\n", "t": "\t"}.get(escape, escape))
            index += 2
            continue
        if char == '"':
            return "".join(out), index + 1
        out.append(char)
        index += 1
    raise DDLSyntaxError("unterminated string", line_no)


class _TokenStream:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Union[Token, None]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise DDLSyntaxError("unexpected end of input")
        self._index += 1
        return token

    def expect(self, kind: str, text: str = "") -> Token:
        token = self.next()
        if token[0] != kind or (text and token[1] != text):
            want = text or kind
            raise DDLSyntaxError(f"expected {want!r}, got {token[1]!r}", token[2])
        return token

    def match(self, kind: str, text: str = "") -> bool:
        token = self.peek()
        if token is None or token[0] != kind or (text and token[1] != text):
            return False
        self._index += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.peek() is None


def loads(text: str, name: str = "") -> Graph:
    """Parse DDL text into a fresh :class:`~repro.graph.Graph`.

    Forward references are allowed: ``ref`` targets and ``member`` lists
    may mention objects defined later in the file.
    """
    stream = _TokenStream(list(_tokenize(text)))
    graph = Graph(name)
    defaults: Dict[str, Dict[str, str]] = {}
    pending_edges: List[Tuple[Oid, str, str, int]] = []
    pending_members: List[Tuple[str, str, int]] = []
    object_collections: Dict[str, List[str]] = {}

    while not stream.exhausted:
        kind, word, line = stream.next()
        if kind != "ident" or word not in ("collection", "object", "member"):
            raise DDLSyntaxError(f"expected a statement keyword, got {word!r}", line)
        if word == "collection":
            _parse_collection(stream, graph, defaults)
        elif word == "object":
            _parse_object(stream, graph, defaults, object_collections, pending_edges)
        else:
            _parse_member(stream, pending_members)

    for source, label, target_name, line in pending_edges:
        target = Oid(target_name)
        if not graph.has_node(target):
            raise DDLSyntaxError(f"ref to undefined object {target_name!r}", line)
        graph.add_edge(source, label, target)
    for coll, member_name, line in pending_members:
        member = Oid(member_name)
        if not graph.has_node(member):
            raise DDLSyntaxError(f"member refers to undefined object {member_name!r}", line)
        graph.add_to_collection(coll, member)
    return graph


def _parse_name(stream: _TokenStream) -> Tuple[str, int]:
    token = stream.next()
    if token[0] not in ("ident", "string"):
        raise DDLSyntaxError(f"expected a name, got {token[1]!r}", token[2])
    return token[1], token[2]


def _parse_collection(
    stream: _TokenStream, graph: Graph, defaults: Dict[str, Dict[str, str]]
) -> None:
    name, _ = _parse_name(stream)
    graph.create_collection(name)
    collection_defaults = defaults.setdefault(name, {})
    if not stream.match("punct", "{"):
        return
    while not stream.match("punct", "}"):
        label, _ = _parse_name(stream)
        stream.expect("punct", ":")
        type_token = stream.next()
        if type_token[0] != "ident" or type_token[1] not in _TYPE_NAMES:
            raise DDLSyntaxError(
                f"unknown type name {type_token[1]!r} in collection defaults",
                type_token[2],
            )
        collection_defaults[label] = type_token[1]


def _parse_object(
    stream: _TokenStream,
    graph: Graph,
    defaults: Dict[str, Dict[str, str]],
    object_collections: Dict[str, List[str]],
    pending_edges: List[Tuple[Oid, str, str, int]],
) -> None:
    name, _ = _parse_name(stream)
    oid = graph.add_node(Oid(name))
    stream.expect("punct", "{")
    while not stream.match("punct", "}"):
        label, _ = _parse_name(stream)
        stream.expect("punct", ":")
        token = stream.next()
        if token[0] == "ident" and token[1] == "ref":
            target_name, target_line = _parse_name(stream)
            pending_edges.append((oid, label, target_name, target_line))
            continue
        graph.add_edge(oid, label, _parse_value(stream, token, graph, defaults, oid, label))


def _parse_value(
    stream: _TokenStream,
    token: Token,
    graph: Graph,
    defaults: Dict[str, Dict[str, str]],
    oid: Oid,
    label: str,
) -> Atom:
    kind, text, line = token
    if kind == "number":
        if "." in text or "e" in text or "E" in text:
            return Atom(AtomType.FLOAT, float(text))
        return Atom(AtomType.INTEGER, int(text))
    if kind == "ident" and text in ("true", "false"):
        return Atom(AtomType.BOOLEAN, text == "true")
    if kind == "ident" and text in _TYPE_NAMES:
        payload = stream.next()
        if payload[0] != "string":
            raise DDLSyntaxError(
                f"expected a quoted payload after type {text!r}", payload[2]
            )
        return parse_typed_value(text, payload[1])
    if kind == "string":
        default_type = _default_type_for(graph, defaults, oid, label)
        if default_type:
            return parse_typed_value(default_type, text)
        return Atom(AtomType.STRING, text)
    raise DDLSyntaxError(f"expected a value, got {text!r}", line)


def _default_type_for(
    graph: Graph, defaults: Dict[str, Dict[str, str]], oid: Oid, label: str
) -> str:
    """Find a collection default type for (object, label), if any.

    Because ``member`` statements may come later in the file, we also fall
    back to *any* collection declaring a default for this label when the
    object's memberships are not yet known.  This keeps the loader
    single-pass while matching the paper's "directives are not
    constraints" spirit.
    """
    for coll in graph.collections_of(oid):
        declared = defaults.get(coll, {}).get(label)
        if declared:
            return declared
    for collection_defaults in defaults.values():
        declared = collection_defaults.get(label)
        if declared:
            return declared
    return ""


def _parse_member(stream: _TokenStream, pending: List[Tuple[str, str, int]]) -> None:
    coll, _ = _parse_name(stream)
    stream.expect("punct", ":")
    while True:
        member, line = _parse_name(stream)
        pending.append((coll, member, line))
        if not stream.match("punct", ","):
            break


def load(stream: TextIO, name: str = "") -> Graph:
    """Parse DDL from an open text stream."""
    return loads(stream.read(), name)


def _quote(name: str) -> str:
    """Quote a name when it is not a bare identifier."""
    if _IDENT.fullmatch(name):
        return name
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _render_atom(atom: Atom) -> str:
    if atom.type is AtomType.INTEGER:
        return str(atom.value)
    if atom.type is AtomType.FLOAT:
        return repr(float(atom.value))
    if atom.type is AtomType.BOOLEAN:
        return "true" if atom.value else "false"
    payload = str(atom.value).replace("\\", "\\\\").replace('"', '\\"')
    payload = payload.replace("\n", "\\n").replace("\t", "\\t")
    if atom.type is AtomType.STRING:
        return f'"{payload}"'
    return f'{atom.type.value} "{payload}"'


def dumps(graph: Graph) -> str:
    """Serialize a graph to DDL text.

    The dump is deterministic given the graph's insertion order and
    ``loads(dumps(g))`` reproduces ``g`` exactly (nodes, edges,
    collections), except for Skolem memoization, which is not part of the
    exchanged data.
    """
    out = io.StringIO()
    for coll in graph.collection_names():
        out.write(f"collection {_quote(coll)}\n")
    if graph.collection_names():
        out.write("\n")
    for oid in graph.nodes():
        out.write(f"object {_quote(oid.name)} {{\n")
        for label, target in graph.out_edges(oid):
            if isinstance(target, Oid):
                out.write(f"  {_quote(label)}: ref {_quote(target.name)}\n")
            else:
                out.write(f"  {_quote(label)}: {_render_atom(target)}\n")
        out.write("}\n")
    for coll in graph.collection_names():
        members = graph.collection(coll)
        if members:
            rendered = ", ".join(_quote(m.name) for m in members)
            out.write(f"member {_quote(coll)}: {rendered}\n")
    return out.getvalue()


def dump(graph: Graph, stream: TextIO) -> None:
    """Serialize a graph to an open text stream."""
    stream.write(dumps(graph))


# -------------------------------------------------------------------- #
# integrity checksums
#
# The header is a DDL comment, so dumps carrying one still load in any
# reader of the plain grammar; readers that know the prefix can detect
# truncated or corrupted files before parsing.

CHECKSUM_PREFIX = "# repro-checksum: sha256="


def checksum(text: str) -> str:
    """Hex sha256 of the DDL body."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def with_checksum(text: str) -> str:
    """Prefix DDL text with its integrity header."""
    return f"{CHECKSUM_PREFIX}{checksum(text)}\n{text}"


def split_checksum(text: str) -> Tuple[Optional[str], str]:
    """Split a dump into (declared checksum or ``None``, body)."""
    if text.startswith(CHECKSUM_PREFIX):
        header, _, body = text.partition("\n")
        return header[len(CHECKSUM_PREFIX):].strip(), body
    return None, text
