"""Index statistics over a fully-indexed graph.

The graph itself maintains the physical indexes (label extents, reverse
adjacency / global value index, collection extents) incrementally; this
module takes *statistical snapshots* of them for two consumers:

* the STRUQL optimizer, which orders where-clause conditions by estimated
  cardinality (:class:`IndexStatistics` supplies the estimates);
* the repository catalog, which records per-graph size summaries.

The paper (section 2.1): "Without schema information, we fully index both
the schema and the data ... one index contains the names of all the
collections and attributes in the graph; other indexes contain the
extensions for each collection and attribute.  In addition, indexes on
atomic values are global to the graph."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, List, Optional, Tuple

from ..graph import Atom, Graph
from ..graph.delta import GraphDelta


@dataclass
class IndexStatistics:
    """Cardinality statistics snapshotted from a graph's indexes.

    All estimates are exact counts at snapshot time; the optimizer treats
    them as estimates because the graph may since have grown.  Snapshots
    taken from a graph are stamped with the graph's mutation ``epoch`` so
    downstream caches (plans, catalogs) can tell whether they are stale.
    """

    node_count: int = 0
    edge_count: int = 0
    label_cardinality: Dict[str, int] = field(default_factory=dict)
    collection_cardinality: Dict[str, int] = field(default_factory=dict)
    distinct_atoms: int = 0
    #: per-label count of distinct atomic targets (selectivity of value tests)
    label_distinct_values: Dict[str, int] = field(default_factory=dict)
    #: graph epoch at snapshot time (-1 for hand-built statistics)
    epoch: int = -1
    #: identity of the snapshotted graph (0 for hand-built statistics)
    graph_key: int = 0

    @classmethod
    def from_graph(cls, graph: Graph) -> "IndexStatistics":
        """Full-scan snapshot: recount everything from the raw indexes.

        O(edges) -- kept as the ground truth that :meth:`snapshot` (the
        incremental fast path) is property-tested against, and as the
        seed's cold-construction baseline in the benchmarks.
        """
        label_distinct: Dict[str, int] = {}
        for label in graph.labels():
            values = {t for _, t in graph.edges_with_label(label) if isinstance(t, Atom)}
            label_distinct[label] = len(values)
        return cls(
            node_count=graph.node_count,
            edge_count=graph.edge_count,
            label_cardinality={l: graph.label_cardinality(l) for l in graph.labels()},
            collection_cardinality={
                c: graph.collection_cardinality(c) for c in graph.collection_names()
            },
            distinct_atoms=sum(1 for _ in graph.atoms()),
            label_distinct_values=label_distinct,
            epoch=graph.epoch,
            graph_key=id(graph),
        )

    @classmethod
    def snapshot(cls, graph: Graph) -> "IndexStatistics":
        """O(labels + collections) snapshot from the graph's incremental
        counters; agrees exactly with :meth:`from_graph`."""
        labels = graph.labels()
        return cls(
            node_count=graph.node_count,
            edge_count=graph.edge_count,
            label_cardinality={l: graph.label_cardinality(l) for l in labels},
            collection_cardinality={
                c: graph.collection_cardinality(c) for c in graph.collection_names()
            },
            distinct_atoms=graph.distinct_atom_count,
            label_distinct_values={
                l: graph.label_value_cardinality(l) for l in labels
            },
            epoch=graph.epoch,
            graph_key=id(graph),
        )

    def advance(self, graph: Graph, delta: GraphDelta) -> "IndexStatistics":
        """A new snapshot derived from this one by applying a delta.

        Only the labels and collections the delta touched are re-read
        from the graph's incremental counters -- O(|delta|) work instead
        of :meth:`snapshot`'s O(labels + collections).  Agrees exactly
        with a fresh :meth:`snapshot` (property-tested).
        """
        label_cardinality = dict(self.label_cardinality)
        label_distinct = dict(self.label_distinct_values)
        for label in delta.labels():
            cardinality = graph.label_cardinality(label)
            if cardinality > 0:
                label_cardinality[label] = cardinality
                label_distinct[label] = graph.label_value_cardinality(label)
            else:
                label_cardinality.pop(label, None)
                label_distinct.pop(label, None)
        collection_cardinality = dict(self.collection_cardinality)
        for name in delta.collections():
            collection_cardinality[name] = graph.collection_cardinality(name)
        return IndexStatistics(
            node_count=graph.node_count,
            edge_count=graph.edge_count,
            label_cardinality=label_cardinality,
            collection_cardinality=collection_cardinality,
            distinct_atoms=graph.distinct_atom_count,
            label_distinct_values=label_distinct,
            epoch=graph.epoch,
            graph_key=id(graph),
        )

    def fingerprint(self) -> Tuple[int, int]:
        """Identity of this snapshot for plan-cache keys.

        Graph-stamped snapshots compare equal exactly when they describe
        the same graph at the same epoch; hand-built statistics fall back
        to object identity (never shared, never falsely equal).
        """
        if self.epoch >= 0 and self.graph_key:
            return (self.graph_key, self.epoch)
        return (id(self), -1)

    # -------------------------------------------------------------- #
    # estimates used by the optimizer

    def estimate_label_extent(self, label: str) -> int:
        """Expected number of ``(source, target)`` pairs for a known label."""
        return self.label_cardinality.get(label, 0)

    def estimate_any_label_extent(self) -> int:
        """Extent when the label is unknown (arc variable or wildcard)."""
        return self.edge_count

    def estimate_collection(self, name: str) -> int:
        """Expected membership of a collection."""
        return self.collection_cardinality.get(name, 0)

    def estimate_value_lookup(self, label: str = "") -> int:
        """Expected matches for an equality test on an atomic value.

        With a known label: extent / distinct-values (classic uniformity
        assumption); otherwise edges / distinct atoms across the graph.
        """
        if label:
            extent = self.label_cardinality.get(label, 0)
            distinct = self.label_distinct_values.get(label, 0)
            return max(1, extent // distinct) if distinct else extent
        if self.distinct_atoms:
            return max(1, self.edge_count // self.distinct_atoms)
        return self.edge_count

    def average_out_degree(self) -> float:
        """Mean out-degree, the branching factor for path expansion."""
        return self.edge_count / self.node_count if self.node_count else 0.0

    def average_in_degree(self) -> float:
        """Mean in-degree over every edge target (nodes *and* atoms) --
        the branching factor for reverse path expansion, which walks the
        reverse adjacency index."""
        targets = self.node_count + self.distinct_atoms
        return self.edge_count / targets if targets else 0.0


#: process-wide refresh counters, surfaced by ``repro stats``
_refresh_counters = {"stats_full_snapshots": 0, "stats_delta_refreshes": 0}
_refresh_counters_lock = Lock()

#: serializes snapshot refreshes (concurrent engines over shared graphs:
#: exactly one thread recomputes after a mutation, the rest reuse it)
_stats_provider_lock = Lock()


def statistics_refresh_counters() -> Dict[str, int]:
    """How statistics snapshots were refreshed so far in this process:
    ``stats_delta_refreshes`` advanced an existing snapshot by a delta
    (O(|delta|)); ``stats_full_snapshots`` re-read every counter."""
    with _refresh_counters_lock:
        return dict(_refresh_counters)


def graph_statistics(graph: Graph) -> IndexStatistics:
    """The shared, epoch-stamped statistics provider.

    Returns the graph's cached snapshot when the graph has not mutated
    since it was taken (same epoch).  After a mutation, the stale
    snapshot is *advanced* by the graph's delta log (O(|delta|), the
    common add-edge case touches one label) when the log still reaches
    back to the snapshot's epoch; only when it does not -- or no
    snapshot exists -- is a full O(labels + collections) snapshot
    taken.  Every consumer -- the query engine, EXPLAIN, the repository
    catalog -- goes through this function, so they all see the same
    estimates and an unchanged graph is never re-scanned.

    Thread-safe: the fresh-snapshot fast path is a lock-free read of an
    immutable snapshot; refreshes after a mutation are serialized, so N
    worker engines sharing a graph pay for one recount, not N.
    """
    cached = graph._stats_cache
    if isinstance(cached, IndexStatistics) and cached.epoch == graph.epoch:
        return cached
    with _stats_provider_lock:
        # re-check: another thread may have refreshed while we waited
        cached = graph._stats_cache
        if isinstance(cached, IndexStatistics) and cached.epoch == graph.epoch:
            return cached
        stats: Optional[IndexStatistics] = None
        if isinstance(cached, IndexStatistics) and cached.graph_key == id(graph):
            delta = graph.delta_since(cached.epoch)
            if delta is not None:
                stats = cached.advance(graph, delta)
                with _refresh_counters_lock:
                    _refresh_counters["stats_delta_refreshes"] += 1
        if stats is None:
            stats = IndexStatistics.snapshot(graph)
            with _refresh_counters_lock:
                _refresh_counters["stats_full_snapshots"] += 1
        graph._stats_cache = stats
        return stats


@dataclass
class SchemaIndex:
    """The schema index: names of all collections and attributes.

    STRUQL arc variables query this ("our query language ... can also
    query the schema"), and the site builder's tooling lists it.
    """

    labels: List[str]
    collections: List[str]

    @classmethod
    def from_graph(cls, graph: Graph) -> "SchemaIndex":
        return cls(labels=graph.labels(), collections=graph.collection_names())

    def advanced(self, delta: GraphDelta) -> Optional["SchemaIndex"]:
        """A new index patched by an additions-only delta, or ``None``.

        Edge/node/membership removals can retire a label from the
        schema, which would require consulting the graph to know -- in
        that case return ``None`` and let the caller rebuild.  Additions
        are replayed in mutation order, so the name lists match
        :meth:`from_graph` exactly (including order).
        """
        if delta.has_removals:
            return None
        known_labels = set(self.labels)
        labels = list(self.labels)
        for _, label, _ in delta.edges_added:
            if label not in known_labels:
                known_labels.add(label)
                labels.append(label)
        known_collections = set(self.collections)
        collections = list(self.collections)
        for name in delta.collections_created:
            if name not in known_collections:
                known_collections.add(name)
                collections.append(name)
        return SchemaIndex(labels=labels, collections=collections)

    def has_label(self, label: str) -> bool:
        return label in self.labels

    def has_collection(self, name: str) -> bool:
        return name in self.collections
