"""SQLite edge-triple storage backend behind the Repository interface.

The in-memory :class:`~repro.graph.Graph` holds the whole data graph in
RAM -- the scalability ceiling the paper's section 7 names.  This module
stores the same model in SQLite: an edge-triple schema (``nodes``,
``edges``, ``atoms``) with the label / collection / value indexes the
paper insists on realized as real SQL indexes, WAL journaling, and a
bulk-load path.  :class:`SqlGraph` exposes the full ``Graph`` read/write
API over that schema -- including iteration *order*, which STRUQL binding
relations observe -- and :class:`SqlRepository` exposes the familiar
``Repository`` surface (store/fetch/delete/statistics/schema_index).

Ordering is replicated structurally rather than by sorting in Python:

* ``nodes.id`` is monotonic and rows are deleted on ``remove_node``, so
  ``ORDER BY id`` replays dict-insertion order of ``Graph._out``;
* ``egroups`` rows track the *label groups* of ``_out[source]`` -- one
  row per live ``(source, label)``, deleted when the last edge of the
  group goes, so a re-added group takes a fresh ``seq`` exactly like a
  re-inserted dict key moves to the end;
* ``labels`` / ``label_values`` / ``collections`` rows mirror the
  lives-while-nonempty dicts ``_by_label`` / ``_label_values`` /
  ``_collections``;
* ``atoms.seq`` is assigned when an atom gains its first incoming edge
  and cleared at zero references, replaying the ``_in``-key order that
  ``Graph.atoms()`` iterates.

The delta log is journaled into a SQLite table (``journal``), so edits
are durable for free; :meth:`SqlGraph.delta_since` honours the same
bounded-history ``None`` contract as :class:`~repro.graph.DeltaLog`.

``atom_probes`` materializes :func:`~repro.graph.values.coercion_probes`
for every stored atom so the compiled-SQL evaluator can resolve coercing
equality probes with a join instead of a per-row Python callback.
"""

from __future__ import annotations

import os
import sqlite3
import sys
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..errors import (
    DeadlineExceeded,
    GraphError,
    RepositoryCorruptionError,
    RepositoryError,
    UnknownObjectError,
)
from ..resilience.chaos import maybe_fail
from ..resilience.deadline import current_deadline
from ..resilience.report import record_recovery_event
from ..graph import (
    Atom,
    AtomType,
    Graph,
    Oid,
    OidAllocator,
    SkolemRegistry,
    coercion_probes,
    from_python,
)
from ..graph.delta import (
    _COLLECTION_CREATE,
    _EDGE_ADD,
    _EDGE_REMOVE,
    _MEMBER_ADD,
    _MEMBER_REMOVE,
    _NODE_ADD,
    _NODE_REMOVE,
    GraphDelta,
)
from . import ddl
from .atomic import atomic_write_text
from .indexes import IndexStatistics, SchemaIndex, graph_statistics

Target = Union[Oid, Atom]

#: Default database filename inside a repository directory.
REPOSITORY_FILENAME = "repository.sqlite"

#: Journal ring bound, mirroring DeltaLog(maxlen=4096).
JOURNAL_MAXLEN = 4096

#: How many epochs between journal-prune checks (the prune itself is
#: exact; only the check is amortized).
_PRUNE_INTERVAL = 256

#: Cap on the name->id lookup caches before they are dropped wholesale.
_CACHE_CAP = 65536

_SCHEMA = """
CREATE TABLE IF NOT EXISTS graphs(
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT NOT NULL UNIQUE,
    epoch INTEGER NOT NULL DEFAULT 0,
    node_count INTEGER NOT NULL DEFAULT 0,
    edge_count INTEGER NOT NULL DEFAULT 0,
    atoms_live INTEGER NOT NULL DEFAULT 0,
    journal_floor INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS nodes(
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    name TEXT NOT NULL,
    UNIQUE(graph, name)
);
CREATE TABLE IF NOT EXISTS atoms(
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    typ TEXT NOT NULL,
    val TEXT NOT NULL,
    str TEXT NOT NULL,
    num NUMERIC,
    refs INTEGER NOT NULL DEFAULT 0,
    seq INTEGER,
    UNIQUE(graph, typ, val)
);
CREATE INDEX IF NOT EXISTS idx_atoms_num ON atoms(graph, num);
CREATE INDEX IF NOT EXISTS idx_atoms_str ON atoms(graph, str);
CREATE INDEX IF NOT EXISTS idx_atoms_seq ON atoms(graph, seq);
CREATE TABLE IF NOT EXISTS edges(
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    src INTEGER NOT NULL,
    label TEXT NOT NULL,
    tgt_node INTEGER,
    tgt_atom INTEGER
);
CREATE INDEX IF NOT EXISTS idx_edges_src ON edges(graph, src, label);
CREATE INDEX IF NOT EXISTS idx_edges_label ON edges(graph, label);
CREATE INDEX IF NOT EXISTS idx_edges_tnode ON edges(graph, tgt_node);
CREATE INDEX IF NOT EXISTS idx_edges_tatom ON edges(graph, tgt_atom);
CREATE TABLE IF NOT EXISTS egroups(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    src INTEGER NOT NULL,
    label TEXT NOT NULL,
    UNIQUE(graph, src, label)
);
CREATE TABLE IF NOT EXISTS labels(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    label TEXT NOT NULL,
    count INTEGER NOT NULL DEFAULT 0,
    distinct_values INTEGER NOT NULL DEFAULT 0,
    UNIQUE(graph, label)
);
CREATE TABLE IF NOT EXISTS label_values(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    label TEXT NOT NULL,
    atom INTEGER NOT NULL,
    count INTEGER NOT NULL DEFAULT 0,
    UNIQUE(graph, label, atom)
);
CREATE TABLE IF NOT EXISTS collections(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    name TEXT NOT NULL,
    count INTEGER NOT NULL DEFAULT 0,
    UNIQUE(graph, name)
);
CREATE TABLE IF NOT EXISTS members(
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    collection TEXT NOT NULL,
    node INTEGER NOT NULL,
    UNIQUE(graph, collection, node)
);
CREATE INDEX IF NOT EXISTS idx_members_node ON members(graph, node);
CREATE TABLE IF NOT EXISTS atom_probes(
    graph INTEGER NOT NULL,
    atom INTEGER NOT NULL,
    probe INTEGER NOT NULL,
    rank INTEGER NOT NULL,
    PRIMARY KEY(graph, atom, rank)
);
CREATE INDEX IF NOT EXISTS idx_probes_probe ON atom_probes(graph, probe);
CREATE TABLE IF NOT EXISTS journal(
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    graph INTEGER NOT NULL,
    epoch INTEGER NOT NULL,
    kind INTEGER NOT NULL,
    a TEXT, b TEXT, c TEXT
);
CREATE INDEX IF NOT EXISTS idx_journal ON journal(graph, epoch);
"""

#: Tables carrying per-graph rows, in truncation order.
_GRAPH_TABLES = (
    "nodes", "atoms", "edges", "egroups", "labels",
    "label_values", "collections", "members", "atom_probes", "journal",
)


# ------------------------------------------------------------------ #
# value encoding


def atom_val(atom: Atom) -> str:
    """Canonical payload text for the ``atoms.val`` column (injective
    per type, so UNIQUE(graph, typ, val) is exactly Atom equality)."""
    if atom.type is AtomType.INTEGER:
        return str(int(atom.value))
    if atom.type is AtomType.FLOAT:
        return repr(float(atom.value))
    if atom.type is AtomType.BOOLEAN:
        return "true" if atom.value else "false"
    return str(atom.value)


def decode_atom(typ: str, val: str) -> Atom:
    atom_type = AtomType(typ)
    if atom_type is AtomType.INTEGER:
        return Atom(atom_type, int(val))
    if atom_type is AtomType.FLOAT:
        return Atom(atom_type, float(val))
    if atom_type is AtomType.BOOLEAN:
        return Atom(atom_type, val == "true")
    return Atom(atom_type, val)


def atom_num(atom: Atom) -> Optional[float]:
    """``as_number()`` guarded for huge-int payloads SQLite can't hold."""
    try:
        return atom.as_number()
    except OverflowError:
        return None


def _encode(value: object) -> Optional[str]:
    """Journal-column encoding of an Oid / Atom / label string."""
    if value is None:
        return None
    if isinstance(value, Oid):
        return "o" + value.name
    if isinstance(value, Atom):
        return "a" + value.type.value + "\x1f" + atom_val(value)
    return "s" + str(value)


def _decode(text: Optional[str]) -> object:
    if text is None:
        return None
    tag, rest = text[0], text[1:]
    if tag == "o":
        return Oid(rest)
    if tag == "a":
        typ, val = rest.split("\x1f", 1)
        return decode_atom(typ, val)
    return rest


# ------------------------------------------------------------------ #
# connection wrapper


#: VDBE opcodes between progress-handler invocations.  Small enough to
#: notice an expired deadline within a few milliseconds of CTE work,
#: large enough that the callback cost is noise.
_PROGRESS_OPCODES = 4000


class SqlStore:
    """One SQLite connection (WAL, explicit transactions) plus a lock.

    All statements run under an RLock so the serving tier's worker
    threads can read one store concurrently; :meth:`batch` groups the
    multi-statement graph mutations into a single transaction (nested
    batches join the outermost one).

    Long statements are cancellable two ways: :meth:`query_named` (the
    pushdown path -- the only place a single statement can run
    unboundedly long, e.g. a ``WITH RECURSIVE`` CTE over a cyclic star
    path) arms a progress handler against the ambient request deadline,
    and :meth:`interrupt` lets a watchdog abort whatever statement the
    connection is running from another thread.  Both surface as
    :class:`~repro.errors.DeadlineExceeded`, never a raw sqlite error.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA temp_store=MEMORY")
        self._depth = 0
        #: statements aborted via interrupt()/progress handler
        self.interrupts = 0
        with self._lock:
            self._conn.executescript(_SCHEMA)

    def _map_interrupt(self, error: sqlite3.Error, site: str) -> None:
        """Re-raise an interrupted statement as DeadlineExceeded."""
        if "interrupt" not in str(error).lower():
            raise error
        self.interrupts += 1
        deadline = current_deadline()
        if deadline is not None:
            raise DeadlineExceeded(
                deadline.budget, deadline.elapsed(), site
            ) from error
        # interrupted from outside any deadline scope (watchdog on a
        # stuck statement): still a structured cancellation
        raise DeadlineExceeded(0.0, 0.0, site) from error

    def execute(self, sql: str, params: Iterable[object] = ()) -> sqlite3.Cursor:
        with self._lock:
            try:
                return self._conn.execute(sql, tuple(params))
            except sqlite3.OperationalError as error:
                self._map_interrupt(error, "sql.execute")

    def executemany(self, sql: str, rows: Iterable[Tuple]) -> None:
        with self._lock:
            self._conn.executemany(sql, rows)

    def query(self, sql: str, params: Iterable[object] = ()) -> List[Tuple]:
        with self._lock:
            try:
                return self._conn.execute(sql, tuple(params)).fetchall()
            except sqlite3.OperationalError as error:
                self._map_interrupt(error, "sql.query")

    def query_named(self, sql: str, params: Dict[str, object]) -> List[Tuple]:
        with self._lock:
            deadline = current_deadline()
            if deadline is None:
                try:
                    return self._conn.execute(sql, params).fetchall()
                except sqlite3.OperationalError as error:
                    self._map_interrupt(error, "sql.pushdown")
            # progress handler returning nonzero aborts the statement
            # with OperationalError("interrupted"); the callback must
            # not raise through the C layer, so it only reads the clock
            self._conn.set_progress_handler(
                lambda: 1 if deadline.expired() else 0, _PROGRESS_OPCODES
            )
            try:
                return self._conn.execute(sql, params).fetchall()
            except sqlite3.OperationalError as error:
                self._map_interrupt(error, "sql.pushdown")
            finally:
                self._conn.set_progress_handler(None, 0)

    def interrupt(self) -> None:
        """Abort the statement currently running on this connection.

        Deliberately does NOT take the store lock: the caller (the
        watchdog) is trying to break a statement that is *holding* it.
        ``sqlite3.Connection.interrupt`` is documented safe to call
        from another thread.
        """
        self._conn.interrupt()

    def scalar(self, sql: str, params: Iterable[object] = ()) -> Optional[object]:
        rows = self.query(sql, params)
        return rows[0][0] if rows else None

    def integrity_check(self, quick: bool = True) -> List[str]:
        """Corruption findings (``[]`` means the database is sound)."""
        pragma = "quick_check" if quick else "integrity_check"
        try:
            rows = self.query(f"PRAGMA {pragma}")
        except sqlite3.DatabaseError as error:
            return [str(error)]
        findings = [str(row[0]) for row in rows]
        return [] if findings == ["ok"] else findings

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Group statements into one transaction; reentrant."""
        with self._lock:
            if self._depth == 0:
                self._conn.execute("BEGIN IMMEDIATE")
            self._depth += 1
            try:
                yield
            except BaseException:
                self._depth -= 1
                if self._depth == 0:
                    self._conn.execute("ROLLBACK")
                raise
            else:
                self._depth -= 1
                if self._depth == 0:
                    # fault sites for the chaos harness: a crash before
                    # COMMIT must leave the previous generation intact
                    # (so the transaction is rolled back, not leaked);
                    # a crash after (the "fsync window") leaves the new
                    # generation fully committed
                    try:
                        maybe_fail("sql.commit")
                    except BaseException:
                        self._conn.execute("ROLLBACK")
                        raise
                    self._conn.execute("COMMIT")
                    maybe_fail("sql.fsync")

    def file_size(self) -> int:
        """Bytes on disk (main database + WAL), 0 for :memory:."""
        if self.path == ":memory:":
            return 0
        total = 0
        for suffix in ("", "-wal"):
            candidate = self.path + suffix
            if os.path.exists(candidate):
                total += os.path.getsize(candidate)
        return total

    def table_counts(self) -> Dict[str, int]:
        """Per-table row counts (the `repro stats` index report)."""
        counts = {}
        for table in ("graphs",) + _GRAPH_TABLES:
            counts[table] = int(self.scalar(f"SELECT COUNT(*) FROM {table}") or 0)
        return counts

    def close(self) -> None:
        with self._lock:
            self._conn.close()


# ------------------------------------------------------------------ #
# the graph adapter


class SqlGraph:
    """The full :class:`~repro.graph.Graph` API over the SQLite schema.

    Semantics -- including iteration order, duplicate-edge no-ops, error
    types, and epoch/delta bookkeeping -- mirror the in-memory graph
    method by method; the hypothesis suite in ``tests/test_sql_backend``
    replays identical mutation scripts against both and compares binding
    relations row-for-row.

    One writer per graph at a time is assumed (as with the in-memory
    graph); reads are thread-safe through the store lock.  The oid
    allocator and Skolem registry are session-local, like a graph loaded
    from DDL: the allocator is re-seeded from the highest stored
    anonymous oid on open.
    """

    backend = "sqlite"

    def __init__(self, store: SqlStore, graph_id: int, name: str) -> None:
        self._store = store
        self._graph_id = graph_id
        self.name = name
        #: epoch-stamped IndexStatistics snapshot, owned by repository.indexes
        self._stats_cache: Optional[object] = None
        self.allocator = OidAllocator()
        self.skolems = SkolemRegistry()
        # id->object caches never go stale (AUTOINCREMENT ids are not
        # reused); name->id caches are invalidated by the mutators.
        self._oid_of_id: Dict[int, Oid] = {}
        self._atom_of_id: Dict[int, Atom] = {}
        self._id_of_name: Dict[str, int] = {}
        self._id_of_atom: Dict[Tuple[str, str], int] = {}
        self.allocator.reserve_past(self._max_anonymous())

    # -------------------------------------------------------------- #
    # store plumbing

    def _ex(self, sql: str, params: Iterable[object] = ()) -> sqlite3.Cursor:
        return self._store.execute(sql, params)

    def _q(self, sql: str, params: Iterable[object] = ()) -> List[Tuple]:
        return self._store.query(sql, params)

    def _s(self, sql: str, params: Iterable[object] = ()) -> Optional[object]:
        return self._store.scalar(sql, params)

    def _state(self, column: str) -> int:
        value = self._s(
            f"SELECT {column} FROM graphs WHERE id=?", (self._graph_id,)
        )
        return int(value or 0)

    def _reset_caches(self) -> None:
        self._stats_cache = None
        self._oid_of_id.clear()
        self._atom_of_id.clear()
        self._id_of_name.clear()
        self._id_of_atom.clear()

    def _oid(self, node_id: int, name: str) -> Oid:
        cached = self._oid_of_id.get(node_id)
        if cached is None:
            cached = Oid(name)
            if len(self._oid_of_id) > _CACHE_CAP:
                self._oid_of_id.clear()
            self._oid_of_id[node_id] = cached
        return cached

    def _atom(self, atom_id: int, typ: str, val: str) -> Atom:
        cached = self._atom_of_id.get(atom_id)
        if cached is None:
            cached = decode_atom(typ, val)
            if len(self._atom_of_id) > _CACHE_CAP:
                self._atom_of_id.clear()
            self._atom_of_id[atom_id] = cached
        return cached

    def _target(
        self,
        tgt_node: Optional[int],
        tgt_atom: Optional[int],
        node_name: Optional[str],
        atom_typ: Optional[str],
        atom_val: Optional[str],
    ) -> Target:
        if tgt_node is not None:
            return self._oid(tgt_node, node_name or "")
        assert tgt_atom is not None
        return self._atom(tgt_atom, atom_typ or "", atom_val or "")

    def _node_id(self, oid: object) -> Optional[int]:
        if not isinstance(oid, Oid):
            return None
        cached = self._id_of_name.get(oid.name)
        if cached is not None:
            return cached
        found = self._s(
            "SELECT id FROM nodes WHERE graph=? AND name=?",
            (self._graph_id, oid.name),
        )
        if found is not None:
            if len(self._id_of_name) > _CACHE_CAP:
                self._id_of_name.clear()
            self._id_of_name[oid.name] = int(found)
            self._oid_of_id.setdefault(int(found), oid)
            return int(found)
        return None

    def _atom_id(self, atom: Atom) -> Optional[int]:
        key = (atom.type.value, atom_val(atom))
        cached = self._id_of_atom.get(key)
        if cached is not None:
            return cached
        found = self._s(
            "SELECT id FROM atoms WHERE graph=? AND typ=? AND val=?",
            (self._graph_id,) + key,
        )
        if found is not None:
            if len(self._id_of_atom) > _CACHE_CAP:
                self._id_of_atom.clear()
            self._id_of_atom[key] = int(found)
            self._atom_of_id.setdefault(int(found), atom)
            return int(found)
        return None

    def resolve_nodes(self, ids: Iterable[int]) -> Dict[int, Oid]:
        """Batch-decode node row ids to oids (the SQL compiler's result
        decoder calls this once per fetched column, not once per row)."""
        out: Dict[int, Oid] = {}
        missing: List[int] = []
        for node_id in ids:
            cached = self._oid_of_id.get(node_id)
            if cached is None:
                missing.append(node_id)
            else:
                out[node_id] = cached
        for start in range(0, len(missing), 500):
            chunk = missing[start:start + 500]
            marks = ",".join("?" * len(chunk))
            for node_id, name in self._q(
                f"SELECT id, name FROM nodes WHERE id IN ({marks})", chunk
            ):
                out[node_id] = self._oid(node_id, name)
        return out

    def resolve_atoms(self, ids: Iterable[int]) -> Dict[int, Atom]:
        """Batch-decode atom row ids, mirroring :meth:`resolve_nodes`."""
        out: Dict[int, Atom] = {}
        missing: List[int] = []
        for atom_id in ids:
            cached = self._atom_of_id.get(atom_id)
            if cached is None:
                missing.append(atom_id)
            else:
                out[atom_id] = cached
        for start in range(0, len(missing), 500):
            chunk = missing[start:start + 500]
            marks = ",".join("?" * len(chunk))
            for atom_id, typ, val in self._q(
                f"SELECT id, typ, val FROM atoms WHERE id IN ({marks})", chunk
            ):
                out[atom_id] = self._atom(atom_id, typ, val)
        return out

    def _bump(self) -> int:
        self._ex(
            "UPDATE graphs SET epoch=epoch+1 WHERE id=?", (self._graph_id,)
        )
        return self._state("epoch")

    def _journal(
        self,
        epoch: int,
        kind: int,
        a: object = None,
        b: object = None,
        c: object = None,
    ) -> None:
        self._ex(
            "INSERT INTO journal(graph,epoch,kind,a,b,c) VALUES(?,?,?,?,?,?)",
            (self._graph_id, epoch, kind, _encode(a), _encode(b), _encode(c)),
        )
        if epoch % _PRUNE_INTERVAL == 0:
            self._prune_journal()

    def _prune_journal(self) -> None:
        total = int(
            self._s(
                "SELECT COUNT(*) FROM journal WHERE graph=?", (self._graph_id,)
            )
            or 0
        )
        if total <= JOURNAL_MAXLEN:
            return
        rows = self._q(
            "SELECT id, epoch FROM journal WHERE graph=? ORDER BY id LIMIT ?",
            (self._graph_id, total - JOURNAL_MAXLEN),
        )
        last_id, floor_epoch = rows[-1]
        self._ex(
            "DELETE FROM journal WHERE graph=? AND id<=?",
            (self._graph_id, last_id),
        )
        self._ex(
            "UPDATE graphs SET journal_floor=MAX(journal_floor, ?) WHERE id=?",
            (floor_epoch, self._graph_id),
        )

    # -------------------------------------------------------------- #
    # epochs and deltas

    @property
    def epoch(self) -> int:
        return self._state("epoch")

    def delta_since(self, epoch: int) -> Optional[GraphDelta]:
        """Everything that changed after ``epoch``, or ``None`` when the
        journal ring no longer reaches back that far."""
        row = self._q(
            "SELECT journal_floor, epoch FROM graphs WHERE id=?",
            (self._graph_id,),
        )
        floor, current = row[0]
        if epoch < floor:
            return None
        delta = GraphDelta(epoch, current)
        records = self._q(
            "SELECT epoch, kind, a, b, c FROM journal"
            " WHERE graph=? AND epoch>? ORDER BY id",
            (self._graph_id, epoch),
        )
        for _, kind, a, b, c in records:
            if kind == _EDGE_ADD:
                delta.edges_added.append((_decode(a), _decode(b), _decode(c)))
            elif kind == _EDGE_REMOVE:
                delta.edges_removed.append((_decode(a), _decode(b), _decode(c)))
            elif kind == _NODE_ADD:
                delta.nodes_added.append(_decode(a))
            elif kind == _NODE_REMOVE:
                delta.nodes_removed.append(_decode(a))
            elif kind == _MEMBER_ADD:
                delta.members_added.append((_decode(a), _decode(b)))
            elif kind == _MEMBER_REMOVE:
                delta.members_removed.append((_decode(a), _decode(b)))
            elif kind == _COLLECTION_CREATE:
                delta.collections_created.append(_decode(a))
        return delta

    # -------------------------------------------------------------- #
    # nodes

    def add_node(self, oid: Optional[Oid] = None, hint: str = "") -> Oid:
        if oid is None:
            oid = self.allocator.fresh(hint)
        with self._store.batch():
            if self._node_id(oid) is None:
                cursor = self._ex(
                    "INSERT INTO nodes(graph,name) VALUES(?,?)",
                    (self._graph_id, oid.name),
                )
                node_id = int(cursor.lastrowid)
                self._id_of_name[oid.name] = node_id
                self._oid_of_id[node_id] = oid
                self._ex(
                    "UPDATE graphs SET node_count=node_count+1 WHERE id=?",
                    (self._graph_id,),
                )
                epoch = self._bump()
                self._journal(epoch, _NODE_ADD, oid)
        return oid

    def skolem(self, function: str, *args: object) -> Oid:
        wrapped = tuple(
            a if isinstance(a, Oid) else from_python(a) for a in args
        )
        oid = self.skolems.apply(function, wrapped)
        return self.add_node(oid)

    def has_node(self, oid: Oid) -> bool:
        return self._node_id(oid) is not None

    def nodes(self) -> Iterator[Oid]:
        for node_id, name in self._q(
            "SELECT id, name FROM nodes WHERE graph=? ORDER BY id",
            (self._graph_id,),
        ):
            yield self._oid(node_id, name)

    @property
    def node_count(self) -> int:
        return self._state("node_count")

    def remove_node(self, oid: Oid) -> None:
        if not self.has_node(oid):
            raise UnknownObjectError(oid)
        with self._store.batch():
            for label, target in list(self.out_edges(oid)):
                self.remove_edge(oid, label, target)
            for source, label in list(self.in_edges(oid)):
                self.remove_edge(source, label, oid)
            node_id = self._node_id(oid)
            dropped_from = [
                name
                for (name,) in self._q(
                    "SELECT c.name FROM collections c JOIN members m"
                    " ON m.graph=c.graph AND m.collection=c.name AND m.node=?"
                    " WHERE c.graph=? ORDER BY c.seq",
                    (node_id, self._graph_id),
                )
            ]
            for name in dropped_from:
                self._ex(
                    "DELETE FROM members WHERE graph=? AND collection=? AND node=?",
                    (self._graph_id, name, node_id),
                )
                self._ex(
                    "UPDATE collections SET count=count-1 WHERE graph=? AND name=?",
                    (self._graph_id, name),
                )
            self._ex("DELETE FROM nodes WHERE id=?", (node_id,))
            self._id_of_name.pop(oid.name, None)
            self._oid_of_id.pop(node_id, None)
            self._ex(
                "UPDATE graphs SET node_count=node_count-1 WHERE id=?",
                (self._graph_id,),
            )
            epoch = self._bump()
            self._journal(epoch, _NODE_REMOVE, oid)
            for name in dropped_from:
                self._journal(epoch, _MEMBER_REMOVE, name, oid)

    # -------------------------------------------------------------- #
    # edges

    def add_edge(self, source: Oid, label: str, target: object) -> Target:
        with self._store.batch():
            src_id = self._node_id(source)
            if src_id is None:
                raise UnknownObjectError(source)
            if isinstance(target, Oid):
                stored: Target = target
                tgt_id = self._node_id(target)
                if tgt_id is None:
                    raise UnknownObjectError(target)
            elif isinstance(target, Atom):
                stored = target
            else:
                stored = from_python(target)
            if not isinstance(label, str) or not label:
                raise GraphError(
                    f"edge label must be a non-empty string, got {label!r}"
                )
            label = sys.intern(label)

            if isinstance(stored, Oid):
                if self._s(
                    "SELECT 1 FROM edges WHERE graph=? AND src=? AND label=?"
                    " AND tgt_node=? LIMIT 1",
                    (self._graph_id, src_id, label, tgt_id),
                ):
                    return stored
                atom_id: Optional[int] = None
            else:
                atom_id = self._atom_id(stored)
                if atom_id is not None and self._s(
                    "SELECT 1 FROM edges WHERE graph=? AND src=? AND label=?"
                    " AND tgt_atom=? LIMIT 1",
                    (self._graph_id, src_id, label, atom_id),
                ):
                    return stored
                if atom_id is None:
                    atom_id = self._create_atom(stored)

            self._ex(
                "INSERT INTO edges(graph,src,label,tgt_node,tgt_atom)"
                " VALUES(?,?,?,?,?)",
                (
                    self._graph_id,
                    src_id,
                    label,
                    tgt_id if isinstance(stored, Oid) else None,
                    None if isinstance(stored, Oid) else atom_id,
                ),
            )
            self._ex(
                "INSERT OR IGNORE INTO egroups(graph,src,label) VALUES(?,?,?)",
                (self._graph_id, src_id, label),
            )
            self._ex(
                "INSERT INTO labels(graph,label,count) VALUES(?,?,1)"
                " ON CONFLICT(graph,label) DO UPDATE SET count=count+1",
                (self._graph_id, label),
            )
            if not isinstance(stored, Oid):
                existing = self._s(
                    "SELECT count FROM label_values"
                    " WHERE graph=? AND label=? AND atom=?",
                    (self._graph_id, label, atom_id),
                )
                if existing is None:
                    self._ex(
                        "INSERT INTO label_values(graph,label,atom,count)"
                        " VALUES(?,?,?,1)",
                        (self._graph_id, label, atom_id),
                    )
                    self._ex(
                        "UPDATE labels SET distinct_values=distinct_values+1"
                        " WHERE graph=? AND label=?",
                        (self._graph_id, label),
                    )
                else:
                    self._ex(
                        "UPDATE label_values SET count=count+1"
                        " WHERE graph=? AND label=? AND atom=?",
                        (self._graph_id, label, atom_id),
                    )
                refs = int(
                    self._s("SELECT refs FROM atoms WHERE id=?", (atom_id,)) or 0
                )
                if refs == 0:
                    self._ex(
                        "UPDATE atoms SET refs=1, seq="
                        "(SELECT COALESCE(MAX(seq),0)+1 FROM atoms WHERE graph=?)"
                        " WHERE id=?",
                        (self._graph_id, atom_id),
                    )
                    self._ex(
                        "UPDATE graphs SET atoms_live=atoms_live+1 WHERE id=?",
                        (self._graph_id,),
                    )
                else:
                    self._ex(
                        "UPDATE atoms SET refs=refs+1 WHERE id=?", (atom_id,)
                    )
            self._ex(
                "UPDATE graphs SET edge_count=edge_count+1 WHERE id=?",
                (self._graph_id,),
            )
            epoch = self._bump()
            self._journal(epoch, _EDGE_ADD, source, label, stored)
            return stored

    def _create_atom(self, atom: Atom) -> int:
        key = (atom.type.value, atom_val(atom))
        cursor = self._ex(
            "INSERT INTO atoms(graph,typ,val,str,num,refs,seq)"
            " VALUES(?,?,?,?,?,0,NULL)",
            (self._graph_id, key[0], key[1], atom.as_string(), atom_num(atom)),
        )
        atom_id = int(cursor.lastrowid)
        self._id_of_atom[key] = atom_id
        self._atom_of_id[atom_id] = atom
        self._install_probes(atom, atom_id)
        return atom_id

    def _install_probes(self, atom: Atom, atom_id: int) -> None:
        """Keep ``atom_probes`` closed under the coercion-probe relation.

        Forward: record which of the new atom's probe spellings already
        exist.  Reverse: existing atoms whose probe list contains the new
        spelling gain a row too.  Candidates for the reverse pass come
        from the (num, str) indexes -- a strict superset of the real probe
        relation -- and are verified in Python against the shared
        :func:`coercion_probes` definition.
        """
        for rank, probe in enumerate(coercion_probes(atom)):
            probe_id = atom_id if probe == atom else self._atom_id(probe)
            if probe_id is not None:
                self._ex(
                    "INSERT OR IGNORE INTO atom_probes(graph,atom,probe,rank)"
                    " VALUES(?,?,?,?)",
                    (self._graph_id, atom_id, probe_id, rank),
                )
        number, text = atom_num(atom), atom.as_string()
        if number is not None:
            candidates = self._q(
                "SELECT id, typ, val FROM atoms WHERE graph=? AND id!=?"
                " AND (num=? OR str=?)",
                (self._graph_id, atom_id, number, text),
            )
        else:
            candidates = self._q(
                "SELECT id, typ, val FROM atoms WHERE graph=? AND id!=? AND str=?",
                (self._graph_id, atom_id, text),
            )
        for cand_id, cand_typ, cand_val in candidates:
            candidate = decode_atom(cand_typ, cand_val)
            for rank, probe in enumerate(coercion_probes(candidate)):
                if probe == atom:
                    self._ex(
                        "INSERT OR IGNORE INTO atom_probes(graph,atom,probe,rank)"
                        " VALUES(?,?,?,?)",
                        (self._graph_id, cand_id, atom_id, rank),
                    )
                    break

    def _find_edge(
        self, source: Oid, label: str, target: object
    ) -> Optional[Tuple[int, Optional[int]]]:
        src_id = self._node_id(source)
        if src_id is None:
            return None
        if isinstance(target, Oid):
            tgt_id = self._node_id(target)
            if tgt_id is None:
                return None
            found = self._s(
                "SELECT id FROM edges WHERE graph=? AND src=? AND label=?"
                " AND tgt_node=?",
                (self._graph_id, src_id, label, tgt_id),
            )
            return (int(found), None) if found is not None else None
        if isinstance(target, Atom):
            atom_id = self._atom_id(target)
            if atom_id is None:
                return None
            found = self._s(
                "SELECT id FROM edges WHERE graph=? AND src=? AND label=?"
                " AND tgt_atom=?",
                (self._graph_id, src_id, label, atom_id),
            )
            return (int(found), atom_id) if found is not None else None
        return None

    def remove_edge(self, source: Oid, label: str, target: Target) -> None:
        with self._store.batch():
            located = self._find_edge(source, label, target)
            if located is None:
                raise GraphError(f"no edge {source} -{label}-> {target!r}")
            edge_id, atom_id = located
            src_id = self._node_id(source)
            self._ex("DELETE FROM edges WHERE id=?", (edge_id,))
            if (
                self._s(
                    "SELECT 1 FROM edges WHERE graph=? AND src=? AND label=?"
                    " LIMIT 1",
                    (self._graph_id, src_id, label),
                )
                is None
            ):
                self._ex(
                    "DELETE FROM egroups WHERE graph=? AND src=? AND label=?",
                    (self._graph_id, src_id, label),
                )
            label_count = int(
                self._s(
                    "SELECT count FROM labels WHERE graph=? AND label=?",
                    (self._graph_id, label),
                )
                or 0
            )
            if label_count <= 1:
                self._ex(
                    "DELETE FROM labels WHERE graph=? AND label=?",
                    (self._graph_id, label),
                )
            else:
                self._ex(
                    "UPDATE labels SET count=count-1 WHERE graph=? AND label=?",
                    (self._graph_id, label),
                )
            if atom_id is not None:
                value_count = self._s(
                    "SELECT count FROM label_values"
                    " WHERE graph=? AND label=? AND atom=?",
                    (self._graph_id, label, atom_id),
                )
                if value_count is not None:
                    if int(value_count) <= 1:
                        self._ex(
                            "DELETE FROM label_values"
                            " WHERE graph=? AND label=? AND atom=?",
                            (self._graph_id, label, atom_id),
                        )
                        self._ex(
                            "UPDATE labels SET distinct_values=distinct_values-1"
                            " WHERE graph=? AND label=?",
                            (self._graph_id, label),
                        )
                    else:
                        self._ex(
                            "UPDATE label_values SET count=count-1"
                            " WHERE graph=? AND label=? AND atom=?",
                            (self._graph_id, label, atom_id),
                        )
                refs = int(
                    self._s("SELECT refs FROM atoms WHERE id=?", (atom_id,)) or 0
                )
                if refs <= 1:
                    self._ex(
                        "UPDATE atoms SET refs=0, seq=NULL WHERE id=?",
                        (atom_id,),
                    )
                    self._ex(
                        "UPDATE graphs SET atoms_live=atoms_live-1 WHERE id=?",
                        (self._graph_id,),
                    )
                else:
                    self._ex(
                        "UPDATE atoms SET refs=refs-1 WHERE id=?", (atom_id,)
                    )
            self._ex(
                "UPDATE graphs SET edge_count=edge_count-1 WHERE id=?",
                (self._graph_id,),
            )
            epoch = self._bump()
            self._journal(epoch, _EDGE_REMOVE, source, label, target)

    def has_edge(self, source: Oid, label: str, target: Target) -> bool:
        return self._find_edge(source, label, target) is not None

    def edges(self) -> Iterator[Tuple[Oid, str, Target]]:
        rows = self._q(
            "SELECT sn.name, e.label, e.tgt_node, e.tgt_atom, tn.name,"
            " ta.typ, ta.val, e.src"
            " FROM edges e"
            " JOIN egroups g ON g.graph=e.graph AND g.src=e.src AND g.label=e.label"
            " JOIN nodes sn ON sn.id=e.src"
            " LEFT JOIN nodes tn ON tn.id=e.tgt_node"
            " LEFT JOIN atoms ta ON ta.id=e.tgt_atom"
            " WHERE e.graph=? ORDER BY e.src, g.seq, e.id",
            (self._graph_id,),
        )
        for sname, label, t_node, t_atom, t_name, a_typ, a_val, src_id in rows:
            yield (
                self._oid(src_id, sname),
                sys.intern(label),
                self._target(t_node, t_atom, t_name, a_typ, a_val),
            )

    @property
    def edge_count(self) -> int:
        return self._state("edge_count")

    # -------------------------------------------------------------- #
    # navigation

    def out_edges(self, oid: Oid) -> Iterator[Tuple[str, Target]]:
        node_id = self._node_id(oid)
        if node_id is None:
            raise UnknownObjectError(oid)
        rows = self._q(
            "SELECT e.label, e.tgt_node, e.tgt_atom, tn.name, ta.typ, ta.val"
            " FROM edges e"
            " JOIN egroups g ON g.graph=e.graph AND g.src=e.src AND g.label=e.label"
            " LEFT JOIN nodes tn ON tn.id=e.tgt_node"
            " LEFT JOIN atoms ta ON ta.id=e.tgt_atom"
            " WHERE e.graph=? AND e.src=? ORDER BY g.seq, e.id",
            (self._graph_id, node_id),
        )
        for label, t_node, t_atom, t_name, a_typ, a_val in rows:
            yield sys.intern(label), self._target(
                t_node, t_atom, t_name, a_typ, a_val
            )

    def labels_of(self, oid: Oid) -> List[str]:
        node_id = self._node_id(oid)
        if node_id is None:
            raise UnknownObjectError(oid)
        return [
            sys.intern(label)
            for (label,) in self._q(
                "SELECT label FROM egroups WHERE graph=? AND src=? ORDER BY seq",
                (self._graph_id, node_id),
            )
        ]

    def targets(self, oid: Oid, label: str) -> List[Target]:
        node_id = self._node_id(oid)
        if node_id is None:
            raise UnknownObjectError(oid)
        rows = self._q(
            "SELECT e.tgt_node, e.tgt_atom, tn.name, ta.typ, ta.val"
            " FROM edges e"
            " LEFT JOIN nodes tn ON tn.id=e.tgt_node"
            " LEFT JOIN atoms ta ON ta.id=e.tgt_atom"
            " WHERE e.graph=? AND e.src=? AND e.label=? ORDER BY e.id",
            (self._graph_id, node_id, label),
        )
        return [self._target(*row) for row in rows]

    def attribute(self, oid: Oid, label: str) -> Optional[Target]:
        node_id = self._node_id(oid)
        if node_id is None:
            return None
        rows = self._q(
            "SELECT e.tgt_node, e.tgt_atom, tn.name, ta.typ, ta.val"
            " FROM edges e"
            " LEFT JOIN nodes tn ON tn.id=e.tgt_node"
            " LEFT JOIN atoms ta ON ta.id=e.tgt_atom"
            " WHERE e.graph=? AND e.src=? AND e.label=? ORDER BY e.id LIMIT 1",
            (self._graph_id, node_id, label),
        )
        return self._target(*rows[0]) if rows else None

    def in_edges(self, target: Target) -> Iterator[Tuple[Oid, str]]:
        if isinstance(target, Oid):
            ref_id = self._node_id(target)
            column = "tgt_node"
        elif isinstance(target, Atom):
            ref_id = self._atom_id(target)
            column = "tgt_atom"
        else:
            return iter(())
        if ref_id is None:
            return iter(())
        rows = self._q(
            "SELECT n.name, e.label, e.src FROM edges e JOIN nodes n ON n.id=e.src"
            f" WHERE e.graph=? AND e.{column}=? ORDER BY e.id",
            (self._graph_id, ref_id),
        )
        return iter(
            [
                (self._oid(src_id, name), sys.intern(label))
                for name, label, src_id in rows
            ]
        )

    def edges_with_label(self, label: str) -> Iterator[Tuple[Oid, Target]]:
        rows = self._q(
            "SELECT sn.name, e.src, e.tgt_node, e.tgt_atom, tn.name,"
            " ta.typ, ta.val"
            " FROM edges e JOIN nodes sn ON sn.id=e.src"
            " LEFT JOIN nodes tn ON tn.id=e.tgt_node"
            " LEFT JOIN atoms ta ON ta.id=e.tgt_atom"
            " WHERE e.graph=? AND e.label=? ORDER BY e.id",
            (self._graph_id, label),
        )
        for sname, src_id, t_node, t_atom, t_name, a_typ, a_val in rows:
            yield self._oid(src_id, sname), self._target(
                t_node, t_atom, t_name, a_typ, a_val
            )

    def labels(self) -> List[str]:
        return [
            sys.intern(label)
            for (label,) in self._q(
                "SELECT label FROM labels WHERE graph=? ORDER BY seq",
                (self._graph_id,),
            )
        ]

    def label_cardinality(self, label: str) -> int:
        return int(
            self._s(
                "SELECT count FROM labels WHERE graph=? AND label=?",
                (self._graph_id, label),
            )
            or 0
        )

    def label_value_cardinality(self, label: str) -> int:
        return int(
            self._s(
                "SELECT distinct_values FROM labels WHERE graph=? AND label=?",
                (self._graph_id, label),
            )
            or 0
        )

    def label_atoms(self, label: str) -> Iterator[Tuple[Atom, int]]:
        rows = self._q(
            "SELECT lv.atom, a.typ, a.val, lv.count"
            " FROM label_values lv JOIN atoms a ON a.id=lv.atom"
            " WHERE lv.graph=? AND lv.label=? ORDER BY lv.seq",
            (self._graph_id, label),
        )
        for atom_id, typ, val, count in rows:
            yield self._atom(atom_id, typ, val), int(count)

    @property
    def distinct_atom_count(self) -> int:
        return self._state("atoms_live")

    def atoms(self) -> Iterator[Atom]:
        for atom_id, typ, val in self._q(
            "SELECT id, typ, val FROM atoms WHERE graph=? AND seq IS NOT NULL"
            " ORDER BY seq",
            (self._graph_id,),
        ):
            yield self._atom(atom_id, typ, val)

    def sources_of_value(self, atom: Atom) -> Iterator[Tuple[Oid, str]]:
        atom_id = self._atom_id(atom) if isinstance(atom, Atom) else None
        if atom_id is None:
            return iter(())
        rows = self._q(
            "SELECT n.name, e.label, e.src FROM edges e JOIN nodes n ON n.id=e.src"
            " WHERE e.graph=? AND e.tgt_atom=? ORDER BY e.id",
            (self._graph_id, atom_id),
        )
        return iter(
            [
                (self._oid(src_id, name), sys.intern(label))
                for name, label, src_id in rows
            ]
        )

    def reachable(
        self,
        start: Oid,
        via: Optional[Set[str]] = None,
        include_atoms: bool = False,
    ) -> List[Target]:
        if not self.has_node(start):
            raise UnknownObjectError(start)
        seen: Dict[Target, None] = {start: None}
        queue: List[Oid] = [start]
        while queue:
            current = queue.pop(0)
            for label, target in self.out_edges(current):
                if via is not None and label not in via:
                    continue
                if target in seen:
                    continue
                seen[target] = None
                if isinstance(target, Oid):
                    queue.append(target)
        if include_atoms:
            return list(seen)
        return [t for t in seen if isinstance(t, Oid)]

    # -------------------------------------------------------------- #
    # collections

    def create_collection(self, name: str) -> None:
        with self._store.batch():
            if (
                self._s(
                    "SELECT 1 FROM collections WHERE graph=? AND name=?",
                    (self._graph_id, name),
                )
                is None
            ):
                self._ex(
                    "INSERT INTO collections(graph,name,count) VALUES(?,?,0)",
                    (self._graph_id, name),
                )
                epoch = self._bump()
                self._journal(epoch, _COLLECTION_CREATE, name)

    def add_to_collection(self, name: str, oid: Oid) -> None:
        with self._store.batch():
            node_id = self._node_id(oid)
            if node_id is None:
                raise UnknownObjectError(oid)
            self.create_collection(name)
            if (
                self._s(
                    "SELECT 1 FROM members WHERE graph=? AND collection=?"
                    " AND node=?",
                    (self._graph_id, name, node_id),
                )
                is None
            ):
                self._ex(
                    "INSERT INTO members(graph,collection,node) VALUES(?,?,?)",
                    (self._graph_id, name, node_id),
                )
                self._ex(
                    "UPDATE collections SET count=count+1 WHERE graph=? AND name=?",
                    (self._graph_id, name),
                )
                epoch = self._bump()
                self._journal(epoch, _MEMBER_ADD, name, oid)

    def remove_from_collection(self, name: str, oid: Oid) -> None:
        with self._store.batch():
            node_id = self._node_id(oid)
            present = (
                None
                if node_id is None
                else self._s(
                    "SELECT 1 FROM members WHERE graph=? AND collection=?"
                    " AND node=?",
                    (self._graph_id, name, node_id),
                )
            )
            if present is None:
                raise GraphError(f"{oid} is not in collection {name!r}")
            self._ex(
                "DELETE FROM members WHERE graph=? AND collection=? AND node=?",
                (self._graph_id, name, node_id),
            )
            self._ex(
                "UPDATE collections SET count=count-1 WHERE graph=? AND name=?",
                (self._graph_id, name),
            )
            epoch = self._bump()
            self._journal(epoch, _MEMBER_REMOVE, name, oid)

    def collection(self, name: str) -> List[Oid]:
        return [
            self._oid(node_id, node_name)
            for node_name, node_id in self._q(
                "SELECT n.name, n.id FROM members m JOIN nodes n ON n.id=m.node"
                " WHERE m.graph=? AND m.collection=? ORDER BY m.id",
                (self._graph_id, name),
            )
        ]

    def has_collection(self, name: str) -> bool:
        return (
            self._s(
                "SELECT 1 FROM collections WHERE graph=? AND name=?",
                (self._graph_id, name),
            )
            is not None
        )

    def in_collection(self, name: str, oid: Oid) -> bool:
        node_id = self._node_id(oid)
        if node_id is None:
            return False
        return (
            self._s(
                "SELECT 1 FROM members WHERE graph=? AND collection=? AND node=?",
                (self._graph_id, name, node_id),
            )
            is not None
        )

    def collection_names(self) -> List[str]:
        return [
            name
            for (name,) in self._q(
                "SELECT name FROM collections WHERE graph=? ORDER BY seq",
                (self._graph_id,),
            )
        ]

    def collections_of(self, oid: Oid) -> List[str]:
        node_id = self._node_id(oid)
        if node_id is None:
            return []
        return [
            name
            for (name,) in self._q(
                "SELECT c.name FROM collections c JOIN members m"
                " ON m.graph=c.graph AND m.collection=c.name AND m.node=?"
                " WHERE c.graph=? ORDER BY c.seq",
                (node_id, self._graph_id),
            )
        ]

    def collection_cardinality(self, name: str) -> int:
        return int(
            self._s(
                "SELECT count FROM collections WHERE graph=? AND name=?",
                (self._graph_id, name),
            )
            or 0
        )

    # -------------------------------------------------------------- #
    # whole-graph operations

    def copy(self, name: str = "") -> Graph:
        """Materialize an in-memory :class:`Graph` copy (same replay the
        in-memory ``Graph.copy`` performs, so orders agree)."""
        clone = Graph(name or self.name)
        for oid in self.nodes():
            clone.add_node(oid)
        for source, label, target in self.edges():
            clone.add_edge(source, label, target)
        for coll in self.collection_names():
            clone.create_collection(coll)
            for member in self.collection(coll):
                clone.add_to_collection(coll, member)
        for function, args, _ in self.skolems.terms():
            clone.skolems.apply(function, args)
        clone.allocator.reserve_past(self._max_anonymous())
        return clone

    def merge(self, other, collection_prefix: str = "") -> Dict[Oid, Oid]:
        with self._store.batch():
            rename: Dict[Oid, Oid] = {}
            for oid in other.nodes():
                if oid.name.startswith("&") and self.has_node(oid):
                    rename[oid] = self.add_node(hint="m")
                else:
                    rename[oid] = self.add_node(oid)
            for source, label, target in other.edges():
                new_target: Target = (
                    rename[target] if isinstance(target, Oid) else target
                )
                self.add_edge(rename[source], label, new_target)
            for coll in other.collection_names():
                name = collection_prefix + coll
                self.create_collection(name)
                for member in other.collection(coll):
                    self.add_to_collection(name, rename[member])
            for function, args, _ in other.skolems.terms():
                mapped = tuple(
                    rename.get(a, a) if isinstance(a, Oid) else a for a in args
                )
                self.skolems.apply(function, mapped)
            self.allocator.reserve_past(self._max_anonymous())
            return rename

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": self.node_count,
            "edges": self.edge_count,
            "labels": int(
                self._s(
                    "SELECT COUNT(*) FROM labels WHERE graph=?",
                    (self._graph_id,),
                )
                or 0
            ),
            "collections": int(
                self._s(
                    "SELECT COUNT(*) FROM collections WHERE graph=?",
                    (self._graph_id,),
                )
                or 0
            ),
            "atoms": self.distinct_atom_count,
        }

    def _max_anonymous(self) -> int:
        highest = 0
        for (name,) in self._q(
            "SELECT name FROM nodes WHERE graph=? AND name LIKE '&%'",
            (self._graph_id,),
        ):
            tail = name[1:].rsplit(".", 1)[-1]
            if tail.isdigit():
                highest = max(highest, int(tail))
        return highest

    # -------------------------------------------------------------- #
    # bulk load

    def _bulk_import(self, graph) -> None:
        """Load a whole graph in one pass with explicit sequential ids.

        Equivalent to replaying ``graph.copy()``: edges are imported in
        ``edges()`` order, which fixes every derived order (egroups,
        labels, label_values, atom seq) exactly as the in-memory replay
        would.  Runs inside the caller's transaction.
        """
        gid = self._graph_id
        store = self._store

        node_base = int(store.scalar("SELECT COALESCE(MAX(id),0) FROM nodes") or 0)
        node_ids: Dict[Oid, int] = {}
        node_rows = []
        for index, oid in enumerate(graph.nodes()):
            node_ids[oid] = node_base + 1 + index
            node_rows.append((node_base + 1 + index, gid, oid.name))
        store.executemany(
            "INSERT INTO nodes(id,graph,name) VALUES(?,?,?)", node_rows
        )

        atom_base = int(store.scalar("SELECT COALESCE(MAX(id),0) FROM atoms") or 0)
        edge_base = int(store.scalar("SELECT COALESCE(MAX(id),0) FROM edges") or 0)
        atom_ids: Dict[Atom, int] = {}
        atom_rows = []
        edge_rows = []
        egroup_order: Dict[Tuple[int, str], None] = {}
        label_counts: Dict[str, int] = {}
        label_value_counts: Dict[Tuple[str, Atom], int] = {}
        for index, (source, label, target) in enumerate(graph.edges()):
            src_id = node_ids[source]
            if isinstance(target, Oid):
                tgt_node: Optional[int] = node_ids[target]
                tgt_atom: Optional[int] = None
            else:
                tgt_node = None
                tgt_atom = atom_ids.get(target)
                if tgt_atom is None:
                    tgt_atom = atom_base + 1 + len(atom_ids)
                    atom_ids[target] = tgt_atom
                    atom_rows.append(
                        (
                            tgt_atom,
                            gid,
                            target.type.value,
                            atom_val(target),
                            target.as_string(),
                            atom_num(target),
                            len(atom_ids),  # seq: first-encounter order
                        )
                    )
                key = (label, target)
                label_value_counts[key] = label_value_counts.get(key, 0) + 1
            edge_rows.append(
                (edge_base + 1 + index, gid, src_id, label, tgt_node, tgt_atom)
            )
            egroup_order.setdefault((src_id, label), None)
            label_counts[label] = label_counts.get(label, 0) + 1
        store.executemany(
            "INSERT INTO atoms(id,graph,typ,val,str,num,refs,seq)"
            " VALUES(?,?,?,?,?,?,1,?)",
            atom_rows,
        )
        store.executemany(
            "INSERT INTO edges(id,graph,src,label,tgt_node,tgt_atom)"
            " VALUES(?,?,?,?,?,?)",
            edge_rows,
        )
        # refs: exact per-atom incoming-edge counts, now that edges exist
        store.execute(
            "UPDATE atoms SET refs="
            "(SELECT COUNT(*) FROM edges e WHERE e.graph=? AND e.tgt_atom=atoms.id)"
            " WHERE graph=?",
            (gid, gid),
        )
        store.executemany(
            "INSERT INTO egroups(graph,src,label) VALUES(?,?,?)",
            [(gid, src, label) for src, label in egroup_order],
        )
        # labels() order is first-edge order = first appearance in the
        # edges() replay
        seen_labels: Dict[str, None] = {}
        for row in edge_rows:
            seen_labels.setdefault(row[3], None)
        store.executemany(
            "INSERT INTO labels(graph,label,count,distinct_values) VALUES(?,?,?,?)",
            [
                (
                    gid,
                    label,
                    label_counts[label],
                    len(
                        {
                            atom
                            for (lbl, atom) in label_value_counts
                            if lbl == label
                        }
                    ),
                )
                for label in seen_labels
            ],
        )
        store.executemany(
            "INSERT INTO label_values(graph,label,atom,count) VALUES(?,?,?,?)",
            [
                (gid, label, atom_ids[atom], count)
                for (label, atom), count in label_value_counts.items()
            ],
        )
        member_rows = []
        collection_rows = []
        for coll in graph.collection_names():
            members = graph.collection(coll)
            collection_rows.append((gid, coll, len(members)))
            for member in members:
                member_rows.append((gid, coll, node_ids[member]))
        store.executemany(
            "INSERT INTO collections(graph,name,count) VALUES(?,?,?)",
            collection_rows,
        )
        store.executemany(
            "INSERT INTO members(graph,collection,node) VALUES(?,?,?)",
            member_rows,
        )
        probe_rows = []
        for atom, atom_id in atom_ids.items():
            for rank, probe in enumerate(coercion_probes(atom)):
                probe_id = atom_ids.get(probe)
                if probe_id is not None:
                    probe_rows.append((gid, atom_id, probe_id, rank))
        store.executemany(
            "INSERT OR IGNORE INTO atom_probes(graph,atom,probe,rank)"
            " VALUES(?,?,?,?)",
            probe_rows,
        )
        store.execute(
            "UPDATE graphs SET node_count=?, edge_count=?, atoms_live=?"
            " WHERE id=?",
            (len(node_ids), len(edge_rows), len(atom_ids), gid),
        )
        self.skolems = SkolemRegistry()
        for function, args, _ in graph.skolems.terms():
            self.skolems.apply(function, args)
        self.allocator = OidAllocator()
        self.allocator.reserve_past(self._max_anonymous())

    def __repr__(self) -> str:
        label = self.name or "graph"
        return (
            f"<SqlGraph {label}: {self.node_count} nodes,"
            f" {self.edge_count} edges>"
        )


# ------------------------------------------------------------------ #
# the repository


#: Checksummed DDL snapshots written next to the database file; the
#: recovery source when the database itself fails its integrity check.
SNAPSHOT_SUFFIX = ".ddl"


class SqlRepository:
    """The ``Repository`` surface over one SQLite database file.

    Multiple named graphs share the file (a ``graph`` discriminator
    column on every table).  ``store()`` bulk-loads an in-memory graph
    transactionally; ``fetch()`` hands out a live :class:`SqlGraph`
    without materializing anything.  ``directory=None`` keeps the whole
    store in ``:memory:``, which the tests use.

    Directory-backed repositories carry a crash-recovery path: every
    successful bulk load writes a checksummed DDL snapshot next to the
    database, ``PRAGMA integrity_check`` runs on open, and a corrupt
    database (torn write, bit flip) is moved aside and rebuilt from the
    snapshots -- surfaced as recovery events.  Journaled edits made
    *after* the last snapshot live inside the database file, so they
    are lost with it; the recovery event says so.
    """

    backend = "sqlite"

    def __init__(
        self,
        directory: Optional[str] = None,
        filename: str = REPOSITORY_FILENAME,
        auto_snapshot: bool = True,
    ) -> None:
        self.directory = directory
        self.auto_snapshot = auto_snapshot
        #: times a corrupt database was detected and rebuilt on open
        self.integrity_recoveries = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, filename)
        else:
            path = ":memory:"
        self._path = path
        recovered = False
        if path == ":memory:":
            self.store_backend = SqlStore(path)
        else:
            self.store_backend, recovered = self._open_checked(path)
        self._graphs: Dict[str, SqlGraph] = {}
        self._schema_cache: Dict[str, Tuple[int, int, SchemaIndex]] = {}
        if recovered:
            self._restore_snapshots()

    # -------------------------------------------------------------- #
    # integrity check + recovery on open

    def _open_checked(self, path: str) -> Tuple[SqlStore, bool]:
        """Open the database file, verifying integrity first.

        A database that fails ``PRAGMA quick_check`` (or is so corrupt
        the schema bootstrap itself errors) is moved aside to
        ``<file>.corrupt`` and replaced with a fresh store; the caller
        then reloads the DDL snapshots.  Returns (store, recovered?).
        """
        findings: List[str] = []
        store: Optional[SqlStore] = None
        if os.path.exists(path):
            try:
                store = SqlStore(path)
                findings = store.integrity_check()
            except sqlite3.DatabaseError as error:
                findings = [str(error)]
        else:
            return SqlStore(path), False
        if not findings:
            assert store is not None
            return store, False
        if store is not None:
            try:
                store.close()
            except sqlite3.Error:
                pass
        corrupt = path + ".corrupt"
        if os.path.exists(corrupt):
            os.remove(corrupt)
        os.replace(path, corrupt)
        for suffix in ("-wal", "-shm"):
            sidecar = path + suffix
            if os.path.exists(sidecar):
                os.remove(sidecar)
        self.integrity_recoveries += 1
        record_recovery_event(
            "sql-repository",
            f"integrity check failed ({findings[0]}); database moved to "
            f"{os.path.basename(corrupt)}, rebuilding from DDL snapshots "
            "(journaled edits after the last snapshot are lost)",
        )
        return SqlStore(path), True

    def _snapshot_path(self, name: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, name + SNAPSHOT_SUFFIX)

    def _write_snapshot(self, name: str) -> None:
        """Checksummed DDL snapshot of one graph, next to the database."""
        if self.directory is None or not self.auto_snapshot:
            return
        maybe_fail("sql.snapshot")
        self.export_ddl(name, self._snapshot_path(name))

    def _restore_snapshots(self) -> None:
        """Reload every readable snapshot into the fresh database."""
        assert self.directory is not None
        for entry in sorted(os.listdir(self.directory)):
            if not entry.endswith(SNAPSHOT_SUFFIX):
                continue
            name = entry[: -len(SNAPSHOT_SUFFIX)]
            snapshot = os.path.join(self.directory, entry)
            try:
                with open(snapshot, "r", encoding="utf-8") as handle:
                    text = handle.read()
                declared, body = ddl.split_checksum(text)
                if declared is not None and declared != ddl.checksum(body):
                    record_recovery_event(
                        "sql-repository",
                        f"snapshot {entry} failed its checksum; not restored",
                    )
                    continue
                graph = ddl.loads(body, name=name)
            except (OSError, RepositoryError) as error:
                record_recovery_event(
                    "sql-repository",
                    f"snapshot {entry} unreadable ({error}); not restored",
                )
                continue
            self.store(name, graph)
            record_recovery_event(
                "sql-repository", f"graph {name!r} restored from snapshot {entry}"
            )

    # -------------------------------------------------------------- #
    # basic CRUD

    def store(self, name: str, graph, persist: bool = True) -> None:
        """Register ``graph`` under ``name``.

        An in-memory graph is bulk-loaded (replacing any previous
        generation in one transaction -- a crash leaves the old
        generation intact).  A :class:`SqlGraph` of this store is
        registered in place; its edits are already durable.  ``persist``
        is accepted for interface compatibility; SQLite writes are
        always durable.
        """
        if not name:
            raise RepositoryError("graph name must be non-empty")
        if isinstance(graph, SqlGraph) and graph._store is self.store_backend:
            graph.name = name
            self._graphs[name] = graph
            return
        graph.name = name
        store = self.store_backend
        target = None
        try:
            with store.batch():
                graph_id = self._ensure_graph_row(name)
                target = self._graphs.get(name)
                if target is None:
                    target = SqlGraph(store, graph_id, name)
                self._truncate(graph_id)
                target._reset_caches()
                target._bulk_import(graph)
                self._seal_journal(graph_id)
        except BaseException:
            # the transaction rolled back; drop any cache entries the
            # aborted import populated so the survivor reads fresh rows
            if target is not None:
                target._reset_caches()
            raise
        self._graphs[name] = target
        self._write_snapshot(name)

    def fetch(self, name: str) -> SqlGraph:
        cached = self._graphs.get(name)
        if cached is not None:
            return cached
        graph_id = self._graph_id(name)
        if graph_id is None:
            raise RepositoryError(f"no graph named {name!r} in the repository")
        graph = SqlGraph(self.store_backend, graph_id, name)
        self._graphs[name] = graph
        return graph

    def __contains__(self, name: str) -> bool:
        return name in self._graphs or self._graph_id(name) is not None

    def delete(self, name: str) -> None:
        known = name in self
        self._graphs.pop(name, None)
        graph_id = self._graph_id(name)
        if graph_id is not None:
            with self.store_backend.batch():
                self._truncate(graph_id)
                self.store_backend.execute(
                    "DELETE FROM graphs WHERE id=?", (graph_id,)
                )
        if self.directory is not None:
            snapshot = self._snapshot_path(name)
            if os.path.exists(snapshot):
                os.remove(snapshot)
        if not known:
            raise RepositoryError(f"no graph named {name!r} in the repository")

    def graph_names(self) -> List[str]:
        names = set(self._graphs)
        names.update(
            name
            for (name,) in self.store_backend.query("SELECT name FROM graphs")
        )
        return sorted(names)

    # -------------------------------------------------------------- #
    # direct materialization (mediator fast path)

    @contextmanager
    def rebuild(self, name: str) -> Iterator[SqlGraph]:
        """Transactionally rebuild graph ``name`` in place.

        Yields an empty :class:`SqlGraph` to materialize into (the
        mediator writes its warehouse directly here, never holding a
        full in-memory copy).  On exception the transaction rolls back
        and the previous generation remains untouched; on success the
        new generation is committed atomically and registered.
        """
        if not name:
            raise RepositoryError("graph name must be non-empty")
        store = self.store_backend
        target = None
        try:
            with store.batch():
                graph_id = self._ensure_graph_row(name)
                target = self._graphs.get(name)
                if target is None:
                    target = SqlGraph(store, graph_id, name)
                self._truncate(graph_id)
                target._reset_caches()
                yield target
                self._seal_journal(graph_id)
        except BaseException:
            # the transaction rolled back; drop any cache entries the
            # aborted build populated so the survivor reads fresh rows
            if target is not None:
                target._reset_caches()
            raise
        self._graphs[name] = target
        self._write_snapshot(name)

    # -------------------------------------------------------------- #
    # indexes and catalog

    def statistics(self, name: str) -> IndexStatistics:
        return graph_statistics(self.fetch(name))

    def schema_index(self, name: str) -> SchemaIndex:
        graph = self.fetch(name)
        cached = self._schema_cache.get(name)
        if cached is not None and cached[0] == id(graph):
            if cached[1] == graph.epoch:
                return cached[2]
            delta = graph.delta_since(cached[1])
            if delta is not None:
                patched = cached[2].advanced(delta)
                if patched is not None:
                    self._schema_cache[name] = (id(graph), graph.epoch, patched)
                    return patched
        index = SchemaIndex.from_graph(graph)
        self._schema_cache[name] = (id(graph), graph.epoch, index)
        return index

    def catalog(self) -> Dict[str, Dict[str, int]]:
        return {name: self.fetch(name).stats() for name in self.graph_names()}

    # -------------------------------------------------------------- #
    # backend reporting / DDL bridge

    def file_size(self) -> int:
        """Database size in bytes (0 for an in-memory store)."""
        return self.store_backend.file_size()

    def index_row_counts(self) -> Dict[str, int]:
        """Row counts of every table, for the `repro stats` report."""
        return self.store_backend.table_counts()

    def export_ddl(self, name: str, path: str) -> None:
        """Write one graph out as checksummed DDL (crash-safe via the
        same shared atomic-write helper the DDL backend uses)."""
        payload = ddl.with_checksum(ddl.dumps(self.fetch(name).copy()))
        atomic_write_text(path, payload, f"store.export.{name}")

    # -------------------------------------------------------------- #

    def _graph_id(self, name: str) -> Optional[int]:
        found = self.store_backend.scalar(
            "SELECT id FROM graphs WHERE name=?", (name,)
        )
        return int(found) if found is not None else None

    def _ensure_graph_row(self, name: str) -> int:
        graph_id = self._graph_id(name)
        if graph_id is None:
            cursor = self.store_backend.execute(
                "INSERT INTO graphs(name) VALUES(?)", (name,)
            )
            graph_id = int(cursor.lastrowid)
        return graph_id

    def _truncate(self, graph_id: int) -> None:
        """Clear a graph's rows, bumping its epoch so cached derived
        state (plans, statistics, pages) observes the generation swap."""
        for table in _GRAPH_TABLES:
            self.store_backend.execute(
                f"DELETE FROM {table} WHERE graph=?", (graph_id,)
            )
        self.store_backend.execute(
            "UPDATE graphs SET node_count=0, edge_count=0, atoms_live=0,"
            " epoch=epoch+1 WHERE id=?",
            (graph_id,),
        )

    def _seal_journal(self, graph_id: int) -> None:
        """After a wholesale load, pre-load delta snapshots are stale:
        clear the journal and set the floor so ``delta_since`` answers
        ``None`` (coarse invalidation) for anything older."""
        self.store_backend.execute(
            "DELETE FROM journal WHERE graph=?", (graph_id,)
        )
        self.store_backend.execute(
            "UPDATE graphs SET journal_floor=epoch WHERE id=?", (graph_id,)
        )


def open_repository(directory: Optional[str] = None, backend: str = "ddl"):
    """Factory over the two storage backends.

    ``backend="ddl"`` returns the checksummed-file
    :class:`~repro.repository.store.Repository`; ``backend="sqlite"``
    returns :class:`SqlRepository`.
    """
    if backend == "sqlite":
        return SqlRepository(directory)
    if backend == "ddl":
        from .store import Repository

        return Repository(directory)
    raise RepositoryError(f"unknown repository backend: {backend!r}")
