"""The Strudel data repository.

"A Web site's data graph and site graph are stored in STRUDEL's data
repository" (paper section 2.1).  The repository is a directory of DDL
files -- one per named graph -- plus an in-memory cache and a small
catalog of per-graph statistics.  It can also be used fully in memory
(``directory=None``), which the tests and benchmarks do.

The repository deliberately has *no schema catalog to enforce*: graphs are
semistructured, and the queryable schema is whatever
:class:`~repro.repository.indexes.SchemaIndex` observes.

Persistence is crash-safe: every dump is checksummed and written
tmp+fsync+rename, and the previous generation is kept as ``<name>.ddl.1``.
A fault at any write point leaves either the old or the new generation
fully intact; a corrupt primary (bad checksum, truncated parse) is
recovered from the backup on load, with the recovery logged in
:func:`repro.resilience.recovery_events`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..errors import RepositoryCorruptionError, RepositoryError
from ..graph import Graph
from ..resilience.report import record_recovery_event
from . import ddl
from .atomic import atomic_write_text as _atomic_write_text
from .indexes import IndexStatistics, SchemaIndex, graph_statistics

_GRAPH_SUFFIX = ".ddl"
_BACKUP_SUFFIX = ".1"


class Repository:
    """A store of named semistructured graphs.

    Parameters
    ----------
    directory:
        Backing directory for persistence, created on demand.  ``None``
        keeps everything in memory only.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._graphs: Dict[str, Graph] = {}
        # (graph identity, epoch) -> schema index; serves unchanged graphs
        # without re-listing their labels and collections
        self._schema_cache: Dict[str, Tuple[int, int, SchemaIndex]] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -------------------------------------------------------------- #
    # basic CRUD

    def store(self, name: str, graph: Graph, persist: bool = True) -> None:
        """Register ``graph`` under ``name`` (and write it to disk).

        Overwrites silently: storing is how graphs are refreshed after
        mediation recomputes the warehouse.  The on-disk write is
        atomic (tmp+fsync+rename) and the previous generation is kept
        as ``<name>.ddl.1``, so a crash at any point preserves a fully
        intact generation.
        """
        if not name:
            raise RepositoryError("graph name must be non-empty")
        graph.name = name
        self._graphs[name] = graph
        if persist and self.directory is not None:
            path = self._path(name)
            payload = ddl.with_checksum(ddl.dumps(graph))
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    current = handle.read()
                _atomic_write_text(
                    path + _BACKUP_SUFFIX, current, f"store.backup.{name}"
                )
            _atomic_write_text(path, payload, f"store.write.{name}")

    def fetch(self, name: str) -> Graph:
        """Return the named graph, loading it from disk if not cached.

        A primary file that fails its integrity check falls back to the
        previous good generation (``.ddl.1``), recording a recovery
        event; only when both generations are unreadable does the
        corruption surface to the caller.
        """
        cached = self._graphs.get(name)
        if cached is not None:
            return cached
        if self.directory is not None:
            path = self._path(name)
            backup = path + _BACKUP_SUFFIX
            if os.path.exists(path) or os.path.exists(backup):
                graph = self._load_checked(name, path, backup)
                self._graphs[name] = graph
                return graph
        raise RepositoryError(f"no graph named {name!r} in the repository")

    def _load_checked(self, name: str, path: str, backup: str) -> Graph:
        primary_error: Optional[RepositoryError] = None
        if os.path.exists(path):
            try:
                return _load_file(path, name)
            except RepositoryError as error:
                primary_error = error
        if os.path.exists(backup):
            graph = _load_file(backup, name)
            record_recovery_event(
                "repository",
                f"graph {name!r}: recovered previous generation from backup"
                + (f" ({primary_error})" if primary_error is not None else ""),
            )
            return graph
        assert primary_error is not None
        raise primary_error

    def __contains__(self, name: str) -> bool:
        if name in self._graphs:
            return True
        if self.directory is None:
            return False
        path = self._path(name)
        return os.path.exists(path) or os.path.exists(path + _BACKUP_SUFFIX)

    def delete(self, name: str) -> None:
        """Forget a graph (cache, disk, and backup).  Unknown names raise."""
        known = name in self
        self._graphs.pop(name, None)
        if self.directory is not None:
            path = self._path(name)
            for candidate in (path, path + _BACKUP_SUFFIX):
                if os.path.exists(candidate):
                    os.remove(candidate)
        if not known:
            raise RepositoryError(f"no graph named {name!r} in the repository")

    def graph_names(self) -> List[str]:
        """All graph names, cached and on disk, sorted."""
        names = set(self._graphs)
        if self.directory is not None:
            for entry in os.listdir(self.directory):
                if entry.endswith(_GRAPH_SUFFIX):
                    names.add(entry[: -len(_GRAPH_SUFFIX)])
        return sorted(names)

    # -------------------------------------------------------------- #
    # indexes and catalog

    def statistics(self, name: str) -> IndexStatistics:
        """Index statistics for a stored graph (optimizer input).

        Served from the graph's epoch-stamped snapshot: an unchanged
        graph is never re-scanned, and the snapshot is shared with the
        query engine and EXPLAIN.
        """
        return graph_statistics(self.fetch(name))

    def schema_index(self, name: str) -> SchemaIndex:
        """The schema index (collection and attribute names) of a graph.

        Cached per (graph identity, mutation epoch).  A stale entry is
        first *patched* from the graph's delta log (the common
        add-edge/add-collection case appends at most one name); only
        removals -- which can retire a label -- or a truncated log force
        a rebuild from the raw indexes.
        """
        graph = self.fetch(name)
        cached = self._schema_cache.get(name)
        if cached is not None and cached[0] == id(graph):
            if cached[1] == graph.epoch:
                return cached[2]
            delta = graph.delta_since(cached[1])
            if delta is not None:
                patched = cached[2].advanced(delta)
                if patched is not None:
                    self._schema_cache[name] = (id(graph), graph.epoch, patched)
                    return patched
        index = SchemaIndex.from_graph(graph)
        self._schema_cache[name] = (id(graph), graph.epoch, index)
        return index

    def catalog(self) -> Dict[str, Dict[str, int]]:
        """Size summary of every stored graph."""
        return {name: self.fetch(name).stats() for name in self.graph_names()}

    # -------------------------------------------------------------- #

    def _path(self, name: str) -> str:
        if self.directory is None:
            raise RepositoryError("repository is in-memory only")
        safe = name.replace(os.sep, "_")
        return os.path.join(self.directory, safe + _GRAPH_SUFFIX)


# ------------------------------------------------------------------ #
# crash-safe file primitives (the shared write half lives in .atomic)


def _load_file(path: str, name: str) -> Graph:
    """Load one DDL file, verifying its checksum header when present."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    declared, body = ddl.split_checksum(text)
    if declared is not None and ddl.checksum(body) != declared:
        raise RepositoryCorruptionError(
            f"checksum mismatch in {path}: file is corrupt or truncated"
        )
    return ddl.loads(body, name)
