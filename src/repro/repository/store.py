"""The Strudel data repository.

"A Web site's data graph and site graph are stored in STRUDEL's data
repository" (paper section 2.1).  The repository is a directory of DDL
files -- one per named graph -- plus an in-memory cache and a small
catalog of per-graph statistics.  It can also be used fully in memory
(``directory=None``), which the tests and benchmarks do.

The repository deliberately has *no schema catalog to enforce*: graphs are
semistructured, and the queryable schema is whatever
:class:`~repro.repository.indexes.SchemaIndex` observes.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..errors import RepositoryError
from ..graph import Graph
from . import ddl
from .indexes import IndexStatistics, SchemaIndex, graph_statistics

_GRAPH_SUFFIX = ".ddl"


class Repository:
    """A store of named semistructured graphs.

    Parameters
    ----------
    directory:
        Backing directory for persistence, created on demand.  ``None``
        keeps everything in memory only.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._graphs: Dict[str, Graph] = {}
        # (graph identity, epoch) -> schema index; serves unchanged graphs
        # without re-listing their labels and collections
        self._schema_cache: Dict[str, Tuple[int, int, SchemaIndex]] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -------------------------------------------------------------- #
    # basic CRUD

    def store(self, name: str, graph: Graph, persist: bool = True) -> None:
        """Register ``graph`` under ``name`` (and write it to disk).

        Overwrites silently: storing is how graphs are refreshed after
        mediation recomputes the warehouse.
        """
        if not name:
            raise RepositoryError("graph name must be non-empty")
        graph.name = name
        self._graphs[name] = graph
        if persist and self.directory is not None:
            path = self._path(name)
            with open(path, "w", encoding="utf-8") as handle:
                ddl.dump(graph, handle)

    def fetch(self, name: str) -> Graph:
        """Return the named graph, loading it from disk if not cached."""
        cached = self._graphs.get(name)
        if cached is not None:
            return cached
        if self.directory is not None:
            path = self._path(name)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    graph = ddl.load(handle, name)
                self._graphs[name] = graph
                return graph
        raise RepositoryError(f"no graph named {name!r} in the repository")

    def __contains__(self, name: str) -> bool:
        if name in self._graphs:
            return True
        return self.directory is not None and os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        """Forget a graph (cache and disk).  Unknown names raise."""
        known = name in self
        self._graphs.pop(name, None)
        if self.directory is not None:
            path = self._path(name)
            if os.path.exists(path):
                os.remove(path)
        if not known:
            raise RepositoryError(f"no graph named {name!r} in the repository")

    def graph_names(self) -> List[str]:
        """All graph names, cached and on disk, sorted."""
        names = set(self._graphs)
        if self.directory is not None:
            for entry in os.listdir(self.directory):
                if entry.endswith(_GRAPH_SUFFIX):
                    names.add(entry[: -len(_GRAPH_SUFFIX)])
        return sorted(names)

    # -------------------------------------------------------------- #
    # indexes and catalog

    def statistics(self, name: str) -> IndexStatistics:
        """Index statistics for a stored graph (optimizer input).

        Served from the graph's epoch-stamped snapshot: an unchanged
        graph is never re-scanned, and the snapshot is shared with the
        query engine and EXPLAIN.
        """
        return graph_statistics(self.fetch(name))

    def schema_index(self, name: str) -> SchemaIndex:
        """The schema index (collection and attribute names) of a graph.

        Cached per (graph identity, mutation epoch).  A stale entry is
        first *patched* from the graph's delta log (the common
        add-edge/add-collection case appends at most one name); only
        removals -- which can retire a label -- or a truncated log force
        a rebuild from the raw indexes.
        """
        graph = self.fetch(name)
        cached = self._schema_cache.get(name)
        if cached is not None and cached[0] == id(graph):
            if cached[1] == graph.epoch:
                return cached[2]
            delta = graph.delta_since(cached[1])
            if delta is not None:
                patched = cached[2].advanced(delta)
                if patched is not None:
                    self._schema_cache[name] = (id(graph), graph.epoch, patched)
                    return patched
        index = SchemaIndex.from_graph(graph)
        self._schema_cache[name] = (id(graph), graph.epoch, index)
        return index

    def catalog(self) -> Dict[str, Dict[str, int]]:
        """Size summary of every stored graph."""
        return {name: self.fetch(name).stats() for name in self.graph_names()}

    # -------------------------------------------------------------- #

    def _path(self, name: str) -> str:
        if self.directory is None:
            raise RepositoryError("repository is in-memory only")
        safe = name.replace(os.sep, "_")
        return os.path.join(self.directory, safe + _GRAPH_SUFFIX)
