"""Dataguide-style label summaries for static query checking.

The paper's repository "fully indexes both the schema and the data ...
one index contains the names of all the collections and attributes in
the graph" (section 2.1).  A :class:`LabelSummary` snapshots exactly that
schema index -- the *set* of edge labels and collection names, plus the
labels leaving each collection's members -- which is all the site
analyzer needs to type-check a STRUQL query without touching extents.

Like :class:`~repro.repository.indexes.IndexStatistics`, summaries are
stamped with the graph's mutation epoch; :func:`label_summary` caches one
summary per graph and rebuilds it only when the epoch moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from ..graph import Graph


@dataclass(frozen=True)
class LabelSummary:
    """The label/collection vocabulary of one data graph."""

    #: every edge label in the graph.
    labels: FrozenSet[str] = frozenset()
    #: every collection name.
    collections: FrozenSet[str] = frozenset()
    #: labels leaving members of each collection (dataguide narrowing:
    #: ``Publications(x), x -> "title" -> t`` is checked against the
    #: labels actually found on Publications members, not the graph).
    collection_labels: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: graph epoch at snapshot time (-1 for hand-built summaries).
    epoch: int = -1

    @classmethod
    def from_graph(cls, graph: Graph) -> "LabelSummary":
        collection_labels: Dict[str, FrozenSet[str]] = {}
        for name in graph.collection_names():
            labels: set = set()
            for oid in graph.collection(name):
                labels.update(graph.labels_of(oid))
            collection_labels[name] = frozenset(labels)
        return cls(
            labels=frozenset(graph.labels()),
            collections=frozenset(graph.collection_names()),
            collection_labels=collection_labels,
            epoch=graph.epoch,
        )

    def labels_for(self, collection: str = "") -> FrozenSet[str]:
        """Labels to check an edge against: the collection's own label
        set when the source is collection-bound, else the whole graph's."""
        if collection and collection in self.collection_labels:
            return self.collection_labels[collection]
        return self.labels


def label_summary(graph: Graph) -> LabelSummary:
    """The (cached) label summary of a graph.

    The cache lives on the graph object and is keyed by its mutation
    epoch, mirroring the statistics cache in
    :func:`~repro.repository.indexes.graph_statistics`.
    """
    cached = getattr(graph, "_label_summary_cache", None)
    if cached is not None and cached.epoch == graph.epoch:
        return cached
    summary = LabelSummary.from_graph(graph)
    graph._label_summary_cache = summary
    return summary
