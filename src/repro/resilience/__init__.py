"""Fault tolerance for the ingest -> build -> serve pipeline.

The paper's sites are *regenerated from external sources* (wrappers ->
mediator -> data graph -> site graph), so one malformed BibTeX entry,
one flaky source, or one crash mid-write could take the whole site
down.  This package makes every stage degrade instead of die:

* :mod:`~repro.resilience.quarantine` -- per-record quarantine in the
  wrappers, with an error budget;
* :mod:`~repro.resilience.retry` -- deterministic retry/backoff and
  per-source circuit breakers (injectable clock);
* :mod:`~repro.resilience.chaos` -- a seeded fault-injection harness
  the chaos tests use to prove the guarantees;
* :mod:`~repro.resilience.deadline` -- request-scoped deadlines with
  cooperative cancellation through every evaluation layer;
* :mod:`~repro.resilience.report` -- the aggregated resilience ledger
  (`repro stats --resilience`);
* :mod:`~repro.resilience.policy` -- the bundle the mediator threads
  through the stages.
"""

from . import chaos
from .chaos import ChaosFault, FaultPlan
from .deadline import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
    install_deadline,
)
from .policy import ResiliencePolicy
from .quarantine import QuarantinedRecord, QuarantineReport, WrapPolicy
from .report import (
    ResilienceReport,
    record_recovery_event,
    record_slow_query,
    recovery_events,
    reset_recovery_events,
    reset_slow_queries,
    slow_queries,
)
from .retry import (
    BreakerState,
    CircuitBreaker,
    Clock,
    ManualClock,
    RetryPolicy,
    SystemClock,
)

__all__ = [
    "BreakerState",
    "ChaosFault",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "ManualClock",
    "QuarantinedRecord",
    "QuarantineReport",
    "ResiliencePolicy",
    "ResilienceReport",
    "RetryPolicy",
    "SystemClock",
    "WrapPolicy",
    "chaos",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "install_deadline",
    "record_recovery_event",
    "record_slow_query",
    "recovery_events",
    "reset_recovery_events",
    "reset_slow_queries",
    "slow_queries",
]
