"""Fault injection: programmable failures at named pipeline points.

Every guarded operation in the pipeline -- wrapper I/O, each step of a
repository write, query-engine evaluation -- calls
:func:`maybe_fail(site) <maybe_fail>` with a dotted site name before
doing its work.  With no :class:`FaultPlan` installed this is a no-op;
with one installed (``with chaos.installed(plan): ...``) the plan
decides, deterministically from its seed and rules, whether to raise
:class:`ChaosFault` at that point.

This is how the chaos tests *prove* the resilience guarantees: a fault
at every store-write site must never lose the last good generation, a
fault in engine evaluation must degrade a page to its last-known-good
bytes, a fault in a wrapper must trip retry and then the circuit
breaker.

``REPRO_CHAOS_SEED`` (see :meth:`FaultPlan.from_env`) lets CI re-seed
the chaos suite without touching code.
"""

from __future__ import annotations

import os
import random
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple


class ChaosFault(RuntimeError):
    """An injected failure.  Deliberately *not* a StrudelError: chaos
    simulates infrastructure dying (I/O errors, crashes), not library
    misuse, so only code paths that explicitly guard against
    infrastructure failure may catch it."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected fault at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit


class _Rule:
    """One trigger: a site glob plus when it fires."""

    def __init__(
        self,
        pattern: str,
        at: Optional[int] = None,
        probability: Optional[float] = None,
    ) -> None:
        self.pattern = pattern
        self.at = at
        self.probability = probability

    def matches(self, site: str) -> bool:
        return fnmatch(site, self.pattern)

    def fires(self, hit: int, rng: random.Random) -> bool:
        if self.at is not None:
            return hit == self.at
        if self.probability is not None:
            return rng.random() < self.probability
        return True


class FaultPlan:
    """A seeded, programmable set of failures.

    Rules are matched against site names with shell globs
    (``store.write.*``).  Counters are per site, so ``fail_at(site, 2)``
    means "the second time this site is reached".  Probabilistic rules
    draw from ``random.Random(seed)``, making a plan's behavior a pure
    function of (seed, sequence of sites reached).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: List[_Rule] = []
        #: site -> times reached
        self.hits: Dict[str, int] = {}
        #: every fault injected, in order
        self.injected: List[Tuple[str, int]] = []

    # ---------------------------------------------------------- #
    # rule construction (chainable)

    def fail_always(self, pattern: str) -> "FaultPlan":
        self._rules.append(_Rule(pattern))
        return self

    def fail_at(self, pattern: str, hit: int) -> "FaultPlan":
        """Fail the ``hit``-th (1-based) time a matching site is reached."""
        self._rules.append(_Rule(pattern, at=hit))
        return self

    def fail_with_probability(self, pattern: str, probability: float) -> "FaultPlan":
        self._rules.append(_Rule(pattern, probability=probability))
        return self

    # ---------------------------------------------------------- #

    def check(self, site: str) -> None:
        """Raise :class:`ChaosFault` if a rule fires for this visit."""
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for rule in self._rules:
            if rule.matches(site) and rule.fires(hit, self._rng):
                self.injected.append((site, hit))
                raise ChaosFault(site, hit)

    def report(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "sites_reached": dict(sorted(self.hits.items())),
            "faults_injected": [
                {"site": site, "hit": hit} for site, hit in self.injected
            ],
        }

    @classmethod
    def from_env(cls, default_seed: int = 7) -> "FaultPlan":
        """A plan seeded from ``REPRO_CHAOS_SEED`` (CI re-seeds chaos runs
        this way); rules are still added by the caller."""
        raw = os.environ.get("REPRO_CHAOS_SEED", "")
        try:
            seed = int(raw)
        except ValueError:
            seed = default_seed
        return cls(seed=seed if raw else default_seed)


# ------------------------------------------------------------------ #
# the ambient plan

_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the ambient plan consulted by :func:`maybe_fail`."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    return _ACTIVE


class installed:
    """``with chaos.installed(plan):`` -- scoped installation, exception
    safe, restores whatever plan was active before."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def maybe_fail(site: str) -> None:
    """Fault point: no-op without a plan, else let the plan decide."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)


# ------------------------------------------------------------------ #
# physical corruption

def flip_bit(path: str, offset: Optional[int] = None, bit: int = 0, seed: int = 0) -> int:
    """Flip one bit of a file in place -- simulated media corruption.

    The SQLite chaos scenarios use this against the repository database
    file to prove the integrity-check-on-open recovery path.  Returns
    the byte offset that was corrupted.  ``offset=None`` picks one
    deterministically from ``seed``; the file header (first 100 bytes,
    the SQLite header) is avoided so the damage lands in page data,
    which ``PRAGMA quick_check`` must detect rather than "file is not a
    database".
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file: {path!r}")
    if offset is None:
        lo = min(100, size - 1)
        offset = random.Random(seed).randrange(lo, size)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << (bit & 7))]))
    return offset
