"""Request-scoped deadlines with cooperative cancellation.

``request_timeout`` on the HTTP tier only bounds *socket* I/O -- a
pathological STRUQL query (a cyclic regular path, a cartesian product)
pins a worker forever because nothing inside evaluation ever looks at a
clock.  This module gives every layer a cheap way to do exactly that:

* :class:`Deadline` -- a monotonic-clock budget stamped at admission.
  ``tick()`` is designed to sit inside hot row loops: it counts calls
  and only reads the clock every ``stride`` ticks, so the common case
  is one integer increment and a compare.  When the budget is gone it
  raises :class:`~repro.errors.DeadlineExceeded`.
* an *ambient* thread-local slot -- the serving worker installs the
  request's deadline with :func:`deadline_scope`; the query engine,
  the path search, template expansion, and the SQL layer pick it up
  with :func:`current_deadline` without any signature changes through
  the stack.
* :func:`check_deadline` -- the coarse form for layer boundaries
  ("about to evaluate a condition"), always reads the clock.

Layers never poll the wall clock directly; everything goes through the
deadline so tests can use far-future or already-expired budgets
deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, Optional

from contextlib import contextmanager

from ..errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "install_deadline",
]

# How many tick() calls pass between clock reads.  2**10 keeps the
# per-row cost to an increment + mask in the block operators while
# still noticing expiry within a few thousand rows.
DEFAULT_STRIDE = 1024


class Deadline:
    """A monotonic-clock evaluation budget.

    ``Deadline(0.25)`` expires 250ms after construction.  ``tick()``
    is the hot-loop form (strided clock reads); ``check()`` always
    reads the clock; ``expired()`` reads the clock and reports without
    raising (the form the sqlite progress handler needs -- raising
    through the sqlite3 C layer is undefined behaviour).
    """

    __slots__ = ("budget", "started_at", "expires_at", "_ticks", "_stride", "_clock")

    def __init__(
        self,
        budget: float,
        *,
        stride: int = DEFAULT_STRIDE,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget!r}")
        self.budget = float(budget)
        self._clock = clock or time.monotonic
        self.started_at = self._clock()
        self.expires_at = self.started_at + self.budget
        self._ticks = 0
        # store the mask, not the stride, so tick() is one AND
        if stride & (stride - 1):
            raise ValueError(f"stride must be a power of two, got {stride!r}")
        self._stride = stride - 1

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining(self) -> float:
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        """Clock-reading, non-raising check (safe inside C callbacks)."""
        return self._clock() >= self.expires_at

    def check(self, site: str = "") -> None:
        """Read the clock; raise :class:`DeadlineExceeded` if over budget."""
        now = self._clock()
        if now >= self.expires_at:
            raise DeadlineExceeded(self.budget, now - self.started_at, site)

    def tick(self, site: str = "") -> None:
        """Hot-loop check: one increment + mask, clock every ``stride`` calls."""
        self._ticks += 1
        if not (self._ticks & self._stride):
            self.check(site)


# ---------------------------------------------------------------------------
# Ambient (thread-local) deadline

_LOCAL = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline installed on this thread, or ``None``."""
    return getattr(_LOCAL, "deadline", None)


def install_deadline(deadline: Optional[Deadline]) -> Optional[Deadline]:
    """Install ``deadline`` as this thread's ambient deadline.

    Returns the previously installed deadline (for manual restore).
    Prefer :func:`deadline_scope` unless the enter/exit points live in
    different methods (the keep-alive handler re-arms per request).
    """
    previous = getattr(_LOCAL, "deadline", None)
    _LOCAL.deadline = deadline
    return previous


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Scoped install: the ambient deadline for the ``with`` body."""
    previous = install_deadline(deadline)
    try:
        yield deadline
    finally:
        install_deadline(previous)


def check_deadline(site: str = "") -> None:
    """Coarse boundary check against the ambient deadline, if any."""
    deadline = getattr(_LOCAL, "deadline", None)
    if deadline is not None:
        deadline.check(site)
