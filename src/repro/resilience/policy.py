"""The one knob callers turn: a :class:`ResiliencePolicy` bundling the
per-stage settings (quarantine budget, retry schedule, breaker
thresholds) that the mediator threads through every pipeline stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .quarantine import WrapPolicy
from .retry import Clock, RetryPolicy, SystemClock


@dataclass
class ResiliencePolicy:
    """How a mediation run should degrade instead of die.

    Passing one to :meth:`~repro.mediator.Mediator.materialize` (or
    ``ingest``) switches the mediator from strict all-or-nothing loading
    to: per-record quarantine inside each wrapper, retry with backoff
    around each source, a circuit breaker per source, and a warehouse
    built from whatever survives -- marked ``partial`` in its
    provenance.  ``min_sources`` is the floor: fewer surviving sources
    than this falls back to the repository's previous warehouse
    generation (marked ``stale``) or, failing that, raises.
    """

    wrap: WrapPolicy = field(default_factory=WrapPolicy.tolerant)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_reset: float = 60.0
    #: minimum surviving sources for a materialization to count
    min_sources: int = 1
    #: clock driving the circuit breakers (tests inject ManualClock)
    clock: Optional[Clock] = None

    def breaker_clock(self) -> Clock:
        if self.clock is not None:
            return self.clock
        return self.retry.clock if self.retry is not None else SystemClock()
