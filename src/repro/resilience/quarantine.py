"""Per-record quarantine: load what parses, report what does not.

The paper's sites re-ingest messy external feeds continuously (BibTeX
files, personnel databases, scraped HTML); one malformed entry must not
abort a whole load.  A :class:`WrapPolicy` in ``tolerant`` mode makes
every wrapper catch per-record failures into a structured
:class:`QuarantineReport` -- source name, record locator, the exception,
and a raw snippet -- instead of raising, up to a configurable error
budget (``max_errors``); exceeding the budget aborts the load with
:class:`~repro.errors.QuarantineExceeded`, because a source that is
*mostly* garbage is more likely misconfigured than merely dirty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class QuarantinedRecord:
    """One record a wrapper could not translate."""

    #: name of the source the record came from
    source: str
    #: where in the source: "entry p3 (line 12)", "row 7", "page a.html"
    locator: str
    #: the failure, stringified (exception class + message)
    error: str
    #: raw text of the offending record, truncated for the report
    snippet: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {
            "source": self.source,
            "locator": self.locator,
            "error": self.error,
            "snippet": self.snippet,
        }


@dataclass
class QuarantineReport:
    """What one tolerant wrap quarantined (and how much it admitted)."""

    source: str = ""
    records: List[QuarantinedRecord] = field(default_factory=list)
    #: well-formed records actually translated into the graph
    admitted: int = 0

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> bool:
        return not self.records

    def add(
        self, locator: str, error: object, snippet: str = "", source: str = ""
    ) -> QuarantinedRecord:
        if isinstance(error, BaseException):
            rendered = f"{type(error).__name__}: {error}"
        else:
            rendered = str(error)
        record = QuarantinedRecord(
            source=source or self.source,
            locator=locator,
            error=rendered,
            snippet=snippet,
        )
        self.records.append(record)
        return record

    def merge(self, other: "QuarantineReport") -> None:
        self.records.extend(other.records)
        self.admitted += other.admitted

    def as_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "admitted": self.admitted,
            "quarantined": self.count,
            "records": [record.as_dict() for record in self.records],
        }


@dataclass(frozen=True)
class WrapPolicy:
    """How a wrapper should react to malformed records.

    The default (``quarantine=False``) is the historical strict behavior:
    the first bad record raises.  :meth:`tolerant` returns a policy under
    which wrappers catch per-record failures into their
    ``last_quarantine`` report, subject to an error budget.
    """

    #: catch per-record failures instead of raising
    quarantine: bool = False
    #: error budget: more quarantined records than this aborts the load
    #: (``None`` = unlimited)
    max_errors: Optional[int] = None
    #: how much raw text a quarantined record keeps for the report
    snippet_length: int = 120
    #: optional :class:`~repro.constraints.ConstraintPolicy`: declared
    #: data constraints enforced on the wrapped graph, violators
    #: quarantined (tolerant) or raising (strict)
    constraints: Optional[object] = None

    @classmethod
    def strict(cls, constraints: Optional[object] = None) -> "WrapPolicy":
        return cls(constraints=constraints)

    @classmethod
    def tolerant(
        cls,
        max_errors: Optional[int] = None,
        constraints: Optional[object] = None,
    ) -> "WrapPolicy":
        return cls(quarantine=True, max_errors=max_errors, constraints=constraints)

    def clip(self, snippet: str) -> str:
        return snippet[: self.snippet_length]
