"""The resilience ledger: what degraded, what was quarantined, what
recovered.

A :class:`ResilienceReport` aggregates the evidence the pipeline stages
produce -- wrapper quarantine reports, mediator breaker states and
failed sources, repository recovery events, page-server degradations --
into one JSON-able document.  ``repro ingest`` writes one next to its
output and ``repro stats --resilience`` prints one, so operators can see
*that* the site degraded and *why* without reading logs.

Repository recovery events are also recorded in a process-wide log
(mirroring :func:`repro.repository.statistics_refresh_counters`), since
recoveries happen inside ``fetch`` calls far from any report object.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_RECOVERY_EVENTS: List[Dict[str, str]] = []


def record_recovery_event(subject: str, detail: str) -> Dict[str, str]:
    """Log one recovery (e.g. a corrupt graph restored from backup)."""
    event = {"subject": subject, "detail": detail}
    _RECOVERY_EVENTS.append(event)
    return event


def recovery_events() -> List[Dict[str, str]]:
    return list(_RECOVERY_EVENTS)


def reset_recovery_events() -> None:
    _RECOVERY_EVENTS.clear()


# Slow-query reports live in the same kind of process-wide log: the
# watchdog and the serving tier record them from worker threads, far
# from whichever ResilienceReport eventually collects them.  Bounded so
# a pathological client cannot grow the ledger without limit.
_SLOW_QUERIES: List[Dict[str, object]] = []
_SLOW_QUERY_CAP = 256


def record_slow_query(
    path: str,
    elapsed: float,
    budget: float,
    *,
    site: str = "",
    operator_stats: object = None,
    kind: str = "deadline",
) -> Dict[str, object]:
    """Log one slow/cancelled query (watchdog flag or deadline expiry)."""
    report: Dict[str, object] = {
        "path": path,
        "elapsed": round(float(elapsed), 4),
        "budget": round(float(budget), 4),
        "site": site,
        "kind": kind,
    }
    if operator_stats:
        report["operator_stats"] = operator_stats
    if len(_SLOW_QUERIES) < _SLOW_QUERY_CAP:
        _SLOW_QUERIES.append(report)
    return report


def slow_queries() -> List[Dict[str, object]]:
    return list(_SLOW_QUERIES)


def reset_slow_queries() -> None:
    _SLOW_QUERIES.clear()


@dataclass
class ResilienceReport:
    """One pipeline run's degradations, quarantines, and recoveries."""

    #: source name -> QuarantineReport.as_dict()
    quarantine: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: source name -> CircuitBreaker.snapshot()
    breakers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: source name -> final error after retries
    failed_sources: Dict[str, str] = field(default_factory=dict)
    #: sources skipped without trying (circuit open)
    skipped_sources: List[str] = field(default_factory=list)
    #: source name -> retry attempts that failed before success/giving up
    retries: Dict[str, int] = field(default_factory=dict)
    #: repository recoveries (corrupt generation restored from backup)
    recovery_events: List[Dict[str, str]] = field(default_factory=list)
    #: slow/cancelled queries (deadline expiries, watchdog flags)
    slow_queries: List[Dict[str, object]] = field(default_factory=list)
    #: page-server degradations (stale page / error page served)
    degradations: List[Dict[str, str]] = field(default_factory=list)
    #: data-constraint enforcement accounting from the mediation
    #: (checked/violated/refuted plus warehouse-level quarantined records)
    constraints: Dict[str, object] = field(default_factory=dict)
    #: True when the warehouse was built from a strict subset of sources
    partial: bool = False
    #: True when a previous warehouse generation was served instead
    stale: bool = False

    # ------------------------------------------------------------ #
    # collectors

    def record_mediation(self, mediator: object) -> "ResilienceReport":
        """Fold a mediator's last materialization into this report."""
        report = getattr(mediator, "last_report", None)
        if report is not None:
            for name, quarantine in report.quarantine.items():
                self.quarantine[name] = dict(quarantine)
            self.failed_sources.update(report.failed_sources)
            self.skipped_sources.extend(report.skipped_sources)
            for name, count in report.retries.items():
                self.retries[name] = self.retries.get(name, 0) + count
            self.partial = self.partial or report.partial
            self.stale = self.stale or report.stale
            constraints = getattr(report, "constraints", None)
            if constraints:
                self.constraints = dict(constraints)
        breaker_states = getattr(mediator, "breaker_states", None)
        if callable(breaker_states):
            self.breakers.update(breaker_states())
        return self

    def record_server(self, server: object) -> "ResilienceReport":
        """Fold a page server's degradation log into this report."""
        self.degradations.extend(getattr(server, "degradations", []))
        return self

    def record_recoveries(self, events: Optional[List[Dict[str, str]]] = None) -> "ResilienceReport":
        """Fold recovery events (default: the process-wide log)."""
        self.recovery_events.extend(
            events if events is not None else recovery_events()
        )
        return self

    def record_slow_queries(
        self, reports: Optional[List[Dict[str, object]]] = None
    ) -> "ResilienceReport":
        """Fold slow-query reports (default: the process-wide ledger)."""
        self.slow_queries.extend(
            reports if reports is not None else slow_queries()
        )
        return self

    # ------------------------------------------------------------ #
    # totals and rendering

    @property
    def quarantined_records(self) -> int:
        return sum(int(q.get("quarantined", 0)) for q in self.quarantine.values())

    @property
    def open_breakers(self) -> List[str]:
        return sorted(
            name
            for name, snapshot in self.breakers.items()
            if snapshot.get("state") != "closed"
        )

    def summary_lines(self) -> List[str]:
        lines = [
            f"partial: {str(self.partial).lower()}",
            f"stale: {str(self.stale).lower()}",
            f"quarantined records: {self.quarantined_records}",
        ]
        for name, quarantine in sorted(self.quarantine.items()):
            lines.append(
                f"  {name}: admitted={quarantine.get('admitted', 0)} "
                f"quarantined={quarantine.get('quarantined', 0)}"
            )
        lines.append(f"failed sources: {len(self.failed_sources)}")
        for name, error in sorted(self.failed_sources.items()):
            lines.append(f"  {name}: {error}")
        if self.skipped_sources:
            lines.append(f"skipped (circuit open): {', '.join(self.skipped_sources)}")
        lines.append(
            "breakers: "
            + (
                ", ".join(
                    f"{name}={snapshot.get('state')}"
                    for name, snapshot in sorted(self.breakers.items())
                )
                or "none"
            )
        )
        lines.append(f"recovery events: {len(self.recovery_events)}")
        for event in self.recovery_events:
            lines.append(f"  {event.get('subject')}: {event.get('detail')}")
        lines.append(f"degraded serves: {len(self.degradations)}")
        lines.append(f"slow queries: {len(self.slow_queries)}")
        for report in self.slow_queries[:10]:
            lines.append(
                f"  {report.get('path')}: {report.get('kind')} "
                f"elapsed={report.get('elapsed')}s budget={report.get('budget')}s"
            )
        if self.constraints:
            lines.append(
                "constraints: "
                f"checked={self.constraints.get('checked', 0)} "
                f"violated={self.constraints.get('violated', 0)} "
                f"refuted={self.constraints.get('refuted', 0)} "
                f"quarantined={len(self.constraints.get('quarantined', []))}"
            )
        return lines

    def as_dict(self) -> Dict[str, object]:
        return {
            "partial": self.partial,
            "stale": self.stale,
            "quarantine": self.quarantine,
            "breakers": self.breakers,
            "failed_sources": self.failed_sources,
            "skipped_sources": list(self.skipped_sources),
            "retries": self.retries,
            "recovery_events": list(self.recovery_events),
            "slow_queries": list(self.slow_queries),
            "degradations": list(self.degradations),
            "constraints": dict(self.constraints),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        # Deferred import: repository.atomic pulls in the repository
        # package, which itself imports this module for recovery events.
        from ..repository.atomic import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n", "report.save")

    @classmethod
    def load(cls, path: str) -> "ResilienceReport":
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        report = cls()
        report.partial = bool(raw.get("partial", False))
        report.stale = bool(raw.get("stale", False))
        report.quarantine = dict(raw.get("quarantine", {}))
        report.breakers = dict(raw.get("breakers", {}))
        report.failed_sources = dict(raw.get("failed_sources", {}))
        report.skipped_sources = list(raw.get("skipped_sources", []))
        report.retries = dict(raw.get("retries", {}))
        report.recovery_events = list(raw.get("recovery_events", []))
        report.slow_queries = list(raw.get("slow_queries", []))
        report.degradations = list(raw.get("degradations", []))
        report.constraints = dict(raw.get("constraints", {}))
        return report
