"""Retry with exponential backoff, and per-source circuit breakers.

Both are built on an injectable :class:`Clock` so every test is
deterministic: :class:`ManualClock` never sleeps for real and makes
"60 seconds later" a single method call.  Backoff jitter comes from a
seeded RNG created per :meth:`RetryPolicy.call`, so a given policy
produces the same delay sequence every run.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple, Type


class Clock:
    """Time source + sleeper; swap in :class:`ManualClock` for tests."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time; real sleeps."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class ManualClock(Clock):
    """A clock tests drive by hand; ``sleep`` advances instantly."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        self._now += seconds


@dataclass
class RetryPolicy:
    """Exponential backoff with seeded jitter: deterministic by design.

    Delay for attempt *n* (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)`` plus up to
    ``jitter`` of itself, drawn from ``random.Random(seed)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    #: extra delay as a fraction of the computed delay (0.1 = up to +10%)
    jitter: float = 0.1
    seed: int = 0
    clock: Clock = field(default_factory=SystemClock)

    def delays(self) -> List[float]:
        """The full backoff schedule (one delay per retry, deterministic)."""
        rng = random.Random(self.seed)
        out: List[float] = []
        for attempt in range(1, self.max_attempts):
            out.append(self._delay(attempt, rng))
        return out

    def _delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        return base + rng.random() * self.jitter * base

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> object:
        """Call ``fn``, retrying on ``retry_on`` with backoff.

        ``on_retry(attempt, error, delay)`` is invoked before each sleep.
        The last failure is re-raised once attempts are exhausted.
        """
        rng = random.Random(self.seed)
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as error:
                if attempt >= self.max_attempts:
                    raise
                delay = self._delay(attempt, rng)
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                self.clock.sleep(delay)


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-source circuit breaker: stop hammering a dead source.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` is False (the mediator skips the source without
    even trying).  After ``reset_timeout`` seconds exactly *one* probe
    call is allowed (half-open); its outcome closes or re-opens the
    circuit.

    All transitions happen under one lock, so the breaker is safe to
    share across serving threads -- in particular, when the reset
    timeout elapses and many callers race into :meth:`allow`, only the
    first is admitted as the half-open probe; the rest stay rejected
    until the probe reports back.  (The old unlocked version admitted
    *every* concurrent caller during half-open, which is a thundering
    herd aimed at a source that just proved itself broken.)
    """

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        reset_timeout: float = 60.0,
        clock: Optional[Clock] = None,
    ) -> None:
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock if clock is not None else SystemClock()
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        #: lifetime counters for reports
        self.total_failures = 0
        self.times_opened = 0
        self._lock = threading.Lock()
        self._probe_in_flight = False

    def allow(self) -> bool:
        """May the protected call proceed right now?"""
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            if self.state is BreakerState.OPEN:
                assert self.opened_at is not None
                if self.clock.now() - self.opened_at >= self.reset_timeout:
                    self.state = BreakerState.HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # half-open: admit exactly one probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.state = BreakerState.CLOSED
            self.failures = 0
            self.opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self.total_failures += 1
            self._probe_in_flight = False
            if self.state is BreakerState.HALF_OPEN:
                self._open()
                return
            self.failures += 1
            if self.failures >= self.failure_threshold:
                self._open()

    def _open(self) -> None:
        # caller holds self._lock
        self.state = BreakerState.OPEN
        self.opened_at = self.clock.now()
        self.times_opened += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "state": self.state.value,
            "consecutive_failures": self.failures,
            "total_failures": self.total_failures,
            "times_opened": self.times_opened,
        }
