"""The concurrent serving tier: a real HTTP front-end for Strudel sites.

Section 7 of the paper asks for dynamic evaluation at click time; the
ROADMAP asks for "heavy traffic from millions of users".  This package
closes the network gap between the two: a threaded stdlib HTTP server
(:class:`SiteServer`) in front of the existing page machinery
(:class:`~repro.core.server.PageServer` /
:class:`~repro.core.regen.RegeneratingSite`), with

* N worker threads, each owning a warm engine, pulling connections from
  a bounded queue (:class:`~repro.serve.http.PooledHTTPServer`);
* a shared read-mostly page cache organized in immutable *generations*
  (:class:`~repro.serve.cache.GenerationCache`): readers always see one
  consistent snapshot, mutations publish a new generation atomically;
* editor mutations routed through a background :class:`Refresher`
  thread -- never the request path -- which replays the delta-driven
  incremental machinery and swaps the generation when done;
* admission control (:class:`AdmissionControl`) shedding overload with
  proper 503 semantics, and the resilience layer's circuit breaker and
  last-known-good behavior surfaced as degradation headers;
* request deadlines stamped at admission and enforced cooperatively by
  every evaluation layer (structured 504s, never a hung worker), with a
  :class:`Watchdog` thread as the backstop for requests a deadline
  failed to free, plus ``/healthz`` / ``/readyz`` probes;
* a Zipf-session traffic generator (:mod:`repro.serve.traffic`) for the
  latency-percentile benchmarks (``BENCH_SERVE.json``).
"""

from .admission import AdmissionControl
from .cache import Generation, GenerationCache, PageEntry
from .core import ServeCore
from .http import PooledHTTPServer, SiteServer
from .locks import RWLock
from .refresher import EditTicket, Refresher
from .traffic import LoadSummary, run_load, stepped_load
from .watchdog import Watchdog

__all__ = [
    "AdmissionControl",
    "EditTicket",
    "Generation",
    "GenerationCache",
    "LoadSummary",
    "PageEntry",
    "PooledHTTPServer",
    "Refresher",
    "RWLock",
    "ServeCore",
    "SiteServer",
    "Watchdog",
    "run_load",
    "stepped_load",
]
