"""Admission control: bound the work in flight, shed the rest early.

The listener consults :meth:`AdmissionControl.try_acquire` before
queueing a connection for the worker pool.  Past the limit the
connection is answered with a canned ``503 Service Unavailable`` (plus
``Retry-After``) and closed without ever touching a worker -- overload
degrades to fast, honest rejections instead of unbounded queueing.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class AdmissionControl:
    """A concurrency gate over queued-plus-in-flight connections."""

    def __init__(self, limit: Optional[int] = 64) -> None:
        #: maximum connections admitted at once (None = unlimited)
        self.limit = limit
        self._lock = threading.Lock()
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.peak = 0

    def try_acquire(self) -> bool:
        with self._lock:
            if self.limit is not None and self.in_flight >= self.limit:
                self.shed += 1
                return False
            self.in_flight += 1
            self.admitted += 1
            if self.in_flight > self.peak:
                self.peak = self.in_flight
            return True

    def release(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "limit": self.limit,
                "in_flight": self.in_flight,
                "admitted": self.admitted,
                "shed": self.shed,
                "peak": self.peak,
            }
