"""The shared page cache: immutable generations, swapped atomically.

A :class:`Generation` is one consistent snapshot of the site's pages --
the rendered bytes of every page at one data-graph epoch.  Readers
grab the current generation once per request and serve entirely from
it, so a request can never observe a torn mix of pre- and post-edit
pages: either it started before the swap and serves the old snapshot,
or after and serves the new one.

Two completeness regimes share the type:

* **complete** generations (the static backend) carry every page of the
  site up front; a lookup miss is an honest 404.
* **incomplete** generations (the dynamic backend) start empty and fill
  lazily as worker engines render pages at click time.  Fills are
  idempotent -- rendering is deterministic, so two workers racing on the
  same path write byte-identical entries -- and are dropped once the
  generation has been superseded.

The :class:`GenerationCache` holds the current generation behind a lock
used only at publish time; readers call :meth:`~GenerationCache.current`
which is a single attribute read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class PageEntry:
    """One servable response: status code, body bytes, and a degradation
    kind (``ok`` | ``stale`` | ``error-page`` | ``not-found``)."""

    status: int
    body: bytes
    kind: str = "ok"


class Generation:
    """One immutable-once-published snapshot of the site's pages."""

    def __init__(
        self,
        gen_id: int,
        epoch: int,
        pages: Optional[Dict[str, PageEntry]] = None,
        complete: bool = True,
        origin: str = "build",
    ) -> None:
        self.gen_id = gen_id
        #: data-graph epoch this generation is consistent with
        self.epoch = epoch
        self.complete = complete
        self.origin = origin
        self.created = time.time()
        #: set when this generation outlived a failed refresh and is
        #: being served as last-known-good (readers surface a header)
        self.stale = False
        self._pages: Dict[str, PageEntry] = pages if pages is not None else {}
        self._fill_lock = threading.Lock()
        self.fills = 0
        self.fill_races = 0

    # ------------------------------------------------------------ #

    def lookup(self, path: str) -> Optional[PageEntry]:
        return self._pages.get(path)

    def fill(self, path: str, entry: PageEntry) -> None:
        """Install a lazily rendered page (incomplete generations only).

        Renders are deterministic, so concurrent fills of the same path
        carry identical bytes; the first one wins and the race is only
        counted."""
        with self._fill_lock:
            if path in self._pages:
                self.fill_races += 1
                return
            self._pages[path] = entry
            self.fills += 1

    def paths(self) -> List[str]:
        with self._fill_lock:
            return sorted(self._pages)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @classmethod
    def from_static_pages(
        cls,
        gen_id: int,
        epoch: int,
        pages: Dict[str, str],
        origin: str = "build",
    ) -> "Generation":
        """A complete generation from a static build's filename->HTML
        map.  Every page is served at ``/<filename>``; the index page is
        additionally served at ``/``."""
        entries: Dict[str, PageEntry] = {}
        for filename, html in pages.items():
            entry = PageEntry(200, html.encode("utf-8"))
            entries["/" + filename] = entry
            if filename == "index.html":
                entries["/"] = entry
        return cls(gen_id, epoch, entries, complete=True, origin=origin)


class GenerationCache:
    """Holds the current generation; readers see swaps atomically."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Generation] = None
        self.published = 0
        #: (gen_id, origin, pages, unix time) of recent publishes
        self.history: List[Tuple[int, str, int, float]] = []
        self._history_cap = 64

    def current(self) -> Generation:
        generation = self._current
        if generation is None:
            raise RuntimeError("no generation published yet")
        return generation

    def publish(self, generation: Generation) -> Optional[Generation]:
        """Atomically swap in ``generation``; returns the one it
        replaced (now drained: no new reader can observe it)."""
        with self._lock:
            previous = self._current
            self._current = generation
            self.published += 1
            self.history.append(
                (
                    generation.gen_id,
                    generation.origin,
                    generation.page_count,
                    generation.created,
                )
            )
            del self.history[: -self._history_cap]
            return previous

    def stats(self) -> Dict[str, object]:
        generation = self._current
        return {
            "published": self.published,
            "current_generation": generation.gen_id if generation else None,
            "current_epoch": generation.epoch if generation else None,
            "current_pages": generation.page_count if generation else 0,
            "current_origin": generation.origin if generation else None,
            "current_complete": generation.complete if generation else None,
            "current_stale": generation.stale if generation else None,
            "fills": generation.fills if generation else 0,
        }
