"""The serving engine: worker slots, generation publishing, refresh.

:class:`ServeCore` is the piece between the HTTP layer and the page
machinery.  It owns

* the **backend**: either a warm
  :class:`~repro.core.regen.RegeneratingSite` (static mode, the
  default) whose complete page set becomes each generation, or -- in
  dynamic mode -- nothing but the data graph, with pages rendered at
  click time by per-worker :class:`~repro.core.server.PageServer`
  engines and cached into the current generation;
* one **worker slot** per pool thread, holding that worker's warm
  engine and its private metrics (no cross-thread counter races by
  construction -- counters are merged only at ``stats()`` time);
* the **swap lock** (:class:`~repro.serve.locks.RWLock`): mutations and
  generation publishes happen under the write side, dynamic-mode cache
  misses render under the read side, and cache hits touch no lock at
  all;
* the **last-known-good contract**: a failed refresh never unpublishes
  anything -- the previous generation keeps serving, marked stale, and
  the next successful refresh heals through a full rebuild.

``apply_edit`` is meant to be called from exactly one thread (the
:class:`~repro.serve.refresher.Refresher`); request threads only ever
call ``handle``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.regen import RegeneratingSite
from ..core.schema import SiteSchema
from ..core.server import PageServer, _deadline_page
from ..errors import DeadlineExceeded
from ..graph import Graph
from ..resilience.chaos import maybe_fail
from ..resilience.deadline import current_deadline
from ..resilience.report import record_slow_query
from ..struql.ast import Program, Query
from ..struql.parser import parse
from ..template import TemplateSet
from .cache import Generation, GenerationCache, PageEntry
from .locks import RWLock

#: An editor mutation: receives the backend's mutation surface -- the
#: RegeneratingSite in static mode, the raw data Graph in dynamic mode.
Edit = Callable[[object], object]


@dataclass
class WorkerMetrics:
    """Per-worker request counters (owned by one thread, merged on
    read -- see the thread-safety notes in docs/API.md)."""

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    dynamic_renders: int = 0
    not_found: int = 0
    degraded: int = 0
    deadline_exceeded: int = 0

    def merge(self, other: "WorkerMetrics") -> None:
        for spec in fields(self):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )


class _WorkerSlot:
    """One pool worker's warm state: engine + private metrics.

    The ``inflight_*`` fields are the watchdog's window into the
    worker: the owning thread writes them (path + monotonic start +
    deadline) on request entry and clears the path on exit; the
    watchdog thread only reads.  Torn reads are harmless -- the
    watchdog re-checks on its next scan.
    """

    __slots__ = ("engine", "metrics", "inflight_path", "inflight_since", "inflight_deadline")

    def __init__(self) -> None:
        self.engine: Optional[PageServer] = None
        self.metrics = WorkerMetrics()
        self.inflight_path: Optional[str] = None
        self.inflight_since: float = 0.0
        self.inflight_deadline = None


def _not_found_entry(path: str) -> PageEntry:
    from ..core.server import _not_found_page

    return PageEntry(404, _not_found_page(path).encode("utf-8"), "not-found")


def default_roots(program: Union[Program, Query, str]) -> List[str]:
    """The site's entry points: every zero-argument Skolem function, in
    schema order (matches both the static generator's index page and the
    dynamic server's root routing)."""
    if isinstance(program, str):
        program = parse(program)
    if isinstance(program, Query):
        program = Program(queries=[program])
    schema = SiteSchema.from_program(program)
    return [
        f"{function}()"
        for function in schema.functions
        if all(not c.args for c in schema.creations_of(function))
    ]


class ServeCore:
    """Everything the HTTP tier needs, minus the sockets."""

    def __init__(
        self,
        program: Union[Program, Query, str],
        data_graph: Graph,
        templates: TemplateSet,
        roots: Optional[Sequence[str]] = None,
        dynamic: bool = False,
        use_blocks: bool = True,
        site_name: str = "site",
    ) -> None:
        if isinstance(program, str):
            program = parse(program)
        if isinstance(program, Query):
            program = Program(queries=[program])
        self.program = program
        self.data_graph = data_graph
        self.templates = templates
        self.dynamic_mode = dynamic
        self.use_blocks = use_blocks
        self.site_name = site_name
        self.roots = list(roots) if roots else default_roots(program)
        self.swap_lock = RWLock()
        self.cache = GenerationCache()
        self._gen_counter = 0
        self._slots: Dict[int, _WorkerSlot] = {}
        self._slots_lock = threading.Lock()
        #: (checked_at, verdict) of the last db integrity probe
        self._integrity_cache: Optional[tuple] = None
        #: a failed refresh poisons the warm backend; heal via rebuild
        self._needs_rebuild = False
        self.refreshes_applied = 0
        self.refreshes_failed = 0
        self.rebuilds = 0
        self.regen: Optional[RegeneratingSite] = None
        if not self.dynamic_mode:
            self.regen = RegeneratingSite(
                program,
                data_graph,
                templates,
                self.roots,
                site_name=site_name,
                use_blocks=use_blocks,
            )
            self.cache.publish(self._generation_from_regen("build"))
        else:
            self.cache.publish(
                Generation(
                    self._next_gen_id(),
                    data_graph.epoch,
                    complete=False,
                    origin="build",
                )
            )

    # ------------------------------------------------------------ #
    # request path (worker threads)

    def handle(self, path: str, worker_id: int = 0):
        """Serve one path; returns ``(PageEntry, Generation)``.

        Static mode is lock-free: one generation read, one dict lookup.
        Dynamic mode renders misses under the read lock so a render can
        never interleave with a mutation.  A render cancelled by the
        request deadline becomes a structured 504 entry (never cached,
        never a traceback) and a slow-query report.
        """
        slot = self._slot(worker_id)
        slot.metrics.requests += 1
        path = path.split("?", 1)[0] or "/"
        if not self.dynamic_mode:
            generation = self.cache.current()
            entry = generation.lookup(path)
            if entry is None:
                slot.metrics.not_found += 1
                return _not_found_entry(path), generation
            slot.metrics.cache_hits += 1
            if generation.stale:
                slot.metrics.degraded += 1
            return entry, generation
        slot.inflight_since = time.monotonic()
        slot.inflight_deadline = current_deadline()
        slot.inflight_path = path
        try:
            with self.swap_lock.read_locked():
                # re-read under the lock: a publish cannot now intervene, so
                # the generation and the graph state agree for this render
                generation = self.cache.current()
                entry = generation.lookup(path)
                if entry is not None:
                    slot.metrics.cache_hits += 1
                    return entry, generation
                slot.metrics.cache_misses += 1
                try:
                    # engine warm-up runs the site's root queries, so it
                    # must be inside the deadline guard too: a worker's
                    # first request on an adversarial site can blow the
                    # budget before the render even starts
                    engine = self._engine(slot)
                    engine.refresh()
                    response = engine.get_response(path)
                except DeadlineExceeded as error:
                    return self._deadline_entry(slot, path, error), generation
                entry = PageEntry(
                    response.status, response.body.encode("utf-8"), response.kind
                )
                slot.metrics.dynamic_renders += 1
                if response.kind != "ok":
                    if response.kind != "not-found":
                        slot.metrics.degraded += 1
                    else:
                        slot.metrics.not_found += 1
                if entry.status == 200 and entry.kind == "ok":
                    if self.cache.current() is generation:
                        generation.fill(path, entry)
                return entry, generation
        finally:
            slot.inflight_path = None

    def _deadline_entry(
        self, slot: "_WorkerSlot", path: str, error: DeadlineExceeded
    ) -> PageEntry:
        """Map a cancelled render to a 504 entry + a slow-query report."""
        slot.metrics.deadline_exceeded += 1
        operator_stats = None
        engine = slot.engine
        if engine is not None:
            ops = getattr(engine.dynamic._engine, "last_operator_stats", None)
            if ops:
                operator_stats = [
                    {
                        "condition": op.condition,
                        "rows_in": op.rows_in,
                        "rows_out": op.rows_out,
                    }
                    for op in ops
                ]
        record_slow_query(
            path,
            error.elapsed,
            error.budget,
            site=error.site,
            operator_stats=operator_stats,
            kind="deadline",
        )
        return PageEntry(
            504, _deadline_page(path, error).encode("utf-8"), "deadline"
        )

    def known_paths(self) -> List[str]:
        """The paths the current generation can serve from cache (in
        dynamic mode this grows as pages are discovered)."""
        paths = self.cache.current().paths()
        if self.dynamic_mode and not paths:
            # cold dynamic cache: expose the root paths so traffic has
            # somewhere to start
            with self._slots_lock:
                for slot in self._slots.values():
                    if slot.engine is not None:
                        return slot.engine.known_paths()
            return ["/"]
        return paths

    # ------------------------------------------------------------ #
    # refresh path (the refresher thread only)

    def apply_edit(self, edit: Edit) -> Dict[str, object]:
        """Apply one editor mutation off the request path and publish
        the next generation.  Raises on failure; the caller is expected
        to call :meth:`recover` (the previous generation stays current
        and keeps serving either way)."""
        with self.swap_lock.write_locked():
            maybe_fail("serve.refresh.apply")
            if not self.dynamic_mode:
                assert self.regen is not None
                rebuilt = False
                if self._needs_rebuild:
                    self.regen.rebuild()
                    self._needs_rebuild = False
                    self.rebuilds += 1
                    rebuilt = True
                edit(self.regen)
                maybe_fail("serve.refresh.publish")
                generation = self._generation_from_regen(
                    "rebuild" if rebuilt else "refresh"
                )
                self.cache.publish(generation)
                self.refreshes_applied += 1
                report = self.regen.last_report
                return {
                    "generation": generation.gen_id,
                    "epoch": generation.epoch,
                    "coarse": report.coarse or rebuilt,
                    "pages_rerendered": report.pages_rerendered,
                    "pages_added": report.pages_added,
                    "pages_retained": report.pages_retained,
                }
            edit(self.data_graph)
            maybe_fail("serve.refresh.publish")
            generation = Generation(
                self._next_gen_id(),
                self.data_graph.epoch,
                complete=False,
                origin="refresh",
            )
            self.cache.publish(generation)
            self.refreshes_applied += 1
            return {"generation": generation.gen_id, "epoch": generation.epoch}

    def recover(self) -> None:
        """After a failed :meth:`apply_edit`: keep serving, honestly.

        Static mode: the current (pre-edit) generation is still
        internally consistent -- mark it stale (last-known-good) and
        schedule a full rebuild for the next successful edit, because
        the warm regenerator may hold a half-applied mutation.

        Dynamic mode: the data graph itself may be half-mutated, so the
        old incomplete generation must not keep lazily rendering against
        it -- publish a fresh (empty, stale-marked) generation pinned to
        the graph's current state.
        """
        with self.swap_lock.write_locked():
            self.refreshes_failed += 1
            if not self.dynamic_mode:
                self._needs_rebuild = True
                self.cache.current().stale = True
                return
            generation = Generation(
                self._next_gen_id(),
                self.data_graph.epoch,
                complete=False,
                origin="recovery",
            )
            generation.stale = True
            self.cache.publish(generation)

    # ------------------------------------------------------------ #

    def _next_gen_id(self) -> int:
        self._gen_counter += 1
        return self._gen_counter

    def _generation_from_regen(self, origin: str) -> Generation:
        assert self.regen is not None
        return Generation.from_static_pages(
            self._next_gen_id(),
            self.data_graph.epoch,
            self.regen.pages,
            origin=origin,
        )

    def _slot(self, worker_id: int) -> _WorkerSlot:
        slot = self._slots.get(worker_id)
        if slot is None:
            with self._slots_lock:
                slot = self._slots.setdefault(worker_id, _WorkerSlot())
        return slot

    def _engine(self, slot: _WorkerSlot) -> PageServer:
        if slot.engine is None:
            slot.engine = PageServer(
                self.program,
                self.data_graph,
                self.templates,
                use_blocks=self.use_blocks,
            )
        return slot.engine

    # ------------------------------------------------------------ #

    def worker_metrics(self) -> WorkerMetrics:
        """All workers' counters merged into one snapshot."""
        merged = WorkerMetrics()
        with self._slots_lock:
            slots = list(self._slots.values())
        for slot in slots:
            merged.merge(slot.metrics)
        return merged

    def stats(self) -> Dict[str, object]:
        merged = self.worker_metrics()
        out: Dict[str, object] = {
            "mode": "dynamic" if self.dynamic_mode else "static",
            "workers_seen": len(self._slots),
            "requests": merged.requests,
            "cache_hits": merged.cache_hits,
            "cache_misses": merged.cache_misses,
            "dynamic_renders": merged.dynamic_renders,
            "not_found": merged.not_found,
            "degraded": merged.degraded,
            "deadline_exceeded": merged.deadline_exceeded,
            "refreshes_applied": self.refreshes_applied,
            "refreshes_failed": self.refreshes_failed,
            "rebuilds": self.rebuilds,
            "generations": self.cache.stats(),
        }
        if self.dynamic_mode:
            click = None
            with self._slots_lock:
                engines = [s.engine for s in self._slots.values() if s.engine]
            if engines:
                from ..core.incremental import ClickMetrics

                click = ClickMetrics()
                for engine in engines:
                    click.merge(engine.dynamic.metrics)
            if click is not None:
                out["click_metrics"] = {
                    "expansions": click.expansions,
                    "queries_evaluated": click.queries_evaluated,
                    "cache_hits": click.cache_hits,
                    "degraded_serves": click.degraded_serves,
                    "error_pages": click.error_pages,
                    "deadline_exceeded": click.deadline_exceeded,
                }
        store = self.sql_store()
        if store is not None:
            out["sql_interrupts"] = store.interrupts
        return out

    # ------------------------------------------------------------ #
    # health surface

    def sql_store(self):
        """The backing :class:`~repro.repository.sql.SqlStore` when the
        data graph is SQL-backed, else ``None`` (the watchdog and the
        readiness probe use this to interrupt / integrity-check it)."""
        return getattr(self.data_graph, "_store", None)

    def db_integrity(self, max_age_s: float = 30.0) -> bool:
        """Cached ``PRAGMA quick_check`` verdict for the readiness probe.

        Memory-backed graphs are always sound.  The check is re-run at
        most every ``max_age_s`` seconds so ``/readyz`` polling stays
        cheap.
        """
        store = self.sql_store()
        if store is None:
            return True
        now = time.monotonic()
        cached = self._integrity_cache
        if cached is not None and now - cached[0] < max_age_s:
            return cached[1]
        verdict = not store.integrity_check()
        self._integrity_cache = (now, verdict)
        return verdict

    def inflight(self) -> List[Dict[str, object]]:
        """The watchdog's view: one record per worker with a request
        currently in flight (dynamic renders only -- static lookups are
        too fast to observe)."""
        now = time.monotonic()
        with self._slots_lock:
            slots = list(self._slots.items())
        out: List[Dict[str, object]] = []
        for worker_id, slot in slots:
            path = slot.inflight_path
            if path is None:
                continue
            deadline = slot.inflight_deadline
            out.append(
                {
                    "worker": worker_id,
                    "path": path,
                    "since": slot.inflight_since,
                    "elapsed_s": now - slot.inflight_since,
                    "budget_s": deadline.budget if deadline is not None else None,
                }
            )
        return out
