"""The HTTP front-end: a bounded worker pool over stdlib sockets.

:class:`PooledHTTPServer` replaces ``ThreadingHTTPServer``'s
thread-per-connection model with N long-lived worker threads pulling
admitted connections from a queue.  Each worker owns a slot in the
:class:`~repro.serve.core.ServeCore` -- its warm engine and private
counters -- so the hot path shares nothing mutable but the generation
cache (immutable snapshots) and the plan cache (internally locked).

HTTP semantics of degradation:

* ``200`` with ``X-Strudel-Degraded: stale`` / ``stale-generation`` --
  last-known-good bytes are being served after a failure;
* ``404`` for paths the site does not define (a real status, not the
  in-process ``KeyError`` the library API raises);
* ``500`` for render faults with no stale copy (a structured error
  page, never a traceback);
* ``503`` with ``Retry-After`` when admission control sheds load, sent
  without occupying a worker;
* ``504`` when a request's :class:`~repro.resilience.Deadline` expires
  mid-render -- a structured timeout page, never a traceback.

Deadlines are stamped at *admission*: ``process_request`` creates the
budget when the connection enters the worker queue, so queue wait
counts against it, and the worker installs it as the ambient deadline
every evaluation layer ticks against.  Keep-alive connections re-arm a
fresh budget per request (the worker would otherwise be pinned to one
slow client's clock) and are bounded by an idle timeout plus a
max-requests-per-connection cap so no worker is held hostage by an
idle or chatty client.

``/healthz`` answers liveness (workers running), ``/readyz`` answers
readiness (generation fresh, refresher breaker closed, queue bounded,
database integrity) with a 503 when not ready.

Every response carries ``X-Strudel-Generation`` so clients (and the
torn-mix property test) can see exactly which snapshot answered.
"""

from __future__ import annotations

import json
import queue
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..resilience.deadline import Deadline, install_deadline
from .admission import AdmissionControl
from .core import ServeCore
from .refresher import EditTicket, Refresher
from .watchdog import Watchdog

_SHED_BODY = b"<html><body><h1>503 Service Unavailable</h1></body></html>\n"
_SHED_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: text/html; charset=utf-8\r\n"
    b"Content-Length: " + str(len(_SHED_BODY)).encode() + b"\r\n"
    b"Retry-After: 1\r\n"
    b"Connection: close\r\n"
    b"\r\n" + _SHED_BODY
)


class ServeHandler(BaseHTTPRequestHandler):
    """One request: generation lookup, occasionally a dynamic render."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    #: without these, each response costs a Nagle/delayed-ACK stall
    #: (~40ms) because status line, headers, and body go out as
    #: separate tiny segments; buffer the writes and disable Nagle so
    #: a response is one segment and latency is the handler's, not TCP's
    disable_nagle_algorithm = True
    wbufsize = 64 * 1024

    def handle(self) -> None:
        """Keep-alive loop with an idle timeout.

        The stdlib loops ``handle_one_request`` until
        ``close_connection``, blocking on the request line under the
        *request* timeout -- so one idle keep-alive client pins a pool
        worker for the full request budget between every request.
        Here, the wait for each subsequent request line runs under the
        much shorter ``idle_timeout`` (``handle_one_request`` turns the
        ``TimeoutError`` into a clean close); ``do_GET`` restores the
        request timeout once a request line actually arrives.
        """
        server: "PooledHTTPServer" = self.server  # type: ignore[assignment]
        self.requests_served = 0
        self.close_connection = True
        self.handle_one_request()
        while not self.close_connection:
            self.connection.settimeout(server.idle_timeout)
            self.handle_one_request()

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        server: "PooledHTTPServer" = self.server  # type: ignore[assignment]
        self.connection.settimeout(server.request_timeout)
        self.requests_served = getattr(self, "requests_served", 0) + 1
        if self.requests_served > 1 and server.deadline_budget is not None:
            # the admission-stamped deadline covered queue wait plus the
            # first request; each later keep-alive request gets a fresh one
            install_deadline(Deadline(server.deadline_budget))
        path = urlsplit(self.path).path or "/"
        if path == "/_stats":
            self._send_json(server.stats())
            return
        if path == "/_paths":
            self._send_json(server.core.known_paths())
            return
        if path == "/_health":
            self._send_json({"ok": True})
            return
        if path == "/healthz":
            self._send_json(server.health())
            return
        if path == "/readyz":
            ready, detail = server.readiness()
            self._send_json(detail, status=200 if ready else 503)
            return
        entry, generation = server.core.handle(path, worker_id=self._worker_id())
        body = entry.body
        self.send_response(entry.status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Strudel-Generation", str(generation.gen_id))
        if entry.kind not in ("ok", "not-found"):
            self.send_header("X-Strudel-Degraded", entry.kind)
        elif generation.stale:
            self.send_header("X-Strudel-Degraded", "stale-generation")
        if self._should_close(server):
            self.close_connection = True
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _should_close(self, server: "PooledHTTPServer") -> bool:
        return server.draining or (
            getattr(self, "requests_served", 0) >= server.max_requests_per_connection
        )

    def _send_json(self, payload: object, status: int = 200) -> None:
        server: "PooledHTTPServer" = self.server  # type: ignore[assignment]
        body = json.dumps(payload, indent=2, sort_keys=True, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._should_close(server):
            self.close_connection = True
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _worker_id(self) -> int:
        server: "PooledHTTPServer" = self.server  # type: ignore[assignment]
        return getattr(server.local, "worker_id", 0)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging is the metrics' job, not stderr's


class PooledHTTPServer(socketserver.TCPServer):
    """A TCP server whose connections are handled by a fixed pool."""

    allow_reuse_address = True
    request_queue_size = 128
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        core: ServeCore,
        workers: int = 4,
        admission_limit: Optional[int] = 64,
        request_timeout: float = 10.0,
        deadline_budget: Optional[float] = 5.0,
        idle_timeout: float = 5.0,
        max_requests_per_connection: int = 100,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.core = core
        self.workers = max(1, workers)
        self.admission = AdmissionControl(admission_limit)
        self.request_timeout = request_timeout
        #: per-request evaluation budget; None disables deadlines
        self.deadline_budget = deadline_budget
        self.idle_timeout = idle_timeout
        self.max_requests_per_connection = max(1, max_requests_per_connection)
        self.local = threading.local()
        self.draining = False
        self.started_at = time.time()
        self.refresher: Optional[Refresher] = None
        self.watchdog: Optional[Watchdog] = None
        self._tasks: "queue.Queue[Optional[Tuple[socket.socket, object, Optional[Deadline]]]]" = (
            queue.Queue()
        )
        self._worker_threads: List[threading.Thread] = []

    # ------------------------------------------------------------ #
    # listener side

    def process_request(self, request, client_address) -> None:
        """Admit into the worker queue, or shed with a canned 503
        without ever occupying a worker.  Admitted connections are
        stamped with their deadline *here*, so time spent waiting in
        the queue counts against the budget."""
        if self.draining or not self.admission.try_acquire():
            self._shed(request)
            return
        deadline = (
            Deadline(self.deadline_budget) if self.deadline_budget is not None else None
        )
        self._tasks.put((request, client_address, deadline))

    def _shed(self, request) -> None:
        try:
            request.sendall(_SHED_RESPONSE)
        except OSError:
            pass
        self.shutdown_request(request)

    # ------------------------------------------------------------ #
    # worker side

    def start_workers(self) -> None:
        for worker_id in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(worker_id,),
                name=f"repro-serve-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)

    def _worker_loop(self, worker_id: int) -> None:
        self.local.worker_id = worker_id
        while True:
            item = self._tasks.get()
            if item is None:
                return
            request, client_address, deadline = item
            try:
                request.settimeout(self.request_timeout)
                install_deadline(deadline)
                self.finish_request(request, client_address)
            except Exception:  # connection-level failure: drop, keep serving
                pass
            finally:
                install_deadline(None)
                self.shutdown_request(request)
                self.admission.release()

    def drain_workers(self, timeout: float = 10.0) -> bool:
        """Graceful worker shutdown: pending connections already in the
        queue are served first (FIFO), then each worker exits."""
        self.draining = True
        for _ in self._worker_threads:
            self._tasks.put(None)
        deadline = time.monotonic() + timeout
        clean = True
        for thread in self._worker_threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            clean = clean and not thread.is_alive()
        return clean

    # ------------------------------------------------------------ #
    # health surface

    def health(self) -> Dict[str, object]:
        """Liveness: is the process able to take work at all?"""
        workers_alive = sum(1 for t in self._worker_threads if t.is_alive())
        return {
            "ok": workers_alive > 0,
            "workers_alive": workers_alive,
            "workers": self.workers,
            "queue_depth": self._tasks.qsize(),
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    def readiness(self) -> Tuple[bool, Dict[str, object]]:
        """Readiness: should a load balancer route traffic here *now*?

        Unlike liveness this goes false-and-back: while draining, while
        the refresher breaker is open (edits failing -- we may be
        serving stale), while the queue is badly backed up, or when the
        backing database fails its integrity check.
        """
        generation = self.core.cache.current()
        queue_bound = self.workers * 8
        checks: Dict[str, bool] = {
            "not_draining": not self.draining,
            "workers_alive": all(t.is_alive() for t in self._worker_threads),
            "generation_fresh": not generation.stale,
            "queue_bounded": self._tasks.qsize() <= queue_bound,
            "db_integrity": self.core.db_integrity(),
        }
        if self.refresher is not None:
            checks["refresher_breaker_closed"] = (
                self.refresher.breaker.state.value != "open"
            )
        ready = all(checks.values())
        detail: Dict[str, object] = {
            "ready": ready,
            "checks": checks,
            "generation": generation.gen_id,
        }
        return ready, detail

    # ------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "queue_depth": self._tasks.qsize(),
            "draining": self.draining,
            "deadline_budget_s": self.deadline_budget,
            "admission": self.admission.stats(),
            "core": self.core.stats(),
        }
        if self.refresher is not None:
            payload["refresher"] = self.refresher.stats()
        if self.watchdog is not None:
            payload["watchdog"] = self.watchdog.stats()
        return payload


class SiteServer:
    """The user-facing bundle: core + pool + refresher + accept loop."""

    def __init__(
        self,
        core: ServeCore,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        admission_limit: Optional[int] = 64,
        request_timeout: float = 10.0,
        deadline_budget: Optional[float] = 5.0,
        idle_timeout: float = 5.0,
        max_requests_per_connection: int = 100,
        with_refresher: bool = True,
        with_watchdog: bool = True,
    ) -> None:
        self.core = core
        self.httpd = PooledHTTPServer(
            (host, port),
            core,
            workers=workers,
            admission_limit=admission_limit,
            request_timeout=request_timeout,
            deadline_budget=deadline_budget,
            idle_timeout=idle_timeout,
            max_requests_per_connection=max_requests_per_connection,
        )
        self.refresher = Refresher(core) if with_refresher else None
        self.httpd.refresher = self.refresher
        self.watchdog = Watchdog(core) if with_watchdog else None
        self.httpd.watchdog = self.watchdog
        self._accept_thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------ #

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SiteServer":
        if self._started:
            return self
        self.httpd.start_workers()
        if self.refresher is not None:
            self.refresher.start()
        if self.watchdog is not None:
            self.watchdog.start()
        self._accept_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._accept_thread.start()
        self._started = True
        return self

    def submit_edit(self, edit) -> EditTicket:
        if self.refresher is None:
            raise RuntimeError("server started without a refresher")
        return self.refresher.submit(edit)

    def stop(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, serve what is queued,
        drain in-flight requests, then stop the refresher and watchdog.

        Returns True only when *every* stage came down cleanly --
        workers drained, refresher joined, watchdog joined -- so
        callers (``repro serve``) can turn an unclean drain into a
        nonzero exit status.
        """
        if not self._started:
            return True
        self.httpd.shutdown()  # stop the accept loop
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        clean = self.httpd.drain_workers(timeout)
        if self.refresher is not None:
            clean = self.refresher.stop(timeout) and clean
        if self.watchdog is not None:
            clean = self.watchdog.stop(timeout) and clean
        self.httpd.server_close()
        self._started = False
        return clean

    def stats(self) -> Dict[str, object]:
        return self.httpd.stats()
