"""The HTTP front-end: a bounded worker pool over stdlib sockets.

:class:`PooledHTTPServer` replaces ``ThreadingHTTPServer``'s
thread-per-connection model with N long-lived worker threads pulling
admitted connections from a queue.  Each worker owns a slot in the
:class:`~repro.serve.core.ServeCore` -- its warm engine and private
counters -- so the hot path shares nothing mutable but the generation
cache (immutable snapshots) and the plan cache (internally locked).

HTTP semantics of degradation:

* ``200`` with ``X-Strudel-Degraded: stale`` / ``stale-generation`` --
  last-known-good bytes are being served after a failure;
* ``404`` for paths the site does not define (a real status, not the
  in-process ``KeyError`` the library API raises);
* ``500`` for render faults with no stale copy (a structured error
  page, never a traceback);
* ``503`` with ``Retry-After`` when admission control sheds load, sent
  without occupying a worker.

Every response carries ``X-Strudel-Generation`` so clients (and the
torn-mix property test) can see exactly which snapshot answered.
"""

from __future__ import annotations

import json
import queue
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from .admission import AdmissionControl
from .core import ServeCore
from .refresher import EditTicket, Refresher

_SHED_BODY = b"<html><body><h1>503 Service Unavailable</h1></body></html>\n"
_SHED_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: text/html; charset=utf-8\r\n"
    b"Content-Length: " + str(len(_SHED_BODY)).encode() + b"\r\n"
    b"Retry-After: 1\r\n"
    b"Connection: close\r\n"
    b"\r\n" + _SHED_BODY
)


class ServeHandler(BaseHTTPRequestHandler):
    """One request: generation lookup, occasionally a dynamic render."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    #: without these, each response costs a Nagle/delayed-ACK stall
    #: (~40ms) because status line, headers, and body go out as
    #: separate tiny segments; buffer the writes and disable Nagle so
    #: a response is one segment and latency is the handler's, not TCP's
    disable_nagle_algorithm = True
    wbufsize = 64 * 1024

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        server: "PooledHTTPServer" = self.server  # type: ignore[assignment]
        path = urlsplit(self.path).path or "/"
        if path == "/_stats":
            self._send_json(server.stats())
            return
        if path == "/_paths":
            self._send_json(server.core.known_paths())
            return
        if path == "/_health":
            self._send_json({"ok": True})
            return
        entry, generation = server.core.handle(path, worker_id=self._worker_id())
        body = entry.body
        self.send_response(entry.status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Strudel-Generation", str(generation.gen_id))
        if entry.kind not in ("ok", "not-found"):
            self.send_header("X-Strudel-Degraded", entry.kind)
        elif generation.stale:
            self.send_header("X-Strudel-Degraded", "stale-generation")
        if server.draining:
            self.close_connection = True
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: object) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True, default=str).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _worker_id(self) -> int:
        server: "PooledHTTPServer" = self.server  # type: ignore[assignment]
        return getattr(server.local, "worker_id", 0)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging is the metrics' job, not stderr's


class PooledHTTPServer(socketserver.TCPServer):
    """A TCP server whose connections are handled by a fixed pool."""

    allow_reuse_address = True
    request_queue_size = 128
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        core: ServeCore,
        workers: int = 4,
        admission_limit: Optional[int] = 64,
        request_timeout: float = 10.0,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.core = core
        self.workers = max(1, workers)
        self.admission = AdmissionControl(admission_limit)
        self.request_timeout = request_timeout
        self.local = threading.local()
        self.draining = False
        self.started_at = time.time()
        self.refresher: Optional[Refresher] = None
        self._tasks: "queue.Queue[Optional[Tuple[socket.socket, object]]]" = (
            queue.Queue()
        )
        self._worker_threads: List[threading.Thread] = []

    # ------------------------------------------------------------ #
    # listener side

    def process_request(self, request, client_address) -> None:
        """Admit into the worker queue, or shed with a canned 503
        without ever occupying a worker."""
        if self.draining or not self.admission.try_acquire():
            self._shed(request)
            return
        self._tasks.put((request, client_address))

    def _shed(self, request) -> None:
        try:
            request.sendall(_SHED_RESPONSE)
        except OSError:
            pass
        self.shutdown_request(request)

    # ------------------------------------------------------------ #
    # worker side

    def start_workers(self) -> None:
        for worker_id in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(worker_id,),
                name=f"repro-serve-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)

    def _worker_loop(self, worker_id: int) -> None:
        self.local.worker_id = worker_id
        while True:
            item = self._tasks.get()
            if item is None:
                return
            request, client_address = item
            try:
                request.settimeout(self.request_timeout)
                self.finish_request(request, client_address)
            except Exception:  # connection-level failure: drop, keep serving
                pass
            finally:
                self.shutdown_request(request)
                self.admission.release()

    def drain_workers(self, timeout: float = 10.0) -> bool:
        """Graceful worker shutdown: pending connections already in the
        queue are served first (FIFO), then each worker exits."""
        self.draining = True
        for _ in self._worker_threads:
            self._tasks.put(None)
        deadline = time.monotonic() + timeout
        clean = True
        for thread in self._worker_threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            clean = clean and not thread.is_alive()
        return clean

    # ------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "queue_depth": self._tasks.qsize(),
            "draining": self.draining,
            "admission": self.admission.stats(),
            "core": self.core.stats(),
        }
        if self.refresher is not None:
            payload["refresher"] = self.refresher.stats()
        return payload


class SiteServer:
    """The user-facing bundle: core + pool + refresher + accept loop."""

    def __init__(
        self,
        core: ServeCore,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        admission_limit: Optional[int] = 64,
        request_timeout: float = 10.0,
        with_refresher: bool = True,
    ) -> None:
        self.core = core
        self.httpd = PooledHTTPServer(
            (host, port),
            core,
            workers=workers,
            admission_limit=admission_limit,
            request_timeout=request_timeout,
        )
        self.refresher = Refresher(core) if with_refresher else None
        self.httpd.refresher = self.refresher
        self._accept_thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------ #

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SiteServer":
        if self._started:
            return self
        self.httpd.start_workers()
        if self.refresher is not None:
            self.refresher.start()
        self._accept_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._accept_thread.start()
        self._started = True
        return self

    def submit_edit(self, edit) -> EditTicket:
        if self.refresher is None:
            raise RuntimeError("server started without a refresher")
        return self.refresher.submit(edit)

    def stop(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, serve what is queued,
        drain in-flight requests, then stop the refresher."""
        if not self._started:
            return True
        self.httpd.shutdown()  # stop the accept loop
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        clean = self.httpd.drain_workers(timeout)
        if self.refresher is not None:
            self.refresher.stop(timeout)
        self.httpd.server_close()
        self._started = False
        return clean

    def stats(self) -> Dict[str, object]:
        return self.httpd.stats()
