"""A writer-preference readers-writer lock for the serving tier.

The serve hot path is read-mostly: cache hits never take this lock at
all (generations are immutable once published), and only dynamic-mode
cache *misses* hold the read side while they render against the shared
data graph.  The single refresher thread takes the write side to apply
editor mutations and publish the next generation.  Writer preference --
new readers queue behind a waiting writer -- keeps a steady request
stream from starving edit propagation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Many concurrent readers XOR one writer; waiting writers bar new
    readers so edits cannot starve under load."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False

    # ------------------------------------------------------------ #

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------ #

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
