"""The background refresher: editor mutations never run on the request
path.

Edits are submitted as callables and queue up for a single daemon
thread, which applies them through
:meth:`~repro.serve.core.ServeCore.apply_edit` -- the delta-driven
selective re-render plus an atomic generation publish.  Each submission
returns an :class:`EditTicket` the caller can wait on; the ticket
records the end-to-end *propagation latency* (submit to publish), which
is the number the refresh-under-load benchmark reports.

Failure semantics come from the resilience layer: a failing edit trips
a :class:`~repro.resilience.retry.CircuitBreaker`; while it is open,
further edits are rejected outright instead of hammering a broken
pipeline, and the previous generation keeps serving as last-known-good
(see :meth:`ServeCore.recover`).  The thread itself never dies on an
edit failure -- and if it is killed outright (the chaos scenario), the
published generation simply keeps serving.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

from ..resilience.retry import CircuitBreaker
from .core import Edit, ServeCore

_STOP = object()


class EditTicket:
    """A handle on one submitted edit."""

    def __init__(self) -> None:
        self.submitted_at = time.perf_counter()
        self.done = threading.Event()
        self.applied = False
        self.error: Optional[str] = None
        #: submit-to-publish latency in seconds (None if not applied)
        self.propagation_s: Optional[float] = None
        self.info: Dict[str, object] = {}

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done.wait(timeout)


class Refresher(threading.Thread):
    """One daemon thread consuming the edit queue."""

    def __init__(
        self,
        core: ServeCore,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
    ) -> None:
        super().__init__(name="repro-serve-refresher", daemon=True)
        self.core = core
        self.queue: "queue.Queue[object]" = queue.Queue()
        self.breaker = CircuitBreaker(
            "serve.refresher",
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset,
        )
        self.edits_applied = 0
        self.edits_failed = 0
        self.edits_rejected = 0
        self._stats_lock = threading.Lock()
        self._propagation_s: Deque[float] = deque(maxlen=1024)

    # ------------------------------------------------------------ #

    def submit(self, edit: Edit) -> EditTicket:
        ticket = EditTicket()
        self.queue.put((edit, ticket))
        return ticket

    def run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                return
            edit, ticket = item  # type: ignore[misc]
            if not self.breaker.allow():
                with self._stats_lock:
                    self.edits_rejected += 1
                ticket.error = "rejected: refresher circuit breaker open"
                ticket.done.set()
                continue
            try:
                ticket.info = self.core.apply_edit(edit)
            except Exception as error:  # never kill the thread on an edit
                self.breaker.record_failure()
                with self._stats_lock:
                    self.edits_failed += 1
                ticket.error = f"{type(error).__name__}: {error}"
                try:
                    self.core.recover()
                except Exception:  # pragma: no cover - recovery best effort
                    pass
            else:
                self.breaker.record_success()
                ticket.applied = True
                ticket.propagation_s = time.perf_counter() - ticket.submitted_at
                with self._stats_lock:
                    self.edits_applied += 1
                    self._propagation_s.append(ticket.propagation_s)
            ticket.done.set()

    def stop(self, timeout: Optional[float] = 10.0) -> bool:
        """Signal and join; True when the thread exited in time (an
        unclean refresher is folded into ``SiteServer.stop``'s verdict
        and from there into ``repro serve``'s exit status)."""
        self.queue.put(_STOP)
        if self.is_alive():
            self.join(timeout)
        return not self.is_alive()

    # ------------------------------------------------------------ #

    def propagation_latencies_ms(self) -> list:
        with self._stats_lock:
            return [round(s * 1000.0, 4) for s in self._propagation_s]

    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            latencies = sorted(self._propagation_s)
            applied = self.edits_applied
            failed = self.edits_failed
            rejected = self.edits_rejected
        summary: Dict[str, object] = {
            "edits_applied": applied,
            "edits_failed": failed,
            "edits_rejected": rejected,
            "queue_depth": self.queue.qsize(),
            "breaker_state": self.breaker.state.value,
        }
        if latencies:
            summary["propagation_ms"] = {
                "mean": round(sum(latencies) / len(latencies) * 1000.0, 4),
                "p95": round(
                    latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))]
                    * 1000.0,
                    4,
                ),
                "max": round(latencies[-1] * 1000.0, 4),
            }
        return summary
