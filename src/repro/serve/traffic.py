"""Zipf-session traffic generation and latency measurement.

The workload models real site traffic the way the serving literature
does: page popularity is Zipf-distributed (a few hot pages take most of
the clicks), and clients browse in *sessions* -- a keep-alive connection
issuing a burst of clicks, then reconnecting.  Client processes are
separate OS processes (``python -m repro.serve.traffic``), so client
work never shares the server's GIL and the measured latencies are
honest end-to-end numbers.

:func:`run_load` fans out one client process per concurrency slot,
merges their latency samples, and reduces them to p50/p95/p99 and
requests/sec; :func:`stepped_load` sweeps concurrency levels.  For
in-process smoke tests (no subprocesses), :func:`run_load_threads`
drives the same session logic from threads instead.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlsplit


def zipf_cum_weights(count: int, exponent: float = 1.1) -> List[float]:
    """Cumulative Zipf weights for ranks 1..count (rank 1 hottest)."""
    total = 0.0
    cumulative: List[float] = []
    for rank in range(1, count + 1):
        total += 1.0 / (rank ** exponent)
        cumulative.append(total)
    return cumulative


def discover_paths(url: str, timeout: float = 10.0) -> List[str]:
    """The servable path universe, from the server's ``/_paths``."""
    parts = urlsplit(url)
    connection = HTTPConnection(parts.hostname, parts.port, timeout=timeout)
    try:
        connection.request("GET", "/_paths")
        response = connection.getresponse()
        paths = json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()
    return sorted(p for p in paths if isinstance(p, str))


def run_session_client(
    url: str,
    duration: float,
    seed: int = 0,
    zipf_exponent: float = 1.1,
    session_clicks: int = 25,
    paths: Optional[Sequence[str]] = None,
    timeout: float = 10.0,
    think_s: float = 0.0,
) -> Dict[str, object]:
    """One client: keep-alive sessions of Zipf-sampled clicks until the
    deadline.  Returns counters plus every latency sample (ms).

    ``think_s`` is the pause between clicks *while holding the
    connection* -- the user reading the page.  It is what makes the
    worker pool earn its keep: a keep-alive connection pins its worker
    through the pause, so a single worker's throughput is bounded by
    1/(think + service) while N workers overlap N clients' pauses."""
    parts = urlsplit(url)
    if paths is None:
        paths = discover_paths(url, timeout=timeout)
    if not paths:
        raise RuntimeError(f"no servable paths discovered at {url}")
    rng = random.Random(seed)
    cumulative = zipf_cum_weights(len(paths), zipf_exponent)
    deadline = time.perf_counter() + duration
    latencies_ms: List[float] = []
    count = 0
    errors = 0
    status_counts: Dict[str, int] = {}
    while time.perf_counter() < deadline:
        connection = HTTPConnection(parts.hostname, parts.port, timeout=timeout)
        try:
            for click in range(session_clicks):
                if time.perf_counter() >= deadline:
                    break
                if click and think_s > 0.0:
                    time.sleep(think_s)
                path = rng.choices(paths, cum_weights=cumulative)[0]
                started = time.perf_counter()
                connection.request("GET", path)
                response = connection.getresponse()
                response.read()
                latencies_ms.append((time.perf_counter() - started) * 1000.0)
                count += 1
                key = str(response.status)
                status_counts[key] = status_counts.get(key, 0) + 1
                if response.status >= 500:
                    errors += 1
                if response.will_close:
                    break
        except (OSError, HTTPException):
            errors += 1
        finally:
            connection.close()
    return {
        "count": count,
        "errors": errors,
        "status_counts": status_counts,
        "latencies_ms": [round(sample, 4) for sample in latencies_ms],
    }


# ------------------------------------------------------------------ #
# aggregation


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1, max(0, int(round(q * (len(sorted_samples) - 1)))))
    return sorted_samples[index]


@dataclass
class LoadSummary:
    """One load run reduced to the numbers the bench reports."""

    concurrency: int
    duration_s: float
    requests: int = 0
    errors: int = 0
    rps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    status_counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "rps": round(self.rps, 2),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "status_counts": dict(sorted(self.status_counts.items())),
        }


def _summarize(
    results: List[Dict[str, object]], concurrency: int, duration: float
) -> LoadSummary:
    summary = LoadSummary(concurrency=concurrency, duration_s=duration)
    samples: List[float] = []
    for result in results:
        summary.requests += int(result.get("count", 0))
        summary.errors += int(result.get("errors", 0))
        samples.extend(result.get("latencies_ms", []))  # type: ignore[arg-type]
        for status, times in (result.get("status_counts") or {}).items():
            summary.status_counts[status] = summary.status_counts.get(status, 0) + times
    samples.sort()
    summary.rps = summary.requests / duration if duration > 0 else 0.0
    summary.p50_ms = percentile(samples, 0.50)
    summary.p95_ms = percentile(samples, 0.95)
    summary.p99_ms = percentile(samples, 0.99)
    return summary


def _client_env() -> Dict[str, str]:
    """Subprocess environment with this repro package importable."""
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
    return env


def run_load(
    url: str,
    concurrency: int,
    duration: float,
    zipf_exponent: float = 1.1,
    session_clicks: int = 25,
    seed: int = 1000,
    timeout: float = 30.0,
    think_s: float = 0.0,
) -> LoadSummary:
    """Fan out ``concurrency`` client *processes* and merge their
    samples.  Paths are discovered once and passed to every client."""
    paths = discover_paths(url)
    procs: List[subprocess.Popen] = []
    env = _client_env()
    for index in range(concurrency):
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.serve.traffic",
                    "--url",
                    url,
                    "--duration",
                    str(duration),
                    "--seed",
                    str(seed + index),
                    "--zipf",
                    str(zipf_exponent),
                    "--session-clicks",
                    str(session_clicks),
                    "--think-ms",
                    str(think_s * 1000.0),
                    "--paths-json",
                    json.dumps(paths),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
            )
        )
    results: List[Dict[str, object]] = []
    for proc in procs:
        stdout, stderr = proc.communicate(timeout=duration + timeout)
        if proc.returncode != 0:
            raise RuntimeError(
                f"traffic client failed ({proc.returncode}): {stderr.decode()[-500:]}"
            )
        results.append(json.loads(stdout.decode("utf-8")))
    return _summarize(results, concurrency, duration)


def run_load_threads(
    url: str,
    concurrency: int,
    duration: float,
    zipf_exponent: float = 1.1,
    session_clicks: int = 25,
    seed: int = 1000,
    think_s: float = 0.0,
) -> LoadSummary:
    """The same session workload from in-process threads (smoke tests:
    cheaper, but client work shares the caller's GIL)."""
    paths = discover_paths(url)
    results: List[Dict[str, object]] = [{} for _ in range(concurrency)]

    def _client(index: int) -> None:
        results[index] = run_session_client(
            url,
            duration,
            seed=seed + index,
            zipf_exponent=zipf_exponent,
            session_clicks=session_clicks,
            paths=paths,
            think_s=think_s,
        )

    threads = [
        threading.Thread(target=_client, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return _summarize(results, concurrency, duration)


def stepped_load(
    url: str,
    levels: Sequence[int],
    duration: float,
    zipf_exponent: float = 1.1,
    session_clicks: int = 25,
    think_s: float = 0.0,
) -> List[LoadSummary]:
    """One :func:`run_load` per concurrency level, in order."""
    return [
        run_load(
            url,
            concurrency,
            duration,
            zipf_exponent=zipf_exponent,
            session_clicks=session_clicks,
            seed=1000 + 100 * index,
            think_s=think_s,
        )
        for index, concurrency in enumerate(levels)
    ]


# ------------------------------------------------------------------ #
# subprocess entry point


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.traffic")
    parser.add_argument("--url", required=True)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--session-clicks", type=int, default=25)
    parser.add_argument("--think-ms", type=float, default=0.0,
                        help="pause between clicks while holding the "
                             "keep-alive connection (user think time)")
    parser.add_argument(
        "--paths-json", help="JSON list of paths (skips /_paths discovery)"
    )
    args = parser.parse_args(argv)
    paths = json.loads(args.paths_json) if args.paths_json else None
    result = run_session_client(
        args.url,
        args.duration,
        seed=args.seed,
        zipf_exponent=args.zipf,
        session_clicks=args.session_clicks,
        paths=paths,
        think_s=args.think_ms / 1000.0,
    )
    json.dump(result, sys.stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
