"""The serving watchdog: detect workers a deadline failed to free.

Cooperative cancellation has a blind spot: a worker stuck inside a
single long C call (one giant SQL statement arming no progress
handler, a pathological regex) never reaches a tick.  The watchdog is
the backstop -- a daemon thread that scans each worker's in-flight
record (:meth:`~repro.serve.core.ServeCore.inflight`) every
``interval`` seconds and *flags* any request that has been running
longer than ``stuck_factor`` times its budget:

* the flag is counted (``watchdog_flags`` in ``/_stats`` and
  ``repro stats --serve``);
* a slow-query report (path, elapsed, budget, in-flight snapshot) is
  recorded into the process-wide ledger the
  :class:`~repro.resilience.ResilienceReport` collects;
* when the core is SQL-backed, the store connection is interrupted
  (:meth:`~repro.repository.sql.SqlStore.interrupt`), aborting
  whatever statement the stuck worker is inside -- it surfaces there
  as :class:`~repro.errors.DeadlineExceeded` and becomes a 504.

Each in-flight request is flagged at most once (keyed by its worker +
start stamp), so a worker stuck for ten scans produces one flag, not
ten.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set, Tuple

from ..resilience.report import record_slow_query
from .core import ServeCore

__all__ = ["Watchdog"]


class Watchdog(threading.Thread):
    """One daemon thread scanning worker slots for stuck requests."""

    def __init__(
        self,
        core: ServeCore,
        interval: float = 0.25,
        stuck_factor: float = 2.0,
        default_budget: float = 10.0,
    ) -> None:
        super().__init__(name="repro-serve-watchdog", daemon=True)
        self.core = core
        self.interval = interval
        self.stuck_factor = stuck_factor
        #: budget assumed for requests served without a deadline
        self.default_budget = default_budget
        self.flags = 0
        self.sql_interrupts_sent = 0
        self._stop_event = threading.Event()
        #: (worker, start stamp) pairs already flagged
        self._flagged: Set[Tuple[int, float]] = set()

    # ------------------------------------------------------------ #

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.scan()

    def scan(self) -> int:
        """One sweep; returns how many requests were newly flagged."""
        inflight = self.core.inflight()
        live_keys = set()
        newly_flagged = 0
        for record in inflight:
            key = (record["worker"], record["since"])
            live_keys.add(key)
            budget = record["budget_s"] or self.default_budget
            if record["elapsed_s"] <= self.stuck_factor * budget:
                continue
            if key in self._flagged:
                continue
            self._flagged.add(key)
            self.flags += 1
            newly_flagged += 1
            record_slow_query(
                str(record["path"]),
                float(record["elapsed_s"]),
                float(budget),
                site=f"watchdog.worker-{record['worker']}",
                kind="watchdog",
            )
            store = self.core.sql_store()
            if store is not None:
                # break whatever statement the stuck worker is inside;
                # it surfaces as DeadlineExceeded -> structured 504
                store.interrupt()
                self.sql_interrupts_sent += 1
        # forget requests that finished so the set stays bounded
        self._flagged &= live_keys
        return newly_flagged

    def stop(self, timeout: Optional[float] = 5.0) -> bool:
        """Signal and join; True when the thread exited in time."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)
        return not self.is_alive()

    def stats(self) -> Dict[str, object]:
        return {
            "interval_s": self.interval,
            "stuck_factor": self.stuck_factor,
            "watchdog_flags": self.flags,
            "sql_interrupts_sent": self.sql_interrupts_sent,
        }
