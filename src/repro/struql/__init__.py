"""STRUQL: Strudel's declarative query and restructuring language.

Typical use::

    from repro.struql import parse, evaluate

    site_graph = evaluate(SITE_QUERY_TEXT, data_graph)
"""

from .ast import (
    Alternation,
    AnyLabel,
    CollectClause,
    CollectionCond,
    ComparisonCond,
    Concat,
    Condition,
    Const,
    EdgeCond,
    LabelIs,
    LabelPredicate,
    LinkClause,
    NotCond,
    PathCond,
    PathExpr,
    PredicateCond,
    Program,
    Query,
    SkolemTerm,
    Star,
    Var,
    any_path,
    format_query,
)
from .builder import (
    ProgramBuilder,
    QueryBuilder,
    alt,
    any_label,
    arc,
    const,
    label,
    seq,
    skolem,
    star,
    var,
)
from .builtins import (
    register_label_predicate,
    register_object_predicate,
)
from .eval import (
    Binding,
    Metrics,
    OperatorStats,
    QueryEngine,
    Value,
    evaluate,
    make_engine,
    query_bindings,
    register_engine_factory,
)
from .explain import explain
from .footprint import Footprint, path_alphabet
from .optimizer import choose_path_direction, estimate_cost, order_conditions
from .parser import parse, parse_query, validate_query
from .paths import (
    compile_path,
    path_exists,
    reverse_expr,
    sources_to,
    sources_to_many,
    targets_from,
    targets_from_many,
)
from .plancache import PlanCache, clear_plan_cache, global_plan_cache

# imported for its side effect too: registers the SQL-pushdown engine
# factory for SqlGraph sources (must follow the .eval import)
from .sqlcompile import (
    DEFAULT_PUSHDOWN_CUTOFF,
    PushdownReport,
    SqlQueryEngine,
    explain_pushdown,
)

__all__ = [
    "Alternation",
    "AnyLabel",
    "Binding",
    "CollectClause",
    "CollectionCond",
    "ComparisonCond",
    "Concat",
    "Condition",
    "Const",
    "DEFAULT_PUSHDOWN_CUTOFF",
    "EdgeCond",
    "Footprint",
    "LabelIs",
    "LabelPredicate",
    "LinkClause",
    "Metrics",
    "NotCond",
    "OperatorStats",
    "PathCond",
    "PathExpr",
    "PlanCache",
    "PredicateCond",
    "Program",
    "ProgramBuilder",
    "PushdownReport",
    "Query",
    "QueryBuilder",
    "QueryEngine",
    "SkolemTerm",
    "SqlQueryEngine",
    "Star",
    "Value",
    "Var",
    "alt",
    "any_label",
    "any_path",
    "arc",
    "choose_path_direction",
    "clear_plan_cache",
    "compile_path",
    "const",
    "estimate_cost",
    "evaluate",
    "explain",
    "explain_pushdown",
    "format_query",
    "global_plan_cache",
    "label",
    "make_engine",
    "order_conditions",
    "parse",
    "path_alphabet",
    "seq",
    "skolem",
    "star",
    "var",
    "parse_query",
    "path_exists",
    "query_bindings",
    "register_engine_factory",
    "register_label_predicate",
    "register_object_predicate",
    "reverse_expr",
    "sources_to",
    "sources_to_many",
    "targets_from",
    "targets_from_many",
    "validate_query",
]
