"""Abstract syntax of STRUQL.

A STRUQL query (paper section 2.2) has a *query stage* -- the ``where``
clause, a conjunction of conditions over a labeled graph -- and a
*construction stage* -- ``create`` (Skolem-function node creation),
``link`` (edge creation) and ``collect`` (output collections).  Nested
blocks extend the bindings of their parent and carry their own
construction clauses; this is how Fig. 3 of the paper builds year pages
inside the homepage query.

The AST is deliberately plain: frozen dataclasses, no behaviour beyond
variable accounting and pretty-printing.  Evaluation lives in
:mod:`repro.struql.eval`, parsing in :mod:`repro.struql.parser`, and
regular-path-expression compilation in :mod:`repro.struql.paths`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple, Union

from ..graph import Atom


# ---------------------------------------------------------------------- #
# terms

@dataclass(frozen=True)
class Var:
    """A query variable.  Binds to an oid, an atom, or (for arc variables)
    an edge label string."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant atomic value appearing literally in the query."""

    atom: Atom

    def __str__(self) -> str:
        if isinstance(self.atom.value, str):
            return f'"{self.atom.value}"'
        return str(self.atom.value)


Term = Union[Var, Const]


# ---------------------------------------------------------------------- #
# regular path expressions:  R := Pred | R.R | (R|R) | R*

class PathExpr:
    """Base class for regular path expressions."""

    def predicates(self) -> List["PathExpr"]:
        """All leaf predicates, for analysis."""
        return [self]


@dataclass(frozen=True)
class LabelIs(PathExpr):
    """Matches one edge whose label equals ``label`` exactly."""

    label: str

    def __str__(self) -> str:
        return f'"{self.label}"'


@dataclass(frozen=True)
class LabelPredicate(PathExpr):
    """Matches one edge whose label satisfies a named predicate
    (e.g. ``isName``); predicates are resolved from the builtin registry
    at evaluation time."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AnyLabel(PathExpr):
    """``true`` -- matches any single edge.  ``*`` in query text is
    shorthand for ``true*`` (any path), i.e. ``Star(AnyLabel())``."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Concat(PathExpr):
    """``R . R`` -- path concatenation."""

    parts: Tuple[PathExpr, ...]

    def __str__(self) -> str:
        return ".".join(_wrap(p) for p in self.parts)

    def predicates(self) -> List[PathExpr]:
        found: List[PathExpr] = []
        for part in self.parts:
            found.extend(part.predicates())
        return found


@dataclass(frozen=True)
class Alternation(PathExpr):
    """``R | R`` -- alternation."""

    options: Tuple[PathExpr, ...]

    def __str__(self) -> str:
        return "(" + "|".join(str(o) for o in self.options) + ")"

    def predicates(self) -> List[PathExpr]:
        found: List[PathExpr] = []
        for option in self.options:
            found.extend(option.predicates())
        return found


@dataclass(frozen=True)
class Star(PathExpr):
    """``R*`` -- zero or more repetitions."""

    inner: PathExpr

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"

    def predicates(self) -> List[PathExpr]:
        return self.inner.predicates()


def _wrap(expr: PathExpr) -> str:
    if isinstance(expr, (Concat, Alternation)):
        return f"({expr})"
    return str(expr)


def any_path() -> PathExpr:
    """The ``*`` abbreviation: any path, including the empty one."""
    return Star(AnyLabel())


# ---------------------------------------------------------------------- #
# where-clause conditions

class Condition:
    """Base class for where-clause conditions.

    Every concrete condition carries a source span (``line``, ``column``
    of its first token, 0 when synthesized programmatically).  Spans are
    excluded from equality and hashing so that structurally identical
    conditions written at different positions still compare equal.
    """

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class CollectionCond(Condition):
    """``Publications(x)`` -- membership of ``x`` in a named collection."""

    collection: str
    var: Var

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.var.name})

    def __str__(self) -> str:
        return f"{self.collection}({self.var})"


@dataclass(frozen=True)
class PredicateCond(Condition):
    """``isImageFile(q)`` -- a named predicate applied to a bound object."""

    name: str
    var: Var

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.var.name})

    def __str__(self) -> str:
        return f"{self.name}({self.var})"


@dataclass(frozen=True)
class EdgeCond(Condition):
    """``x -> "year" -> y`` / ``x -> l -> y`` -- a single edge.

    ``label`` is a string constant or an arc :class:`Var` that the edge's
    label is bound to.  Source must be a node; target may be a node or an
    atom.
    """

    source: Var
    label: Union[str, Var]
    target: Term

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        names = {self.source.name}
        if isinstance(self.label, Var):
            names.add(self.label.name)
        if isinstance(self.target, Var):
            names.add(self.target.name)
        return frozenset(names)

    def __str__(self) -> str:
        label = f'"{self.label}"' if isinstance(self.label, str) else str(self.label)
        return f"{self.source} -> {label} -> {self.target}"


@dataclass(frozen=True)
class PathCond(Condition):
    """``x -> R -> y`` -- a path from x to y matching regular expression R."""

    source: Var
    path: PathExpr
    target: Term

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        names = {self.source.name}
        if isinstance(self.target, Var):
            names.add(self.target.name)
        return frozenset(names)

    def __str__(self) -> str:
        return f"{self.source} -> {self.path} -> {self.target}"


@dataclass(frozen=True)
class ComparisonCond(Condition):
    """``y = "1998"``, ``x != y``, ``n < 10`` -- coercing comparison."""

    left: Term
    op: str  # one of = != < <= > >=
    right: Term

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        names = set()
        if isinstance(self.left, Var):
            names.add(self.left.name)
        if isinstance(self.right, Var):
            names.add(self.right.name)
        return frozenset(names)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class NotCond(Condition):
    """``not(...)`` -- negation as failure of a conjunction of conditions.

    Every variable occurring only inside the negation is existentially
    quantified within it; variables shared with the outside must be bound
    before the negation is checked.
    """

    inner: Tuple[Condition, ...]

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for condition in self.inner:
            names |= condition.variables()
        return frozenset(names)

    def outer_variables(self) -> FrozenSet[str]:
        """Variables the negation needs bound from outside: for the common
        single-condition case, all of them; detection of purely-inner
        existentials is the evaluator's job."""
        return self.variables()

    def __str__(self) -> str:
        return "not(" + ", ".join(str(c) for c in self.inner) + ")"


# ---------------------------------------------------------------------- #
# construction clauses

@dataclass(frozen=True)
class SkolemTerm:
    """``AbstractPage(x)`` / ``RootPage()`` -- a Skolem-function application.

    Arguments are variables or constants; at evaluation time each argument
    is the bound oid / atom / label value.
    """

    function: str
    args: Tuple[Term, ...]

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        return frozenset(a.name for a in self.args if isinstance(a, Var))

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


#: A node reference in link/collect: a Skolem term or a bound variable.
NodeRef = Union[SkolemTerm, Var]


@dataclass(frozen=True)
class LinkClause:
    """``P(x) -> l -> v`` in a ``link`` clause.

    ``label`` is a string constant or an arc variable; ``target`` may be a
    Skolem term, a variable (data-graph node or atom), or a constant atom.
    """

    source: NodeRef
    label: Union[str, Var]
    target: Union[SkolemTerm, Var, Const]

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for side in (self.source, self.target):
            if isinstance(side, SkolemTerm):
                names |= side.variables()
            elif isinstance(side, Var):
                names.add(side.name)
        if isinstance(self.label, Var):
            names.add(self.label.name)
        return frozenset(names)

    def __str__(self) -> str:
        label = f'"{self.label}"' if isinstance(self.label, str) else str(self.label)
        return f"{self.source} -> {label} -> {self.target}"


@dataclass(frozen=True)
class CollectClause:
    """``collect TextOnlyRoot(New(p))`` -- put a node in an output collection."""

    collection: str
    node: NodeRef

    line: int = field(compare=False, default=0)
    column: int = field(compare=False, default=0)

    def variables(self) -> FrozenSet[str]:
        if isinstance(self.node, SkolemTerm):
            return self.node.variables()
        return frozenset({self.node.name})

    def __str__(self) -> str:
        return f"{self.collection}({self.node})"


# ---------------------------------------------------------------------- #
# queries

@dataclass
class Query:
    """One STRUQL query block.

    ``name`` identifies the block's where-clause for site-schema labels
    (Q1, Q2, ... in the paper's Fig. 7); the parser assigns names in
    depth-first order when the source does not.  ``blocks`` holds nested
    sub-queries, each evaluated per binding of this block.
    """

    where: List[Condition] = field(default_factory=list)
    create: List[SkolemTerm] = field(default_factory=list)
    link: List[LinkClause] = field(default_factory=list)
    collect: List[CollectClause] = field(default_factory=list)
    blocks: List["Query"] = field(default_factory=list)
    name: str = ""

    def where_variables(self) -> FrozenSet[str]:
        names: set = set()
        for condition in self.where:
            names |= condition.variables()
        return frozenset(names)

    def skolem_functions(self) -> List[str]:
        """All Skolem function names in this block and its descendants."""
        found: List[str] = []

        def note(term: object) -> None:
            if isinstance(term, SkolemTerm) and term.function not in found:
                found.append(term.function)

        for query in self.walk():
            for created in query.create:
                note(created)
            for link in query.link:
                note(link.source)
                note(link.target)
            for collect in query.collect:
                note(collect.node)
        return found

    def walk(self) -> List["Query"]:
        """This block followed by all nested blocks, depth first."""
        out: List[Query] = [self]
        for block in self.blocks:
            out.extend(block.walk())
        return out

    def link_clause_count(self) -> int:
        """Total link clauses including nested blocks -- the paper's
        structural-complexity measure (section 6.1)."""
        return sum(len(q.link) for q in self.walk())

    def __str__(self) -> str:
        return format_query(self)


@dataclass
class Program:
    """A sequence of queries evaluated in order into one result graph.

    This models section 6.2's composition: "we allowed queries to add
    nodes and arcs to a graph ... different queries [can] create different
    parts of the same site".
    """

    queries: List[Query] = field(default_factory=list)
    source_text: str = ""

    def skolem_functions(self) -> List[str]:
        found: List[str] = []
        for query in self.queries:
            for function in query.skolem_functions():
                if function not in found:
                    found.append(function)
        return found

    def link_clause_count(self) -> int:
        return sum(q.link_clause_count() for q in self.queries)

    def line_count(self) -> int:
        """Non-blank, non-comment source lines -- the paper's query-size
        measure ("defined by a 115-line query")."""
        count = 0
        for line in self.source_text.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count


def format_query(query: Query, indent: str = "") -> str:
    """Pretty-print a query block back to concrete syntax."""
    pieces: List[str] = []
    if query.where:
        pieces.append(indent + "where " + ",\n      ".join(
            indent + str(c) for c in query.where).lstrip())
    if query.create:
        pieces.append(indent + "create " + ", ".join(str(c) for c in query.create))
    if query.link:
        pieces.append(indent + "link " + ",\n     ".join(
            indent + str(l) for l in query.link).lstrip())
    if query.collect:
        pieces.append(indent + "collect " + ", ".join(str(c) for c in query.collect))
    for block in query.blocks:
        pieces.append(indent + "{\n" + format_query(block, indent + "  ") + "\n" + indent + "}")
    return "\n".join(pieces)
