"""A fluent, programmatic builder for STRUQL queries.

Section 7 of the paper: "many potential users of STRUDEL asked whether
we can provide a friendly visual interface for specifying queries,
instead of having to write STRUQL queries by hand ... One research issue
is what subset of STRUQL can be expressed" through such an interface.
This builder is that subset made programmatic: every method corresponds
to one visual gesture (add a membership test, draw an edge, create a
page type, link two page types), and the result is an ordinary
:class:`~repro.struql.ast.Program` -- or its concrete STRUQL text, which
round-trips through the parser.

Example (the homepage year-pages fragment)::

    from repro.struql.builder import ProgramBuilder, arc, skolem

    b = ProgramBuilder()
    q = (b.query()
         .collection("Publications", "x")
         .edge("x", arc("l"), "v")
         .create(skolem("PaperPage", "x"))
         .link(skolem("PaperPage", "x"), arc("l"), "v")
         .collect("PaperPages", skolem("PaperPage", "x")))
    (q.block()
      .edge("x", "year", "y")
      .create(skolem("YearPage", "y"))
      .link(skolem("YearPage", "y"), "Paper", skolem("PaperPage", "x")))
    program = b.build()        # validated Program
    text = b.text()            # equivalent STRUQL source

Conventions: a bare string denotes a *variable* in term positions and a
*constant label* in label positions; wrap with :func:`const` for atomic
constants, :func:`arc` for arc variables, :func:`skolem` for Skolem
terms, and :func:`path` / :func:`star` / :func:`label` / :func:`alt` /
:func:`seq` for regular path expressions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import StruqlSemanticError
from ..graph import Atom, from_python
from .ast import (
    Alternation,
    AnyLabel,
    CollectClause,
    CollectionCond,
    ComparisonCond,
    Concat,
    Condition,
    Const,
    EdgeCond,
    LabelIs,
    LabelPredicate,
    LinkClause,
    NotCond,
    PathCond,
    PathExpr,
    PredicateCond,
    Program,
    Query,
    SkolemTerm,
    Star,
    Term,
    Var,
    format_query,
)
from .parser import validate_query

# ---------------------------------------------------------------------- #
# term helpers


def var(name: str) -> Var:
    """An explicit variable (bare strings in term positions do the same)."""
    return Var(name)


def const(value: object) -> Const:
    """An atomic constant: ``const(1998)``, ``const("sports")``."""
    if isinstance(value, Atom):
        return Const(value)
    return Const(from_python(value))


def arc(name: str) -> Var:
    """An arc variable for a label position: ``edge("x", arc("l"), "v")``."""
    return Var(name)


def skolem(function: str, *args: Union[str, Var, Const, object]) -> SkolemTerm:
    """A Skolem term: ``skolem("YearPage", "y")``."""
    return SkolemTerm(function=function, args=tuple(_term(a) for a in args))


def _term(value: Union[str, Var, Const, object]) -> Term:
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str):
        return Var(value)
    return const(value)


# ---------------------------------------------------------------------- #
# path helpers


def label(text: str) -> PathExpr:
    """A single-edge label match inside a path expression."""
    return LabelIs(text)


def predicate(name: str) -> PathExpr:
    """A registered label predicate inside a path expression."""
    return LabelPredicate(name)


def any_label() -> PathExpr:
    """``true`` -- any single edge."""
    return AnyLabel()


def star(inner: Optional[Union[str, PathExpr]] = None) -> PathExpr:
    """``R*``; with no argument, ``*`` (any path, including empty)."""
    if inner is None:
        return Star(AnyLabel())
    return Star(_path(inner))


def seq(*parts: Union[str, PathExpr]) -> PathExpr:
    """Concatenation: ``seq("a", "b")`` is ``"a"."b"``."""
    return Concat(tuple(_path(p) for p in parts))


def alt(*options: Union[str, PathExpr]) -> PathExpr:
    """Alternation: ``alt("a", "b")`` is ``("a"|"b")``."""
    return Alternation(tuple(_path(o) for o in options))


def _path(value: Union[str, PathExpr]) -> PathExpr:
    if isinstance(value, PathExpr):
        return value
    return LabelIs(value)


# ---------------------------------------------------------------------- #
# builders


class QueryBuilder:
    """Builds one query block; obtained from :meth:`ProgramBuilder.query`
    or :meth:`QueryBuilder.block`.  All methods return ``self``."""

    def __init__(self, name: str = "") -> None:
        self._query = Query(name=name)

    # ---- where ---------------------------------------------------- #

    def collection(self, name: str, variable: str) -> "QueryBuilder":
        """``Name(x)`` membership condition."""
        self._query.where.append(CollectionCond(name, Var(variable)))
        return self

    def predicate(self, name: str, variable: str) -> "QueryBuilder":
        """``isImageFile(x)``-style object predicate."""
        self._query.where.append(PredicateCond(name, Var(variable)))
        return self

    def edge(
        self,
        source: str,
        edge_label: Union[str, Var],
        target: Union[str, Var, Const, object],
    ) -> "QueryBuilder":
        """``x -> "label" -> y`` or ``x -> l -> y`` (pass ``arc("l")``)."""
        self._query.where.append(
            EdgeCond(source=Var(source), label=edge_label, target=_term(target))
        )
        return self

    def path(
        self,
        source: str,
        expression: Union[str, PathExpr],
        target: Union[str, Var, Const, object],
    ) -> "QueryBuilder":
        """``x -> R -> y`` with a regular path expression."""
        self._query.where.append(
            PathCond(source=Var(source), path=_path(expression), target=_term(target))
        )
        return self

    def compare(
        self,
        left: Union[str, Var, Const, object],
        op: str,
        right: Union[str, Var, Const, object],
    ) -> "QueryBuilder":
        """``y = "1998"``, ``a != b``, ``n < 10`` ..."""
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            raise StruqlSemanticError(f"unknown comparison operator {op!r}")
        self._query.where.append(
            ComparisonCond(left=_term(left), op=op, right=_term(right))
        )
        return self

    def negate(self, *conditions: Condition) -> "QueryBuilder":
        """``not(...)`` over conditions built with the module helpers or
        taken from another builder's :meth:`conditions`."""
        self._query.where.append(NotCond(inner=tuple(conditions)))
        return self

    def conditions(self) -> List[Condition]:
        """The conditions collected so far (useful to feed :meth:`negate`)."""
        return list(self._query.where)

    # ---- construction ---------------------------------------------- #

    def create(self, *terms: SkolemTerm) -> "QueryBuilder":
        self._query.create.extend(terms)
        return self

    def link(
        self,
        source: Union[SkolemTerm, str],
        edge_label: Union[str, Var],
        target: Union[SkolemTerm, str, Var, Const, object],
    ) -> "QueryBuilder":
        """``P(x) -> "label" -> target``; source may be a Skolem term or a
        variable naming a new node."""
        resolved_source = source if isinstance(source, SkolemTerm) else Var(source)
        if isinstance(target, SkolemTerm):
            resolved_target: Union[SkolemTerm, Var, Const] = target
        else:
            resolved_target = _term(target)
        self._query.link.append(
            LinkClause(source=resolved_source, label=edge_label,
                       target=resolved_target)
        )
        return self

    def collect(
        self, collection_name: str, node: Union[SkolemTerm, str]
    ) -> "QueryBuilder":
        resolved = node if isinstance(node, SkolemTerm) else Var(node)
        self._query.collect.append(CollectClause(collection_name, resolved))
        return self

    # ---- structure ------------------------------------------------- #

    def block(self) -> "QueryBuilder":
        """Open a nested block; returns the child builder."""
        child = QueryBuilder()
        self._query.blocks.append(child._query)
        return child

    def build(self) -> Query:
        """The (unvalidated) Query; ProgramBuilder.build validates."""
        return self._query


class ProgramBuilder:
    """Accumulates queries into a validated :class:`Program`."""

    def __init__(self) -> None:
        self._builders: List[QueryBuilder] = []

    def query(self) -> QueryBuilder:
        """Start a new top-level query."""
        builder = QueryBuilder()
        self._builders.append(builder)
        return builder

    def build(self) -> Program:
        """Name the blocks, validate scoping, and return the Program."""
        program = Program(queries=[b.build() for b in self._builders])
        counter = 0

        def name_blocks(query: Query) -> None:
            nonlocal counter
            counter += 1
            query.name = f"Q{counter}"
            for block in query.blocks:
                name_blocks(block)

        for query in program.queries:
            name_blocks(query)
        for query in program.queries:
            validate_query(query, inherited=frozenset())
        program.source_text = self.text()
        return program

    def text(self) -> str:
        """Concrete STRUQL source equivalent to the built program."""
        return "\n".join(format_query(b.build()) for b in self._builders) + "\n"
