"""Built-in and user-registered predicates for STRUQL.

Two predicate namespaces exist, matching how the paper uses them:

* **object predicates** apply to a bound object -- ``isImageFile(q)``,
  ``isPostScript(q)``.  The atom-type checks from
  :mod:`repro.graph.values` are pre-registered; nodes satisfy none of
  them (they are not atoms) except ``isNode``.
* **label predicates** apply to an edge label string inside a regular
  path expression -- the paper's ``isName*`` example.  ``true`` (any
  label) is built in; users register their own with
  :func:`register_label_predicate`.

Registries are module-level: a site definition is a closed world and the
paper's predicates are global names.  Tests that register predicates
clean up after themselves via the returned handle.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..graph import Atom, Oid, type_predicate, type_predicate_names

ObjectPredicate = Callable[[object], bool]
LabelPredicate = Callable[[str], bool]

_OBJECT_PREDICATES: Dict[str, ObjectPredicate] = {}
_LABEL_PREDICATES: Dict[str, LabelPredicate] = {}


def _install_builtins() -> None:
    for name in type_predicate_names():
        atom_check = type_predicate(name)
        assert atom_check is not None

        def applied(value: object, _check=atom_check) -> bool:
            return isinstance(value, Atom) and _check(value)

        _OBJECT_PREDICATES[name] = applied
    _OBJECT_PREDICATES["isNode"] = lambda value: isinstance(value, Oid)
    _OBJECT_PREDICATES["isAtom"] = lambda value: isinstance(value, Atom)


_install_builtins()


def is_object_predicate(name: str) -> bool:
    """Is ``name`` a registered object predicate?"""
    return name in _OBJECT_PREDICATES


def object_predicate(name: str) -> Optional[ObjectPredicate]:
    """Look up an object predicate by name (None if unregistered)."""
    return _OBJECT_PREDICATES.get(name)


def register_object_predicate(name: str, fn: ObjectPredicate) -> Callable[[], None]:
    """Register a named object predicate; returns an unregister handle.

    Registering over a built-in name is refused to keep query meaning
    stable.
    """
    if name in _OBJECT_PREDICATES:
        raise ValueError(f"object predicate {name!r} already registered")
    _OBJECT_PREDICATES[name] = fn

    def unregister() -> None:
        _OBJECT_PREDICATES.pop(name, None)

    return unregister


def is_label_predicate(name: str) -> bool:
    """Is ``name`` a registered label predicate?"""
    return name in _LABEL_PREDICATES


def label_predicate(name: str) -> Optional[LabelPredicate]:
    """Look up a label predicate by name (None if unregistered)."""
    return _LABEL_PREDICATES.get(name)


def register_label_predicate(name: str, fn: LabelPredicate) -> Callable[[], None]:
    """Register a named label predicate usable in regular path expressions;
    returns an unregister handle."""
    if name in _LABEL_PREDICATES:
        raise ValueError(f"label predicate {name!r} already registered")
    _LABEL_PREDICATES[name] = fn

    def unregister() -> None:
        _LABEL_PREDICATES.pop(name, None)

    return unregister
