"""STRUQL evaluation: the query stage and the construction stage.

Semantics follow paper section 2.2 exactly:

* **Query stage.**  "The meaning of the where-clause is a relation
  defined by the set of assignments from variables in the query to oid
  and label values in the data graph that satisfy all conditions."
  :meth:`QueryEngine.bindings` computes that relation as a list of
  binding dicts (deduplicated -- it is a set), by pipelining the
  conditions in planner order (or written order in naive mode) as an
  index-nested-loop join.

* **Construction stage.**  "For each row in the relation, first
  construct all new node oids, as specified in the create clause ...
  next, construct the new edges, as described in the link clause."
  Skolem functions are memoized per result graph, so composed queries
  and repeated link clauses agree on identity.  "Edges are added from
  new nodes to new or existing nodes; existing nodes are immutable and
  cannot be extended" -- enforced: a link source must resolve to a
  Skolem-created node of the result graph, otherwise
  :class:`~repro.errors.ImmutableNodeError`.

Nested blocks extend the parent's binding relation with their own
conditions and run their own construction clauses per extended row.

Binding values are :class:`~repro.graph.Oid` (nodes),
:class:`~repro.graph.Atom` (atomic values), or ``str`` (arc-variable
labels -- "elements of the graph's schema").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import (
    ImmutableNodeError,
    StruqlEvaluationError,
)
from ..graph import Atom, AtomType, Graph, Oid, Target, atoms_equal, compare_atoms
from ..repository.indexes import IndexStatistics, graph_statistics
from ..resilience.chaos import maybe_fail
from . import builtins
from .ast import (
    CollectClause,
    CollectionCond,
    ComparisonCond,
    Condition,
    Const,
    EdgeCond,
    LinkClause,
    NotCond,
    PathCond,
    PathExpr,
    PredicateCond,
    Program,
    Query,
    SkolemTerm,
    Var,
)
from .footprint import Footprint, path_alphabet
from .optimizer import order_conditions, shared_not_variables
from .parser import parse
from .paths import NFA, compile_path, path_exists, reverse_expr, sources_to, targets_from
from .plancache import PlanCache, global_plan_cache

#: A binding value: node oid, atomic value, or arc-variable label.
Value = Union[Oid, Atom, str]
Binding = Dict[str, Value]


@dataclass
class Metrics:
    """Counters the benchmarks read after an evaluation."""

    bindings_produced: int = 0
    edges_examined: int = 0
    conditions_evaluated: int = 0
    nodes_created: int = 0
    edges_created: int = 0
    #: compiled-plan cache lookups that were served from the cache
    plan_cache_hits: int = 0
    #: compiled-plan cache lookups that had to run the planner
    plan_cache_misses: int = 0
    #: fresh statistics snapshots this engine observed (epoch changes)
    stats_snapshots: int = 0
    #: pages rendered by worker threads during parallel site generation
    pages_rendered_parallel: int = 0


# ---------------------------------------------------------------------- #
# value plumbing


def _as_atom(value: Value) -> Optional[Atom]:
    if isinstance(value, Atom):
        return value
    if isinstance(value, str):
        return Atom(AtomType.STRING, value)
    return None


def _values_equal(left: Value, right: Value) -> bool:
    left_is_oid = isinstance(left, Oid)
    right_is_oid = isinstance(right, Oid)
    if left_is_oid or right_is_oid:
        return left == right
    left_atom, right_atom = _as_atom(left), _as_atom(right)
    assert left_atom is not None and right_atom is not None
    return atoms_equal(left_atom, right_atom)


def _coercion_probes(value: Value) -> List[Atom]:
    """Atoms to probe in exact-match indexes for a coercing equality.

    The reverse-adjacency (value) index is exact, but STRUQL equality
    coerces; so a constant ``"1998"`` must also probe the INTEGER and
    FLOAT spellings, and vice versa.
    """
    atom = _as_atom(value)
    if atom is None:
        return []
    probes: List[Atom] = [atom]
    number = atom.as_number()
    if number is not None:
        as_int = Atom(AtomType.INTEGER, int(number)) if number == int(number) else None
        candidates = [as_int, Atom(AtomType.FLOAT, float(number))]
        text = atom.as_string()
        for atom_type in (AtomType.STRING, AtomType.URL):
            candidates.append(Atom(atom_type, text))
        if number == int(number):
            candidates.append(Atom(AtomType.STRING, str(int(number))))
        for candidate in candidates:
            if candidate is not None and candidate not in probes:
                probes.append(candidate)
    else:
        text = atom.as_string()
        for atom_type in (AtomType.STRING, AtomType.URL, AtomType.TEXT_FILE):
            candidate = Atom(atom_type, text)
            if candidate not in probes:
                probes.append(candidate)
    return probes


# ---------------------------------------------------------------------- #
# the query stage

#: Sentinel marking an unbound slot in a tuple row.
_UNSET = object()

#: A tuple row: one slot per variable of the frame, ``_UNSET`` if unbound.
Row = Tuple[object, ...]


class _Frame:
    """Slot table for one :meth:`QueryEngine.bindings` call.

    The binding relation is pipelined as slot-indexed tuple rows instead
    of per-row dicts: a row copy is one tuple allocation, membership and
    deduplication are plain tuple hashing, and variables resolve to
    integer slots once per condition instead of string lookups per row.
    Dicts appear only at the API boundary (:meth:`to_dict`).
    """

    __slots__ = ("names", "slots")

    def __init__(self, names: List[str]) -> None:
        self.names = names
        self.slots = {name: index for index, name in enumerate(names)}

    @classmethod
    def for_call(
        cls, conditions: Sequence[Condition], initial_rows: Sequence[Binding]
    ) -> "_Frame":
        names: List[str] = []
        seen: Set[str] = set()
        for row in initial_rows:
            for name in row:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        for condition in conditions:
            for name in condition.variables():
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return cls(names)

    def from_dict(self, binding: Binding) -> Row:
        return tuple(binding.get(name, _UNSET) for name in self.names)

    def to_dict(self, row: Row) -> Binding:
        return {
            name: value
            for name, value in zip(self.names, row)
            if value is not _UNSET
        }

    def get(self, row: Row, name: str) -> Optional[Value]:
        index = self.slots.get(name)
        if index is None:
            return None
        value = row[index]
        return None if value is _UNSET else value  # type: ignore[return-value]

    def unique_dicts(self, rows: List[Row]) -> List[Binding]:
        """Deduplicate (first occurrence wins) and convert to dicts."""
        seen: Set[Row] = set()
        out: List[Binding] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(self.to_dict(row))
        return out


class _FootprintScope:
    """Swaps a :class:`QueryEngine`'s active footprint recorder in and out."""

    __slots__ = ("_engine", "_footprint", "_previous")

    def __init__(self, engine: "QueryEngine", footprint: Optional[Footprint]) -> None:
        self._engine = engine
        self._footprint = footprint
        self._previous: Optional[Footprint] = None

    def __enter__(self) -> Optional[Footprint]:
        self._previous = self._engine.footprint
        self._engine.footprint = self._footprint
        return self._footprint

    def __exit__(self, *exc_info: object) -> None:
        self._engine.footprint = self._previous


class QueryEngine:
    """Evaluates where-clauses over one graph.

    ``optimize=False`` keeps the written condition order;
    ``use_indexes=False`` additionally replaces index lookups with full
    scans (the E5 ablation baseline).  Both default on.

    Construction is O(1): statistics come lazily from the shared
    epoch-stamped provider (:func:`~repro.repository.indexes.graph_statistics`)
    unless an explicit ``stats`` snapshot is supplied, and condition
    orderings / compiled path NFAs are served from ``plan_cache``
    (defaulting to the process-wide cache) keyed by condition identity
    and the statistics fingerprint, so repeated evaluation over an
    unchanged graph re-plans nothing.
    """

    def __init__(
        self,
        graph: Graph,
        optimize: bool = True,
        use_indexes: bool = True,
        stats: Optional[IndexStatistics] = None,
        metrics: Optional[Metrics] = None,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.graph = graph
        self.optimize = optimize
        self.use_indexes = use_indexes
        self._explicit_stats = stats
        self._seen_stats: Optional[IndexStatistics] = None
        self.metrics = metrics if metrics is not None else Metrics()
        self.plan_cache = plan_cache if plan_cache is not None else global_plan_cache()
        #: when set, every condition evaluated records its semantic
        #: dependence here (see :mod:`repro.struql.footprint`)
        self.footprint: Optional[Footprint] = None

    def record_into(self, footprint: Optional[Footprint]) -> "_FootprintScope":
        """Context manager: record reads into ``footprint`` for the
        duration (restoring whatever recorder was active before)."""
        return _FootprintScope(self, footprint)

    @property
    def stats(self) -> IndexStatistics:
        """Planning statistics: the explicit snapshot if one was given,
        otherwise the graph's shared epoch-stamped snapshot (refreshed
        automatically after any mutation)."""
        if self._explicit_stats is not None:
            return self._explicit_stats
        current = graph_statistics(self.graph)
        if current is not self._seen_stats:
            self._seen_stats = current
            self.metrics.stats_snapshots += 1
        return current

    @stats.setter
    def stats(self, value: Optional[IndexStatistics]) -> None:
        self._explicit_stats = value

    # ------------------------------------------------------------ #

    def bindings(
        self,
        conditions: Sequence[Condition],
        initial: Optional[Iterable[Binding]] = None,
    ) -> List[Binding]:
        """The binding relation of a conjunction of conditions.

        ``initial`` seeds the pipeline (used for nested blocks); default
        is the single empty binding.  The result is deduplicated.
        """
        maybe_fail("engine.bindings")
        initial_rows: List[Binding] = [
            dict(b) for b in (initial if initial is not None else [{}])
        ]
        frame = _Frame.for_call(conditions, initial_rows)
        rows: List[Row] = [frame.from_dict(b) for b in initial_rows]
        if not conditions:
            return frame.unique_dicts(rows)
        bound = (
            frozenset().union(*[frozenset(b) for b in initial_rows])
            if initial_rows
            else frozenset()
        )
        if self.optimize:
            ordered = self._plan(conditions, bound)
        else:
            ordered = list(conditions)
        for condition in ordered:
            self.metrics.conditions_evaluated += 1
            next_rows: List[Row] = []
            extend = self._extend
            for row in rows:
                next_rows.extend(extend(condition, row, conditions, frame))
            rows = next_rows
            if not rows:
                break
        self.metrics.bindings_produced += len(rows)
        return frame.unique_dicts(rows)

    def _plan(
        self, conditions: Sequence[Condition], bound: frozenset
    ) -> List[Condition]:
        """The ordered plan, via the compiled-plan cache.

        The key ties the plan to the exact condition objects, the seed
        binding pattern, the index mode, and the statistics fingerprint
        ``(graph, epoch)`` -- so any graph mutation invalidates it.
        """
        stats = self.stats
        key = PlanCache.plan_key(
            conditions, bound, self.use_indexes, stats.fingerprint()
        )
        cached = self.plan_cache.get_plan(key)
        if cached is not None:
            self.metrics.plan_cache_hits += 1
            return cached
        self.metrics.plan_cache_misses += 1
        ordered = order_conditions(conditions, bound, stats, self.use_indexes)
        self.plan_cache.put_plan(key, conditions, ordered)
        return ordered

    # ------------------------------------------------------------ #
    # per-condition extension

    def _extend(
        self,
        condition: Condition,
        row: Row,
        siblings: Sequence[Condition],
        frame: _Frame,
    ) -> Iterator[Row]:
        if isinstance(condition, CollectionCond):
            yield from self._extend_collection(condition, row, frame)
        elif isinstance(condition, EdgeCond):
            yield from self._extend_edge(condition, row, frame)
        elif isinstance(condition, PathCond):
            yield from self._extend_path(condition, row, frame)
        elif isinstance(condition, ComparisonCond):
            yield from self._extend_comparison(condition, row, frame)
        elif isinstance(condition, PredicateCond):
            yield from self._extend_predicate(condition, row, frame)
        elif isinstance(condition, NotCond):
            yield from self._extend_not(condition, row, siblings, frame)
        else:
            raise StruqlEvaluationError(f"unknown condition type: {condition!r}")

    def _extend_collection(
        self, condition: CollectionCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        index = frame.slots[condition.var.name]
        value = row[index]
        footprint = self.footprint
        if footprint is not None:
            if value is _UNSET:
                footprint.collection_scans.add(condition.collection)
            elif isinstance(value, Oid):
                footprint.membership_reads.add((condition.collection, value))
        members = self.graph.collection(condition.collection)
        if value is not _UNSET:
            if self.use_indexes:
                hit = isinstance(value, Oid) and self.graph.in_collection(
                    condition.collection, value
                )
            else:
                hit = value in members
            if hit:
                yield row
            return
        prefix, suffix = row[:index], row[index + 1:]
        for member in members:
            yield prefix + (member,) + suffix

    def _resolve_label(
        self, label: Union[str, Var], row: Row, frame: _Frame
    ) -> Tuple[Optional[str], Optional[str]]:
        """Returns (label string or None if unbound, arc-var name or None)."""
        if isinstance(label, str):
            return label, None
        bound = frame.get(row, label.name)
        if bound is None:
            return None, label.name
        if isinstance(bound, str):
            return bound, None
        if isinstance(bound, Atom):
            return bound.as_string(), None
        return None, None  # bound to an oid: can never label an edge

    def _extend_edge(
        self, condition: EdgeCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        label_value, arc_var = self._resolve_label(condition.label, row, frame)
        if label_value is None and arc_var is None:
            return  # arc variable bound to a non-label value
        slots = frame.slots
        source_index = slots[condition.source.name]
        source_value: Optional[Value] = None
        if row[source_index] is not _UNSET:
            source_value = row[source_index]  # type: ignore[assignment]
        target = condition.target
        target_index: Optional[int] = None
        if isinstance(target, Const):
            target_value: Optional[Value] = target.atom
        else:
            slot = slots[target.name]
            if row[slot] is _UNSET:
                target_value = None
                target_index = slot
            else:
                target_value = row[slot]  # type: ignore[assignment]
        arc_index = slots[arc_var] if arc_var is not None else None
        set_source = source_value is None

        footprint = self.footprint
        if footprint is not None:
            # Semantic dependence of this bound/unbound pattern; recorded
            # before the index-vs-scan branch so both modes agree.
            if source_value is not None:
                if isinstance(source_value, Oid):
                    if label_value is not None:
                        footprint.edge_reads.add((source_value, label_value))
                    else:
                        footprint.oid_reads_all.add(source_value)
            elif target_value is not None:
                if isinstance(target_value, Oid):
                    footprint.value_probes.add((target_value, label_value))
                else:
                    for probe_atom in _coercion_probes(target_value):
                        footprint.value_probes.add((probe_atom, label_value))
            elif label_value is not None:
                footprint.label_scans.add(label_value)
            else:
                footprint.all_edges = True

        def emit(source: Oid, label: str, edge_target: Target) -> Iterator[Row]:
            new = list(row)
            if set_source:
                new[source_index] = source
            if arc_index is not None:
                new[arc_index] = label
            if target_index is not None:
                new[target_index] = edge_target
            yield tuple(new)

        if not self.use_indexes:
            yield from self._edge_scan(
                source_value, label_value, target_value, emit
            )
            return

        if source_value is not None:
            if not isinstance(source_value, Oid) or not self.graph.has_node(source_value):
                return
            if label_value is not None:
                candidates: Iterable[Tuple[str, Target]] = (
                    (label_value, t) for t in self.graph.targets(source_value, label_value)
                )
            else:
                candidates = self.graph.out_edges(source_value)
            for label, edge_target in candidates:
                self.metrics.edges_examined += 1
                if target_value is not None and not _values_equal(edge_target, target_value):
                    continue
                yield from emit(source_value, label, edge_target)
            return

        if target_value is not None:
            probes: List[Target]
            if isinstance(target_value, Oid):
                probes = [target_value]
            else:
                probes = list(_coercion_probes(target_value))
            seen: Set[Tuple[Oid, str]] = set()
            for probe in probes:
                for source, label in self.graph.in_edges(probe):
                    self.metrics.edges_examined += 1
                    if label_value is not None and label != label_value:
                        continue
                    if (source, label) in seen:
                        continue
                    seen.add((source, label))
                    yield from emit(source, label, probe)
            return

        if label_value is not None:
            for source, edge_target in self.graph.edges_with_label(label_value):
                self.metrics.edges_examined += 1
                yield from emit(source, label_value, edge_target)
            return
        for source, label, edge_target in self.graph.edges():
            self.metrics.edges_examined += 1
            yield from emit(source, label, edge_target)

    def _edge_scan(
        self,
        source_value: Optional[Value],
        label_value: Optional[str],
        target_value: Optional[Value],
        emit,
    ) -> Iterator[Row]:
        """Index-free full scan (naive mode)."""
        for source, label, edge_target in self.graph.edges():
            self.metrics.edges_examined += 1
            if source_value is not None and source != source_value:
                continue
            if label_value is not None and label != label_value:
                continue
            if target_value is not None and not _values_equal(edge_target, target_value):
                continue
            yield from emit(source, label, edge_target)

    def _nfas(self, path: PathExpr) -> Tuple[NFA, NFA]:
        return self.plan_cache.nfas(path)

    def _extend_path(
        self, condition: PathCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        forward, backward = self._nfas(condition.path)
        slots = frame.slots
        source_index = slots[condition.source.name]
        source_value: Optional[Value] = None
        if row[source_index] is not _UNSET:
            source_value = row[source_index]  # type: ignore[assignment]
        target = condition.target
        target_index: Optional[int] = None
        if isinstance(target, Const):
            target_value: Optional[Value] = target.atom
        else:
            slot = slots[target.name]
            if row[slot] is _UNSET:
                target_value = None
                target_index = slot
            else:
                target_value = row[slot]  # type: ignore[assignment]

        footprint = self.footprint
        if footprint is not None:
            # Conservative: a path depends on its whole label alphabet
            # (any edge it could traverse) plus zero-length existence
            # checks on its endpoints; wildcards widen to all edges.
            if source_value is None and target_value is None:
                footprint.all_edges = True
            else:
                alphabet = path_alphabet(condition.path)
                if alphabet is None:
                    footprint.all_edges = True
                else:
                    footprint.label_scans |= alphabet
                if isinstance(source_value, Oid):
                    footprint.node_checks.add(source_value)
                if isinstance(target_value, Oid):
                    footprint.node_checks.add(target_value)

        if source_value is not None:
            if not isinstance(source_value, Oid) or not self.graph.has_node(source_value):
                return
            if target_value is not None:
                probes = (
                    [target_value]
                    if isinstance(target_value, Oid)
                    else list(_coercion_probes(target_value))
                )
                if any(path_exists(self.graph, forward, source_value, p) for p in probes):
                    yield row
                return
            assert target_index is not None
            prefix, suffix = row[:target_index], row[target_index + 1:]
            for reached in targets_from(self.graph, forward, source_value):
                yield prefix + (reached,) + suffix
            return

        if target_value is not None:
            probes = (
                [target_value]
                if isinstance(target_value, Oid)
                else list(_coercion_probes(target_value))
            )
            found: Dict[Oid, None] = {}
            if self.use_indexes:
                for probe in probes:
                    for source in sources_to(self.graph, backward, probe):
                        found.setdefault(source, None)
            else:
                for source in self.graph.nodes():
                    if any(path_exists(self.graph, forward, source, p) for p in probes):
                        found.setdefault(source, None)
            prefix, suffix = row[:source_index], row[source_index + 1:]
            for source in found:
                yield prefix + (source,) + suffix
            return

        for source in list(self.graph.nodes()):
            for reached in targets_from(self.graph, forward, source):
                new = list(row)
                new[source_index] = source
                assert target_index is not None
                new[target_index] = reached
                yield tuple(new)

    def _extend_comparison(
        self, condition: ComparisonCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        left = self._term_value(condition.left, row, frame)
        right = self._term_value(condition.right, row, frame)
        if left is None and right is None:
            raise StruqlEvaluationError(
                f"comparison {condition} has no bound side; "
                "reorder the query or enable the optimizer"
            )
        if left is None or right is None:
            if condition.op != "=":
                raise StruqlEvaluationError(
                    f"order comparison {condition} requires both sides bound"
                )
            unbound = condition.left if left is None else condition.right
            bound_value = right if left is None else left
            assert isinstance(unbound, Var) and bound_value is not None
            index = frame.slots[unbound.name]
            yield row[:index] + (bound_value,) + row[index + 1:]
            return
        if self._compare(left, right, condition.op):
            yield row

    @staticmethod
    def _term_value(term, row: Row, frame: _Frame) -> Optional[Value]:
        if isinstance(term, Const):
            return term.atom
        return frame.get(row, term.name)

    @staticmethod
    def _compare(left: Value, right: Value, op: str) -> bool:
        if op == "=":
            return _values_equal(left, right)
        if op == "!=":
            return not _values_equal(left, right)
        left_atom, right_atom = _as_atom(left), _as_atom(right)
        if left_atom is None or right_atom is None:
            return False  # oids are not ordered
        sign = compare_atoms(left_atom, right_atom)
        return {"<": sign < 0, "<=": sign <= 0, ">": sign > 0, ">=": sign >= 0}[op]

    def _extend_predicate(
        self, condition: PredicateCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        value = frame.get(row, condition.var.name)
        if value is None:
            raise StruqlEvaluationError(
                f"predicate {condition} applied to unbound variable"
            )
        predicate = builtins.object_predicate(condition.name)
        if predicate is None:
            raise StruqlEvaluationError(f"unknown predicate {condition.name!r}")
        probe: object = value
        if isinstance(value, str):
            probe = Atom(AtomType.STRING, value)
        if predicate(probe):
            yield row

    def _extend_not(
        self, condition: NotCond, row: Row, siblings: Sequence[Condition], frame: _Frame
    ) -> Iterator[Row]:
        needed = shared_not_variables(condition, siblings)
        missing = [name for name in needed if frame.get(row, name) is None]
        if missing:
            raise StruqlEvaluationError(
                f"negation {condition} checked before {missing} were bound"
            )
        inner_rows = self.bindings(list(condition.inner), initial=[frame.to_dict(row)])
        if not inner_rows:
            yield row


# ---------------------------------------------------------------------- #
# the construction stage


class _Constructor:
    """Applies create/link/collect clauses of a query tree to a result graph.

    When a link or collect clause references a *data-graph* node (allowed:
    "each node in link or collect is either mentioned in create or is a
    node in the data graph"), that node is imported into the result graph
    together with everything reachable from it -- the site graph "models
    both the site's content and structure", so referenced content must be
    renderable from the site graph alone.  Imported nodes stay immutable.
    """

    def __init__(self, result: Graph, metrics: Metrics, source: Graph) -> None:
        self.result = result
        self.metrics = metrics
        self.source = source
        self._new_nodes: Set[Oid] = {oid for _, _, oid in result.skolems.terms()}
        self._imported: Set[Oid] = set()

    def run(self, query: Query, rows: List[Binding], engine: QueryEngine) -> None:
        for row in rows:
            self._construct_row(query, row)
        for block in query.blocks:
            block_rows = engine.bindings(block.where, initial=rows)
            self.run(block, block_rows, engine)

    # ------------------------------------------------------------ #

    def _construct_row(self, query: Query, row: Binding) -> None:
        for term in query.create:
            self._skolem(term, row)
        for link in query.link:
            self._link(link, row)
        for collect in query.collect:
            node = self._resolve_node(collect.node, row, importing=True)
            self.result.add_to_collection(collect.collection, node)

    def _skolem(self, term: SkolemTerm, row: Binding) -> Oid:
        args: List[object] = []
        for arg in term.args:
            if isinstance(arg, Const):
                args.append(arg.atom)
                continue
            value = row.get(arg.name)
            if value is None:
                raise StruqlEvaluationError(
                    f"Skolem argument {arg.name!r} unbound in {term}"
                )
            if isinstance(value, str):
                value = Atom(AtomType.STRING, value)
            args.append(value)
        before = self.result.node_count
        oid = self.result.skolem(term.function, *args)
        if self.result.node_count > before:
            self.metrics.nodes_created += 1
        self._new_nodes.add(oid)
        return oid

    def _resolve_node(
        self, ref, row: Binding, importing: bool
    ) -> Oid:
        if isinstance(ref, SkolemTerm):
            return self._skolem(ref, row)
        value = row.get(ref.name)
        if not isinstance(value, Oid):
            raise StruqlEvaluationError(
                f"variable {ref.name!r} does not denote a node (got {value!r})"
            )
        if not self.result.has_node(value):
            if not importing:
                raise StruqlEvaluationError(f"node {value} not present in result graph")
            self._import_subgraph(value)
        return value

    def _import_subgraph(self, root: Oid) -> None:
        """Copy a data-graph node and its reachable closure into the result."""
        if root in self._imported or not self.source.has_node(root):
            self.result.add_node(root)
            return
        reached = self.source.reachable(root)
        for oid in reached:
            self.result.add_node(oid)
            self._imported.add(oid)
        for oid in reached:
            for label, target in self.source.out_edges(oid):
                self.result.add_edge(oid, label, target)

    def _link(self, link: LinkClause, row: Binding) -> None:
        source = self._resolve_node(link.source, row, importing=False) \
            if isinstance(link.source, SkolemTerm) else self._resolve_source_var(link.source, row)
        if isinstance(link.label, str):
            label = link.label
        else:
            bound = row.get(link.label.name)
            if isinstance(bound, Atom):
                label = bound.as_string()
            elif isinstance(bound, str):
                label = bound
            else:
                raise StruqlEvaluationError(
                    f"arc variable {link.label.name!r} is not bound to a label"
                )
        target = self._resolve_target(link.target, row)
        before = self.result.edge_count
        self.result.add_edge(source, label, target)
        if self.result.edge_count > before:
            self.metrics.edges_created += 1

    def _resolve_source_var(self, ref: Var, row: Binding) -> Oid:
        value = row.get(ref.name)
        if not isinstance(value, Oid):
            raise StruqlEvaluationError(
                f"link source {ref.name!r} does not denote a node (got {value!r})"
            )
        if value not in self._new_nodes:
            raise ImmutableNodeError(
                f"link source {value} is an existing node; STRUQL only adds "
                "edges out of new (Skolem-created) nodes"
            )
        return value

    def _resolve_target(self, target, row: Binding) -> Target:
        if isinstance(target, SkolemTerm):
            return self._skolem(target, row)
        if isinstance(target, Const):
            return target.atom
        value = row.get(target.name)
        if value is None:
            raise StruqlEvaluationError(f"link target {target.name!r} unbound")
        if isinstance(value, Oid):
            if not self.result.has_node(value):
                self._import_subgraph(value)
            return value
        if isinstance(value, str):
            return Atom(AtomType.STRING, value)
        return value


# ---------------------------------------------------------------------- #
# public API


def evaluate(
    program: Union[Program, Query, str],
    source: Graph,
    into: Optional[Graph] = None,
    optimize: bool = True,
    use_indexes: bool = True,
    metrics: Optional[Metrics] = None,
    engine: Optional[QueryEngine] = None,
) -> Graph:
    """Evaluate a STRUQL program over ``source`` and return the result graph.

    ``into`` composes onto an existing graph ("queries [may] add nodes and
    arcs to a graph", section 6.2); passing ``into=source`` queries a
    graph while extending it, with the binding relation computed before
    construction starts (the where stage sees a consistent snapshot
    because rows are fully materialized per block).

    Passing ``engine`` reuses a warm :class:`QueryEngine` (its plan cache
    and statistics snapshot carry across calls); its metrics are pointed
    at this call's ``metrics`` object for the duration.
    """
    if isinstance(program, str):
        program = parse(program)
    if isinstance(program, Query):
        program = Program(queries=[program])
    result = into if into is not None else Graph()
    shared_metrics = metrics or Metrics()
    if engine is None:
        engine = QueryEngine(
            source, optimize=optimize, use_indexes=use_indexes, metrics=shared_metrics
        )
    else:
        engine.metrics = shared_metrics
    for query in program.queries:
        rows = engine.bindings(query.where, initial=[{}])
        _Constructor(result, shared_metrics, source).run(query, rows, engine)
    return result


def query_bindings(
    text: Union[str, Sequence[Condition]],
    graph: Graph,
    optimize: bool = True,
    use_indexes: bool = True,
) -> List[Binding]:
    """Evaluate just a where-clause and return its binding relation.

    Accepts either a full query text (its first query's where clause is
    used) or a pre-built condition list.  Handy for ad-hoc querying and
    for the test suite.
    """
    if isinstance(text, str):
        program = parse(text)
        conditions: Sequence[Condition] = program.queries[0].where
    else:
        conditions = text
    engine = QueryEngine(graph, optimize=optimize, use_indexes=use_indexes)
    return engine.bindings(conditions)
