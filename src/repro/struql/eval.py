"""STRUQL evaluation: the query stage and the construction stage.

Semantics follow paper section 2.2 exactly:

* **Query stage.**  "The meaning of the where-clause is a relation
  defined by the set of assignments from variables in the query to oid
  and label values in the data graph that satisfy all conditions."
  :meth:`QueryEngine.bindings` computes that relation as a list of
  binding dicts (deduplicated -- it is a set), by pipelining the
  conditions in planner order (or written order in naive mode) as an
  index-nested-loop join.

* **Construction stage.**  "For each row in the relation, first
  construct all new node oids, as specified in the create clause ...
  next, construct the new edges, as described in the link clause."
  Skolem functions are memoized per result graph, so composed queries
  and repeated link clauses agree on identity.  "Edges are added from
  new nodes to new or existing nodes; existing nodes are immutable and
  cannot be extended" -- enforced: a link source must resolve to a
  Skolem-created node of the result graph, otherwise
  :class:`~repro.errors.ImmutableNodeError`.

Nested blocks extend the parent's binding relation with their own
conditions and run their own construction clauses per extended row.

Binding values are :class:`~repro.graph.Oid` (nodes),
:class:`~repro.graph.Atom` (atomic values), or ``str`` (arc-variable
labels -- "elements of the graph's schema").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import (
    ImmutableNodeError,
    StruqlEvaluationError,
)
from ..graph import (
    Atom,
    AtomType,
    Graph,
    Oid,
    Target,
    atoms_equal,
    coercion_probes,
    compare_atoms,
)
from ..repository.indexes import IndexStatistics, graph_statistics
from ..resilience.chaos import maybe_fail
from ..resilience.deadline import current_deadline
from . import builtins
from .ast import (
    CollectClause,
    CollectionCond,
    ComparisonCond,
    Condition,
    Const,
    EdgeCond,
    LinkClause,
    NotCond,
    PathCond,
    PathExpr,
    PredicateCond,
    Program,
    Query,
    SkolemTerm,
    Var,
)
from .footprint import Footprint, path_alphabet
from .optimizer import (
    DedupFactors,
    choose_path_direction,
    learn_dedup_factor,
    order_conditions,
    shared_not_variables,
    significant_dedup_factor,
)
from .parser import parse
from .paths import (
    NFA,
    compile_path,
    path_exists,
    reverse_expr,
    sources_to,
    sources_to_many,
    targets_from,
    targets_from_many,
)
from .plancache import PlanCache, global_plan_cache

#: A binding value: node oid, atomic value, or arc-variable label.
Value = Union[Oid, Atom, str]
Binding = Dict[str, Value]


@dataclass
class Metrics:
    """Counters the benchmarks read after an evaluation."""

    bindings_produced: int = 0
    edges_examined: int = 0
    conditions_evaluated: int = 0
    nodes_created: int = 0
    edges_created: int = 0
    #: compiled-plan cache lookups that were served from the cache
    plan_cache_hits: int = 0
    #: compiled-plan cache lookups that had to run the planner
    plan_cache_misses: int = 0
    #: fresh statistics snapshots this engine observed (epoch changes)
    stats_snapshots: int = 0
    #: pages rendered by worker threads during parallel site generation
    pages_rendered_parallel: int = 0
    #: block-mode rows answered from a per-distinct-key cache instead of
    #: re-probing the indexes
    dedup_hits: int = 0
    #: block-mode index probes actually executed (one per distinct key)
    hash_join_probes: int = 0
    #: path endpoints answered from the shared reachability memo
    path_memo_hits: int = 0
    #: path endpoints that had to run the batched product-automaton search
    path_memo_misses: int = 0
    #: top-level where-clauses whose plan prefix ran as one SQL SELECT
    sql_pushdowns: int = 0
    #: conditions folded into pushed-down SELECTs (across all pushdowns)
    sql_pushed_conditions: int = 0
    #: binding rows fetched from pushed-down SELECTs before residual work
    sql_rows_fetched: int = 0
    #: SQL-capable evaluations that fell back to the in-memory operators
    sql_fallbacks: int = 0

    def merge(self, other: "Metrics") -> None:
        """Fold another engine's counters into this one.

        Thread-safety contract: a ``Metrics`` instance belongs to one
        engine, and an engine to one thread (serve workers each own a
        warm engine).  Cross-thread aggregation happens by merging
        snapshots here, never by sharing an instance between
        incrementing threads.
        """
        for spec in dataclass_fields(self):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )


@dataclass
class OperatorStats:
    """Row counts of one block operator in a block-mode ``bindings`` call.

    ``probes`` is how many distinct-key index probes the operator ran;
    ``dedup_hits`` is how many input rows were answered from its per-key
    cache instead.  EXPLAIN renders these per plan step.
    """

    condition: str
    rows_in: int
    rows_out: int
    probes: int
    dedup_hits: int


# ---------------------------------------------------------------------- #
# value plumbing


def _as_atom(value: Value) -> Optional[Atom]:
    if isinstance(value, Atom):
        return value
    if isinstance(value, str):
        return Atom(AtomType.STRING, value)
    return None


def _values_equal(left: Value, right: Value) -> bool:
    left_is_oid = isinstance(left, Oid)
    right_is_oid = isinstance(right, Oid)
    if left_is_oid or right_is_oid:
        return left == right
    left_atom, right_atom = _as_atom(left), _as_atom(right)
    assert left_atom is not None and right_atom is not None
    return atoms_equal(left_atom, right_atom)


def _coercion_probes(value: Value) -> Tuple[Atom, ...]:
    """Atoms to probe in exact-match indexes for a coercing equality.

    The reverse-adjacency (value) index is exact, but STRUQL equality
    coerces; so a constant ``"1998"`` must also probe the INTEGER and
    FLOAT spellings, and vice versa.  Memoized per distinct atom: the
    same constant is probed for every frontier row, and the spelling
    set never changes.
    """
    atom = _as_atom(value)
    if atom is None:
        return ()
    return _atom_coercion_probes(atom)


# The probe-spelling computation lives with the value model so the SQL
# backend can materialize the same probe sets without importing struql.
_atom_coercion_probes = coercion_probes


# ---------------------------------------------------------------------- #
# the query stage

#: Sentinel marking an unbound slot in a tuple row.
_UNSET = object()

#: A tuple row: one slot per variable of the frame, ``_UNSET`` if unbound.
Row = Tuple[object, ...]


def _record_edge_footprint(
    footprint: Footprint,
    source_value: Optional[Value],
    label_value: Optional[str],
    target_value: Optional[Value],
) -> None:
    """Semantic dependence of one edge-condition bound/unbound pattern;
    recorded before any index-vs-scan branch so every execution mode
    (row, block, naive) agrees on the footprint."""
    if source_value is not None:
        if isinstance(source_value, Oid):
            if label_value is not None:
                footprint.edge_reads.add((source_value, label_value))
            else:
                footprint.oid_reads_all.add(source_value)
    elif target_value is not None:
        if isinstance(target_value, Oid):
            footprint.value_probes.add((target_value, label_value))
        else:
            for probe_atom in _coercion_probes(target_value):
                footprint.value_probes.add((probe_atom, label_value))
    elif label_value is not None:
        footprint.label_scans.add(label_value)
    else:
        footprint.all_edges = True


class _Frame:
    """Slot table for one :meth:`QueryEngine.bindings` call.

    The binding relation is pipelined as slot-indexed tuple rows instead
    of per-row dicts: a row copy is one tuple allocation, membership and
    deduplication are plain tuple hashing, and variables resolve to
    integer slots once per condition instead of string lookups per row.
    Dicts appear only at the API boundary (:meth:`to_dict`).
    """

    __slots__ = ("names", "slots")

    def __init__(self, names: List[str]) -> None:
        self.names = names
        self.slots = {name: index for index, name in enumerate(names)}

    @classmethod
    def for_call(
        cls, conditions: Sequence[Condition], initial_rows: Sequence[Binding]
    ) -> "_Frame":
        names: List[str] = []
        seen: Set[str] = set()
        for row in initial_rows:
            for name in row:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        for condition in conditions:
            for name in condition.variables():
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return cls(names)

    def from_dict(self, binding: Binding) -> Row:
        return tuple(binding.get(name, _UNSET) for name in self.names)

    def to_dict(self, row: Row) -> Binding:
        return {
            name: value
            for name, value in zip(self.names, row)
            if value is not _UNSET
        }

    def get(self, row: Row, name: str) -> Optional[Value]:
        index = self.slots.get(name)
        if index is None:
            return None
        value = row[index]
        return None if value is _UNSET else value  # type: ignore[return-value]

    def unique_dicts(self, rows: List[Row], fully_bound: bool = False) -> List[Binding]:
        """Deduplicate (first occurrence wins) and convert to dicts.

        One hashed pass: ``dict.fromkeys`` preserves first-occurrence
        order and hashes each tuple row exactly once, instead of the
        probe-then-insert double hash of a seen-set loop.

        ``fully_bound=True`` promises no row contains ``_UNSET`` (no
        negation inner variables, no partially bound seeds), letting
        conversion skip the per-slot filter for a C-level ``dict(zip)``.
        """
        if fully_bound:
            names = self.names
            return [dict(zip(names, row)) for row in dict.fromkeys(rows)]
        to_dict = self.to_dict
        return [to_dict(row) for row in dict.fromkeys(rows)]


class _FootprintScope:
    """Swaps a :class:`QueryEngine`'s active footprint recorder in and out."""

    __slots__ = ("_engine", "_footprint", "_previous")

    def __init__(self, engine: "QueryEngine", footprint: Optional[Footprint]) -> None:
        self._engine = engine
        self._footprint = footprint
        self._previous: Optional[Footprint] = None

    def __enter__(self) -> Optional[Footprint]:
        self._previous = self._engine.footprint
        self._engine.footprint = self._footprint
        return self._footprint

    def __exit__(self, *exc_info: object) -> None:
        self._engine.footprint = self._previous


class QueryEngine:
    """Evaluates where-clauses over one graph.

    ``optimize=False`` keeps the written condition order;
    ``use_indexes=False`` additionally replaces index lookups with full
    scans (the E5 ablation baseline).  ``use_blocks=False`` falls back
    to tuple-at-a-time extension -- the set-at-a-time ablation baseline;
    in block mode (the default) each planned condition consumes the
    whole frontier at once, probing the indexes once per *distinct*
    bound key and hash-joining the results back onto the rows, and path
    conditions batch all their endpoints into one origin-tagged
    product-automaton search backed by a per-``(NFA, graph epoch)``
    reachability memo.  Both modes produce identical binding relations
    (same rows, same order).  Block mode also *learns* per-condition
    dedup factors (distinct keys / input rows); ``adaptive=True``
    additionally feeds them back into clause ordering, trading
    warm-vs-cold row-order determinism for batch-aware plans.

    Construction is O(1): statistics come lazily from the shared
    epoch-stamped provider (:func:`~repro.repository.indexes.graph_statistics`)
    unless an explicit ``stats`` snapshot is supplied, and condition
    orderings / compiled path NFAs are served from ``plan_cache``
    (defaulting to the process-wide cache) keyed by condition identity
    and the statistics fingerprint, so repeated evaluation over an
    unchanged graph re-plans nothing.
    """

    def __init__(
        self,
        graph: Graph,
        optimize: bool = True,
        use_indexes: bool = True,
        stats: Optional[IndexStatistics] = None,
        metrics: Optional[Metrics] = None,
        plan_cache: Optional[PlanCache] = None,
        use_blocks: bool = True,
        adaptive: bool = False,
    ) -> None:
        self.graph = graph
        self.optimize = optimize
        self.use_indexes = use_indexes
        self.use_blocks = use_blocks
        #: feed learned dedup factors back into clause ordering.  Off by
        #: default: replanning with learned factors can reorder the
        #: binding relation (same set, different row order), and warm
        #: engines are expected to reproduce a cold engine's output
        #: byte-for-byte unless the caller opts into adaptivity.
        self.adaptive = adaptive
        self._explicit_stats = stats
        self._seen_stats: Optional[IndexStatistics] = None
        self.metrics = metrics if metrics is not None else Metrics()
        self.plan_cache = plan_cache if plan_cache is not None else global_plan_cache()
        #: learned per-condition dedup ratios, fed back into the planner
        self.dedup_factors: DedupFactors = {}
        #: per-operator row counts of the most recent block-mode
        #: top-level ``bindings`` call (EXPLAIN renders these)
        self.last_operator_stats: List[OperatorStats] = []
        #: when set, every condition evaluated records its semantic
        #: dependence here (see :mod:`repro.struql.footprint`)
        self.footprint: Optional[Footprint] = None

    def record_into(self, footprint: Optional[Footprint]) -> "_FootprintScope":
        """Context manager: record reads into ``footprint`` for the
        duration (restoring whatever recorder was active before)."""
        return _FootprintScope(self, footprint)

    @property
    def stats(self) -> IndexStatistics:
        """Planning statistics: the explicit snapshot if one was given,
        otherwise the graph's shared epoch-stamped snapshot (refreshed
        automatically after any mutation)."""
        if self._explicit_stats is not None:
            return self._explicit_stats
        current = graph_statistics(self.graph)
        if current is not self._seen_stats:
            self._seen_stats = current
            self.metrics.stats_snapshots += 1
        return current

    @stats.setter
    def stats(self, value: Optional[IndexStatistics]) -> None:
        self._explicit_stats = value

    # ------------------------------------------------------------ #

    def bindings(
        self,
        conditions: Sequence[Condition],
        initial: Optional[Iterable[Binding]] = None,
    ) -> List[Binding]:
        """The binding relation of a conjunction of conditions.

        ``initial`` seeds the pipeline (used for nested blocks); default
        is the single empty binding.  The result is deduplicated.
        """
        maybe_fail("engine.bindings")
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("engine.bindings")
        initial_rows: List[Binding] = [
            dict(b) for b in (initial if initial is not None else [{}])
        ]
        frame = _Frame.for_call(conditions, initial_rows)
        rows: List[Row] = [frame.from_dict(b) for b in initial_rows]
        if not conditions:
            return frame.unique_dicts(rows)
        bound = (
            frozenset().union(*[frozenset(b) for b in initial_rows])
            if initial_rows
            else frozenset()
        )
        if self.optimize:
            ordered = self._plan(conditions, bound)
        else:
            ordered = list(conditions)
        if self.use_blocks:
            rows = self._run_blocks(ordered, rows, conditions, frame)
        else:
            for condition in ordered:
                self.metrics.conditions_evaluated += 1
                if deadline is not None:
                    deadline.check("engine.condition")
                next_rows: List[Row] = []
                extend = self._extend
                ticks = 0
                for row in rows:
                    ticks += 1
                    if not (ticks & 1023) and deadline is not None:
                        deadline.check("engine.rows")
                    next_rows.extend(extend(condition, row, conditions, frame))
                rows = next_rows
                if not rows:
                    break
        self.metrics.bindings_produced += len(rows)
        # every slot of a surviving row is bound unless a seed row left
        # one open or a negation carried inner-only variables into the
        # frame -- outside those, conversion can take the C-level path
        fully_bound = not bound and not any(
            isinstance(condition, NotCond) for condition in conditions
        )
        return frame.unique_dicts(rows, fully_bound=fully_bound)

    def _run_blocks(
        self,
        ordered: Sequence[Condition],
        rows: List[Row],
        conditions: Sequence[Condition],
        frame: _Frame,
    ) -> List[Row]:
        """Set-at-a-time pipeline: each condition consumes the whole
        frontier as one block operator.  Output rows (values and order)
        are identical to the tuple-at-a-time loop; only the probing
        collapses -- once per distinct bound key instead of once per
        row.  Per-operator row counts land in ``last_operator_stats``."""
        metrics = self.metrics
        deadline = current_deadline()
        ops: List[OperatorStats] = []
        for condition in ordered:
            metrics.conditions_evaluated += 1
            if deadline is not None:
                deadline.check("engine.block")
            rows_in = len(rows)
            probes_before = metrics.hash_join_probes
            dedup_before = metrics.dedup_hits
            rows = self._apply_block(condition, rows, conditions, frame)
            ops.append(
                OperatorStats(
                    condition=str(condition),
                    rows_in=rows_in,
                    rows_out=len(rows),
                    probes=metrics.hash_join_probes - probes_before,
                    dedup_hits=metrics.dedup_hits - dedup_before,
                )
            )
            if not rows:
                break
        # assigned last so nested calls (negations) don't clobber it
        self.last_operator_stats = ops
        return rows

    def _plan(
        self, conditions: Sequence[Condition], bound: frozenset
    ) -> List[Condition]:
        """The ordered plan, via the compiled-plan cache.

        The key ties the plan to the exact condition objects, the seed
        binding pattern, the index mode, and the statistics fingerprint
        ``(graph, epoch)`` -- so any graph mutation invalidates it.  In
        *adaptive* block mode the learned dedup factors join the key
        (quantized, so the plan refreshes when the learned ratios move
        materially, not on every observation) and feed the greedy
        ordering.
        """
        stats = self.stats
        factors: Optional[DedupFactors] = None
        signature: Tuple[Tuple[int, float], ...] = ()
        if self.use_blocks and self.adaptive and self.dedup_factors:
            factors = self.dedup_factors
            pairs = []
            for index, condition in enumerate(conditions):
                quantized = significant_dedup_factor(factors.get(condition))
                if quantized is not None:
                    pairs.append((index, quantized))
            signature = tuple(pairs)
        key = PlanCache.plan_key(
            conditions, bound, self.use_indexes, stats.fingerprint(), signature
        )
        cached = self.plan_cache.get_plan(key)
        if cached is not None:
            self.metrics.plan_cache_hits += 1
            return cached
        self.metrics.plan_cache_misses += 1
        ordered = order_conditions(conditions, bound, stats, self.use_indexes, factors)
        self.plan_cache.put_plan(key, conditions, ordered)
        return ordered

    # ------------------------------------------------------------ #
    # per-condition extension

    def _extend(
        self,
        condition: Condition,
        row: Row,
        siblings: Sequence[Condition],
        frame: _Frame,
    ) -> Iterator[Row]:
        if isinstance(condition, CollectionCond):
            yield from self._extend_collection(condition, row, frame)
        elif isinstance(condition, EdgeCond):
            yield from self._extend_edge(condition, row, frame)
        elif isinstance(condition, PathCond):
            yield from self._extend_path(condition, row, frame)
        elif isinstance(condition, ComparisonCond):
            yield from self._extend_comparison(condition, row, frame)
        elif isinstance(condition, PredicateCond):
            yield from self._extend_predicate(condition, row, frame)
        elif isinstance(condition, NotCond):
            yield from self._extend_not(condition, row, siblings, frame)
        else:
            raise StruqlEvaluationError(f"unknown condition type: {condition!r}")

    def _extend_collection(
        self, condition: CollectionCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        index = frame.slots[condition.var.name]
        value = row[index]
        footprint = self.footprint
        if footprint is not None:
            if value is _UNSET:
                footprint.collection_scans.add(condition.collection)
            elif isinstance(value, Oid):
                footprint.membership_reads.add((condition.collection, value))
        members = self.graph.collection(condition.collection)
        if value is not _UNSET:
            if self.use_indexes:
                hit = isinstance(value, Oid) and self.graph.in_collection(
                    condition.collection, value
                )
            else:
                hit = value in members
            if hit:
                yield row
            return
        prefix, suffix = row[:index], row[index + 1:]
        for member in members:
            yield prefix + (member,) + suffix

    def _resolve_label(
        self, label: Union[str, Var], row: Row, frame: _Frame
    ) -> Tuple[Optional[str], Optional[str]]:
        """Returns (label string or None if unbound, arc-var name or None)."""
        if isinstance(label, str):
            return label, None
        bound = frame.get(row, label.name)
        if bound is None:
            return None, label.name
        if isinstance(bound, str):
            return bound, None
        if isinstance(bound, Atom):
            return bound.as_string(), None
        return None, None  # bound to an oid: can never label an edge

    def _extend_edge(
        self, condition: EdgeCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        label_value, arc_var = self._resolve_label(condition.label, row, frame)
        if label_value is None and arc_var is None:
            return  # arc variable bound to a non-label value
        slots = frame.slots
        source_index = slots[condition.source.name]
        source_value: Optional[Value] = None
        if row[source_index] is not _UNSET:
            source_value = row[source_index]  # type: ignore[assignment]
        target = condition.target
        target_index: Optional[int] = None
        if isinstance(target, Const):
            target_value: Optional[Value] = target.atom
        else:
            slot = slots[target.name]
            if row[slot] is _UNSET:
                target_value = None
                target_index = slot
            else:
                target_value = row[slot]  # type: ignore[assignment]
        arc_index = slots[arc_var] if arc_var is not None else None
        set_source = source_value is None

        footprint = self.footprint
        if footprint is not None:
            _record_edge_footprint(footprint, source_value, label_value, target_value)

        def emit(source: Oid, label: str, edge_target: Target) -> Iterator[Row]:
            new = list(row)
            if set_source:
                new[source_index] = source
            if arc_index is not None:
                new[arc_index] = label
            if target_index is not None:
                new[target_index] = edge_target
            yield tuple(new)

        if not self.use_indexes:
            yield from self._edge_scan(
                source_value, label_value, target_value, emit
            )
            return

        if source_value is not None:
            if not isinstance(source_value, Oid) or not self.graph.has_node(source_value):
                return
            if label_value is not None:
                candidates: Iterable[Tuple[str, Target]] = (
                    (label_value, t) for t in self.graph.targets(source_value, label_value)
                )
            else:
                candidates = self.graph.out_edges(source_value)
            for label, edge_target in candidates:
                self.metrics.edges_examined += 1
                if target_value is not None and not _values_equal(edge_target, target_value):
                    continue
                yield from emit(source_value, label, edge_target)
            return

        if target_value is not None:
            probes: List[Target]
            if isinstance(target_value, Oid):
                probes = [target_value]
            else:
                probes = list(_coercion_probes(target_value))
            seen: Set[Tuple[Oid, str]] = set()
            for probe in probes:
                for source, label in self.graph.in_edges(probe):
                    self.metrics.edges_examined += 1
                    if label_value is not None and label != label_value:
                        continue
                    if (source, label) in seen:
                        continue
                    seen.add((source, label))
                    yield from emit(source, label, probe)
            return

        if label_value is not None:
            for source, edge_target in self.graph.edges_with_label(label_value):
                self.metrics.edges_examined += 1
                yield from emit(source, label_value, edge_target)
            return
        for source, label, edge_target in self.graph.edges():
            self.metrics.edges_examined += 1
            yield from emit(source, label, edge_target)

    def _edge_scan(
        self,
        source_value: Optional[Value],
        label_value: Optional[str],
        target_value: Optional[Value],
        emit,
    ) -> Iterator[Row]:
        """Index-free full scan (naive mode)."""
        for source, label, edge_target in self.graph.edges():
            self.metrics.edges_examined += 1
            if source_value is not None and source != source_value:
                continue
            if label_value is not None and label != label_value:
                continue
            if target_value is not None and not _values_equal(edge_target, target_value):
                continue
            yield from emit(source, label, edge_target)

    def _nfas(self, path: PathExpr) -> Tuple[NFA, NFA]:
        return self.plan_cache.nfas(path)

    def _extend_path(
        self, condition: PathCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        forward, backward = self._nfas(condition.path)
        slots = frame.slots
        source_index = slots[condition.source.name]
        source_value: Optional[Value] = None
        if row[source_index] is not _UNSET:
            source_value = row[source_index]  # type: ignore[assignment]
        target = condition.target
        target_index: Optional[int] = None
        if isinstance(target, Const):
            target_value: Optional[Value] = target.atom
        else:
            slot = slots[target.name]
            if row[slot] is _UNSET:
                target_value = None
                target_index = slot
            else:
                target_value = row[slot]  # type: ignore[assignment]

        footprint = self.footprint
        if footprint is not None:
            # Conservative: a path depends on its whole label alphabet
            # (any edge it could traverse) plus zero-length existence
            # checks on its endpoints; wildcards widen to all edges.
            if source_value is None and target_value is None:
                footprint.all_edges = True
            else:
                alphabet = path_alphabet(condition.path)
                if alphabet is None:
                    footprint.all_edges = True
                else:
                    footprint.label_scans |= alphabet
                if isinstance(source_value, Oid):
                    footprint.node_checks.add(source_value)
                if isinstance(target_value, Oid):
                    footprint.node_checks.add(target_value)

        if source_value is not None:
            if not isinstance(source_value, Oid) or not self.graph.has_node(source_value):
                return
            if target_value is not None:
                probes = (
                    [target_value]
                    if isinstance(target_value, Oid)
                    else list(_coercion_probes(target_value))
                )
                if any(path_exists(self.graph, forward, source_value, p) for p in probes):
                    yield row
                return
            assert target_index is not None
            prefix, suffix = row[:target_index], row[target_index + 1:]
            for reached in targets_from(self.graph, forward, source_value):
                yield prefix + (reached,) + suffix
            return

        if target_value is not None:
            probes = (
                [target_value]
                if isinstance(target_value, Oid)
                else list(_coercion_probes(target_value))
            )
            found: Dict[Oid, None] = {}
            if self.use_indexes:
                for probe in probes:
                    for source in sources_to(self.graph, backward, probe):
                        found.setdefault(source, None)
            else:
                for source in self.graph.nodes():
                    if any(path_exists(self.graph, forward, source, p) for p in probes):
                        found.setdefault(source, None)
            prefix, suffix = row[:source_index], row[source_index + 1:]
            for source in found:
                yield prefix + (source,) + suffix
            return

        for source in list(self.graph.nodes()):
            for reached in targets_from(self.graph, forward, source):
                new = list(row)
                new[source_index] = source
                assert target_index is not None
                new[target_index] = reached
                yield tuple(new)

    def _extend_comparison(
        self, condition: ComparisonCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        left = self._term_value(condition.left, row, frame)
        right = self._term_value(condition.right, row, frame)
        if left is None and right is None:
            raise StruqlEvaluationError(
                f"comparison {condition} has no bound side; "
                "reorder the query or enable the optimizer"
            )
        if left is None or right is None:
            if condition.op != "=":
                raise StruqlEvaluationError(
                    f"order comparison {condition} requires both sides bound"
                )
            unbound = condition.left if left is None else condition.right
            bound_value = right if left is None else left
            assert isinstance(unbound, Var) and bound_value is not None
            index = frame.slots[unbound.name]
            yield row[:index] + (bound_value,) + row[index + 1:]
            return
        if self._compare(left, right, condition.op):
            yield row

    @staticmethod
    def _term_value(term, row: Row, frame: _Frame) -> Optional[Value]:
        if isinstance(term, Const):
            return term.atom
        return frame.get(row, term.name)

    @staticmethod
    def _compare(left: Value, right: Value, op: str) -> bool:
        if op == "=":
            return _values_equal(left, right)
        if op == "!=":
            return not _values_equal(left, right)
        left_atom, right_atom = _as_atom(left), _as_atom(right)
        if left_atom is None or right_atom is None:
            return False  # oids are not ordered
        sign = compare_atoms(left_atom, right_atom)
        return {"<": sign < 0, "<=": sign <= 0, ">": sign > 0, ">=": sign >= 0}[op]

    def _extend_predicate(
        self, condition: PredicateCond, row: Row, frame: _Frame
    ) -> Iterator[Row]:
        value = frame.get(row, condition.var.name)
        if value is None:
            raise StruqlEvaluationError(
                f"predicate {condition} applied to unbound variable"
            )
        predicate = builtins.object_predicate(condition.name)
        if predicate is None:
            raise StruqlEvaluationError(f"unknown predicate {condition.name!r}")
        probe: object = value
        if isinstance(value, str):
            probe = Atom(AtomType.STRING, value)
        if predicate(probe):
            yield row

    def _extend_not(
        self, condition: NotCond, row: Row, siblings: Sequence[Condition], frame: _Frame
    ) -> Iterator[Row]:
        needed = shared_not_variables(condition, siblings)
        missing = [name for name in needed if frame.get(row, name) is None]
        if missing:
            raise StruqlEvaluationError(
                f"negation {condition} checked before {missing} were bound"
            )
        inner_rows = self.bindings(list(condition.inner), initial=[frame.to_dict(row)])
        if not inner_rows:
            yield row

    # ------------------------------------------------------------ #
    # block operators (set-at-a-time execution)
    #
    # Each operator consumes the whole frontier, probes the graph once
    # per *distinct* bound key, and hash-joins the materialized matches
    # back onto the rows.  Match lists preserve the row-at-a-time probe
    # order and rows are processed in frontier order, so the output is
    # identical (values and order) to the tuple-at-a-time loop.

    def _apply_block(
        self,
        condition: Condition,
        rows: List[Row],
        siblings: Sequence[Condition],
        frame: _Frame,
    ) -> List[Row]:
        if isinstance(condition, CollectionCond):
            return self._block_collection(condition, rows, frame)
        if isinstance(condition, EdgeCond):
            return self._block_edge(condition, rows, frame)
        if isinstance(condition, PathCond):
            return self._block_path(condition, rows, frame)
        if isinstance(condition, ComparisonCond):
            return self._block_comparison(condition, rows, frame)
        if isinstance(condition, PredicateCond):
            return self._block_predicate(condition, rows, frame)
        if isinstance(condition, NotCond):
            return self._block_not(condition, rows, siblings, frame)
        raise StruqlEvaluationError(f"unknown condition type: {condition!r}")

    def _block_collection(
        self, condition: CollectionCond, rows: List[Row], frame: _Frame
    ) -> List[Row]:
        index = frame.slots[condition.var.name]
        name = condition.collection
        graph = self.graph
        footprint = self.footprint
        metrics = self.metrics
        members: Optional[List[Target]] = None
        verdicts: Dict[object, bool] = {}
        out: List[Row] = []
        deadline = current_deadline()
        ticks = 0
        for row in rows:
            ticks += 1
            if not (ticks & 1023) and deadline is not None:
                deadline.check("block.collection")
            value = row[index]
            if value is _UNSET:
                if footprint is not None:
                    footprint.collection_scans.add(name)
                if members is None:
                    members = graph.collection(name)
                    metrics.hash_join_probes += 1
                else:
                    metrics.dedup_hits += 1
                prefix, suffix = row[:index], row[index + 1:]
                for member in members:
                    ticks += 1
                    if not (ticks & 1023) and deadline is not None:
                        deadline.check("block.collection")
                    out.append(prefix + (member,) + suffix)
                continue
            if footprint is not None and isinstance(value, Oid):
                footprint.membership_reads.add((name, value))
            verdict = verdicts.get(value, _UNSET)
            if verdict is _UNSET:
                if self.use_indexes:
                    verdict = isinstance(value, Oid) and graph.in_collection(name, value)
                else:
                    if members is None:
                        members = graph.collection(name)
                    verdict = value in members
                verdicts[value] = verdict
                metrics.hash_join_probes += 1
            else:
                metrics.dedup_hits += 1
            if verdict:
                out.append(row)
        distinct = len(verdicts) + (1 if members is not None else 0)
        learn_dedup_factor(self.dedup_factors, condition, len(rows), distinct)
        return out

    def _block_edge(
        self, condition: EdgeCond, rows: List[Row], frame: _Frame
    ) -> List[Row]:
        slots = frame.slots
        source_index = slots[condition.source.name]
        label_const = condition.label if isinstance(condition.label, str) else None
        arc_index = (
            slots[condition.label.name] if isinstance(condition.label, Var) else None
        )
        target = condition.target
        if isinstance(target, Const):
            target_slot: Optional[int] = None
            target_const: Optional[Value] = target.atom
        else:
            target_slot = slots[target.name]
            target_const = None
        footprint = self.footprint
        metrics = self.metrics
        # distinct (source, label, target) key -> materialized matches;
        # the key determines which slots are unbound, so every row
        # sharing a key also shares its write mask
        cache: Dict[Tuple[object, object, object], List[Tuple[Oid, str, Target]]] = {}
        out: List[Row] = []
        deadline = current_deadline()
        ticks = 0
        for row in rows:
            ticks += 1
            if not (ticks & 1023) and deadline is not None:
                deadline.check("block.edge")
            if arc_index is not None:
                bound_label = row[arc_index]
                if bound_label is _UNSET:
                    label_value: Optional[str] = None
                    label_unbound = True
                elif isinstance(bound_label, str):
                    label_value, label_unbound = bound_label, False
                elif isinstance(bound_label, Atom):
                    label_value, label_unbound = bound_label.as_string(), False
                else:
                    continue  # arc variable bound to an oid: nothing matches
            else:
                label_value, label_unbound = label_const, False
            source_value = row[source_index]
            if source_value is _UNSET:
                source_value = None
            if target_slot is not None:
                target_value = row[target_slot]
                if target_value is _UNSET:
                    target_value = None
            else:
                target_value = target_const
            if footprint is not None:
                _record_edge_footprint(footprint, source_value, label_value, target_value)
            key = (source_value, label_value, target_value)
            matches = cache.get(key)
            if matches is None:
                matches = self._edge_matches(source_value, label_value, target_value)
                cache[key] = matches
                metrics.hash_join_probes += 1
            else:
                metrics.dedup_hits += 1
            if not matches:
                continue
            set_source = source_value is None
            set_target = target_value is None and target_slot is not None
            if not set_source and not label_unbound and not set_target:
                # pure filter: the row survives once per matching edge
                if len(matches) == 1:
                    out.append(row)
                else:
                    out.extend([row] * len(matches))
                continue
            # the write mask is constant per key, so one mutable copy
            # serves every match of this row
            new = list(row)
            for source, label, edge_target in matches:
                ticks += 1
                if not (ticks & 1023) and deadline is not None:
                    deadline.check("block.edge")
                if set_source:
                    new[source_index] = source
                if label_unbound:
                    new[arc_index] = label
                if set_target:
                    new[target_slot] = edge_target
                out.append(tuple(new))
        learn_dedup_factor(self.dedup_factors, condition, len(rows), len(cache))
        return out

    def _edge_matches(
        self,
        source_value: Optional[Value],
        label_value: Optional[str],
        target_value: Optional[Value],
    ) -> List[Tuple[Oid, str, Target]]:
        """Materialized matches of one distinct edge-probe key, in exactly
        the order the row-at-a-time probe yields them."""
        graph = self.graph
        metrics = self.metrics
        # one clock read per distinct probe: each probe scans at most the
        # whole edge relation, so the gap between checks stays bounded by
        # one scan without per-edge overhead in these hot loops
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("engine.edge-probe")
        matches: List[Tuple[Oid, str, Target]] = []
        if not self.use_indexes:
            for source, label, edge_target in graph.edges():
                metrics.edges_examined += 1
                if source_value is not None and source != source_value:
                    continue
                if label_value is not None and label != label_value:
                    continue
                if target_value is not None and not _values_equal(edge_target, target_value):
                    continue
                matches.append((source, label, edge_target))
            return matches
        if source_value is not None:
            if not isinstance(source_value, Oid) or not graph.has_node(source_value):
                return matches
            if label_value is not None:
                candidates: Iterable[Tuple[str, Target]] = (
                    (label_value, t) for t in graph.targets(source_value, label_value)
                )
            else:
                candidates = graph.out_edges(source_value)
            for label, edge_target in candidates:
                metrics.edges_examined += 1
                if target_value is not None and not _values_equal(edge_target, target_value):
                    continue
                matches.append((source_value, label, edge_target))
            return matches
        if target_value is not None:
            probes: Sequence[Target]
            if isinstance(target_value, Oid):
                probes = (target_value,)
            else:
                probes = _coercion_probes(target_value)
            seen: Set[Tuple[Oid, str]] = set()
            for probe in probes:
                for source, label in graph.in_edges(probe):
                    metrics.edges_examined += 1
                    if label_value is not None and label != label_value:
                        continue
                    if (source, label) in seen:
                        continue
                    seen.add((source, label))
                    matches.append((source, label, probe))
            return matches
        if label_value is not None:
            for source, edge_target in graph.edges_with_label(label_value):
                metrics.edges_examined += 1
                matches.append((source, label_value, edge_target))
            return matches
        for source, label, edge_target in graph.edges():
            metrics.edges_examined += 1
            matches.append((source, label, edge_target))
        return matches

    def _block_comparison(
        self, condition: ComparisonCond, rows: List[Row], frame: _Frame
    ) -> List[Row]:
        left_term, right_term = condition.left, condition.right
        left_const = left_term.atom if isinstance(left_term, Const) else None
        left_slot = None if isinstance(left_term, Const) else frame.slots[left_term.name]
        right_const = right_term.atom if isinstance(right_term, Const) else None
        right_slot = (
            None if isinstance(right_term, Const) else frame.slots[right_term.name]
        )
        op = condition.op
        metrics = self.metrics
        verdicts: Dict[Tuple[object, object], object] = {}
        out: List[Row] = []
        for row in rows:
            if left_slot is None:
                left: Optional[Value] = left_const
            else:
                left = None if row[left_slot] is _UNSET else row[left_slot]  # type: ignore[assignment]
            if right_slot is None:
                right: Optional[Value] = right_const
            else:
                right = None if row[right_slot] is _UNSET else row[right_slot]  # type: ignore[assignment]
            if left is None and right is None:
                raise StruqlEvaluationError(
                    f"comparison {condition} has no bound side; "
                    "reorder the query or enable the optimizer"
                )
            if left is None or right is None:
                if op != "=":
                    raise StruqlEvaluationError(
                        f"order comparison {condition} requires both sides bound"
                    )
                index = left_slot if left is None else right_slot
                bound_value = right if left is None else left
                assert index is not None and bound_value is not None
                out.append(row[:index] + (bound_value,) + row[index + 1:])
                continue
            key = (left, right)
            verdict = verdicts.get(key, _UNSET)
            if verdict is _UNSET:
                verdict = self._compare(left, right, op)
                verdicts[key] = verdict
                metrics.hash_join_probes += 1
            else:
                metrics.dedup_hits += 1
            if verdict:
                out.append(row)
        learn_dedup_factor(self.dedup_factors, condition, len(rows), len(verdicts))
        return out

    def _block_predicate(
        self, condition: PredicateCond, rows: List[Row], frame: _Frame
    ) -> List[Row]:
        index = frame.slots[condition.var.name]
        metrics = self.metrics
        predicate = None
        verdicts: Dict[object, object] = {}
        out: List[Row] = []
        for row in rows:
            value = row[index]
            if value is _UNSET:
                raise StruqlEvaluationError(
                    f"predicate {condition} applied to unbound variable"
                )
            if predicate is None:
                predicate = builtins.object_predicate(condition.name)
                if predicate is None:
                    raise StruqlEvaluationError(
                        f"unknown predicate {condition.name!r}"
                    )
            verdict = verdicts.get(value, _UNSET)
            if verdict is _UNSET:
                probe: object = value
                if isinstance(value, str):
                    probe = Atom(AtomType.STRING, value)
                verdict = predicate(probe)
                verdicts[value] = verdict
                metrics.hash_join_probes += 1
            else:
                metrics.dedup_hits += 1
            if verdict:
                out.append(row)
        learn_dedup_factor(self.dedup_factors, condition, len(rows), len(verdicts))
        return out

    def _block_not(
        self,
        condition: NotCond,
        rows: List[Row],
        siblings: Sequence[Condition],
        frame: _Frame,
    ) -> List[Row]:
        needed = shared_not_variables(condition, siblings)
        slots = frame.slots
        # the inner conditions only mention the negation's own variables,
        # so rows agreeing on that projection share one verdict
        negation_vars = condition.variables()
        proj = [name for name in frame.names if name in negation_vars]
        proj_slots = [slots[name] for name in proj]
        inner = list(condition.inner)
        metrics = self.metrics
        verdicts: Dict[Tuple[object, ...], object] = {}
        out: List[Row] = []
        for row in rows:
            missing = [name for name in needed if frame.get(row, name) is None]
            if missing:
                raise StruqlEvaluationError(
                    f"negation {condition} checked before {missing} were bound"
                )
            key = tuple(row[i] for i in proj_slots)
            verdict = verdicts.get(key, _UNSET)
            if verdict is _UNSET:
                seed = {
                    name: row[i]
                    for name, i in zip(proj, proj_slots)
                    if row[i] is not _UNSET
                }
                verdict = not self.bindings(inner, initial=[seed])
                verdicts[key] = verdict
                metrics.hash_join_probes += 1
            else:
                metrics.dedup_hits += 1
            if verdict:
                out.append(row)
        learn_dedup_factor(self.dedup_factors, condition, len(rows), len(verdicts))
        return out

    def _block_path(
        self, condition: PathCond, rows: List[Row], frame: _Frame
    ) -> List[Row]:
        forward, backward = self._nfas(condition.path)
        slots = frame.slots
        source_index = slots[condition.source.name]
        target = condition.target
        if isinstance(target, Const):
            target_slot: Optional[int] = None
            target_const: Optional[Value] = target.atom
        else:
            target_slot = slots[target.name]
            target_const = None
        graph = self.graph
        footprint = self.footprint
        metrics = self.metrics
        use_indexes = self.use_indexes
        alphabet_known = False
        alphabet: Optional[Set[str]] = None

        # ---- pass 1: resolve endpoints, record footprints, and gather
        # the distinct seeds each direction's batched search needs
        resolved: List[Tuple[Optional[Value], Optional[Value]]] = []
        distinct_keys: Set[Tuple[object, object]] = set()
        forward_seeds: Dict[Oid, None] = {}
        backward_seeds: Dict[Target, None] = {}
        pair_rows: Dict[Tuple[Value, Value], None] = {}
        target_only: Dict[Value, None] = {}
        probe_lists: Dict[Value, Tuple[Target, ...]] = {}
        enumerate_all = False

        def probes_for(value: Value) -> Tuple[Target, ...]:
            cached = probe_lists.get(value)
            if cached is None:
                if isinstance(value, Oid):
                    cached = (value,)
                else:
                    cached = tuple(_coercion_probes(value))
                probe_lists[value] = cached
            return cached

        deadline = current_deadline()
        ticks = 0
        for row in rows:
            ticks += 1
            if not (ticks & 1023) and deadline is not None:
                deadline.check("block.path")
            source_value = row[source_index]
            if source_value is _UNSET:
                source_value = None
            if target_slot is not None:
                target_value = row[target_slot]
                if target_value is _UNSET:
                    target_value = None
            else:
                target_value = target_const
            resolved.append((source_value, target_value))
            key = (source_value, target_value)
            if key in distinct_keys:
                metrics.dedup_hits += 1
            else:
                distinct_keys.add(key)
            if footprint is not None:
                # Conservative: a path depends on its whole label alphabet
                # plus zero-length existence checks on its endpoints;
                # wildcards widen to all edges.
                if source_value is None and target_value is None:
                    footprint.all_edges = True
                else:
                    if not alphabet_known:
                        alphabet = path_alphabet(condition.path)
                        alphabet_known = True
                    if alphabet is None:
                        footprint.all_edges = True
                    else:
                        footprint.label_scans |= alphabet
                    if isinstance(source_value, Oid):
                        footprint.node_checks.add(source_value)
                    if isinstance(target_value, Oid):
                        footprint.node_checks.add(target_value)
            if source_value is not None:
                if not isinstance(source_value, Oid) or not graph.has_node(source_value):
                    continue  # this row can never match
                if target_value is None:
                    forward_seeds[source_value] = None
                else:
                    pair_rows[(source_value, target_value)] = None
            elif target_value is not None:
                target_only[target_value] = None
            else:
                enumerate_all = True

        # fully-bound checks can search from either side; let the
        # optimizer pick the cheaper frontier from the statistics
        pair_direction = "forward"
        if pair_rows and use_indexes:
            pair_direction = choose_path_direction(
                len({sv for sv, _ in pair_rows}),
                len({tv for _, tv in pair_rows}),
                self.stats,
            )
        if pair_rows:
            if pair_direction == "forward":
                for sv, _ in pair_rows:
                    forward_seeds[sv] = None
            else:
                for _, tv in pair_rows:
                    for probe in probes_for(tv):
                        backward_seeds[probe] = None
        if use_indexes:
            for tv in target_only:
                for probe in probes_for(tv):
                    backward_seeds[probe] = None
        all_nodes: List[Oid] = []
        if enumerate_all or (target_only and not use_indexes):
            all_nodes = list(graph.nodes())
            for node in all_nodes:
                forward_seeds[node] = None

        forward_map: Dict[object, Tuple[object, ...]] = {}
        if forward_seeds:
            forward_map = self._path_reach(forward, list(forward_seeds), backward=False)
        backward_map: Dict[object, Tuple[object, ...]] = {}
        if backward_seeds:
            backward_map = self._path_reach(backward, list(backward_seeds), backward=True)

        forward_sets: Dict[object, FrozenSet[object]] = {}

        def forward_set(seed: object) -> FrozenSet[object]:
            cached = forward_sets.get(seed)
            if cached is None:
                cached = forward_sets[seed] = frozenset(forward_map[seed])
            return cached

        backward_sets: Dict[object, FrozenSet[object]] = {}

        def backward_set(seed: object) -> FrozenSet[object]:
            cached = backward_sets.get(seed)
            if cached is None:
                cached = backward_sets[seed] = frozenset(backward_map[seed])
            return cached

        # ---- pass 2: emit per row, in frontier order, from the shared
        # per-distinct-key results
        pair_verdicts: Dict[Tuple[Value, Value], bool] = {}
        tv_sources: Dict[Value, Tuple[Oid, ...]] = {}
        out: List[Row] = []
        for row, (source_value, target_value) in zip(rows, resolved):
            ticks += 1
            if not (ticks & 1023) and deadline is not None:
                deadline.check("block.path")
            if source_value is not None:
                if not isinstance(source_value, Oid) or not graph.has_node(source_value):
                    continue
                if target_value is not None:
                    pair = (source_value, target_value)
                    verdict = pair_verdicts.get(pair)
                    if verdict is None:
                        probes = probes_for(target_value)
                        if pair_direction == "forward":
                            reach = forward_set(source_value)
                            verdict = any(p in reach for p in probes)
                        else:
                            verdict = any(
                                source_value in backward_set(p) for p in probes
                            )
                        pair_verdicts[pair] = verdict
                    if verdict:
                        out.append(row)
                    continue
                assert target_slot is not None
                prefix, suffix = row[:target_slot], row[target_slot + 1:]
                for reached in forward_map[source_value]:
                    ticks += 1
                    if not (ticks & 1023) and deadline is not None:
                        deadline.check("block.path")
                    out.append(prefix + (reached,) + suffix)
                continue
            if target_value is not None:
                sources = tv_sources.get(target_value)
                if sources is None:
                    found: Dict[Oid, None] = {}
                    if use_indexes:
                        for probe in probes_for(target_value):
                            for source in backward_map[probe]:
                                found.setdefault(source, None)
                    else:
                        probes = probes_for(target_value)
                        for node in all_nodes:
                            if any(p in forward_set(node) for p in probes):
                                found.setdefault(node, None)
                    sources = tuple(found)
                    tv_sources[target_value] = sources
                prefix, suffix = row[:source_index], row[source_index + 1:]
                for source in sources:
                    ticks += 1
                    if not (ticks & 1023) and deadline is not None:
                        deadline.check("block.path")
                    out.append(prefix + (source,) + suffix)
                continue
            assert target_slot is not None
            for source in all_nodes:
                for reached in forward_map[source]:
                    ticks += 1
                    if not (ticks & 1023) and deadline is not None:
                        deadline.check("block.path")
                    new = list(row)
                    new[source_index] = source
                    new[target_slot] = reached
                    out.append(tuple(new))
        learn_dedup_factor(self.dedup_factors, condition, len(rows), len(distinct_keys))
        return out

    def _path_reach(
        self, nfa: NFA, seeds: List[object], backward: bool
    ) -> Dict[object, Tuple[object, ...]]:
        """Per-seed path reachability through the epoch-keyed memo.

        Seeds already answered for this automaton and graph epoch --
        by an earlier row, an earlier query, or another engine sharing
        the plan cache -- come from the memo; the rest run as ONE
        batched origin-tagged product-automaton search and are memoized
        for everyone downstream.
        """
        graph = self.graph
        fingerprint = (id(graph), graph.epoch)
        cache = self.plan_cache
        metrics = self.metrics
        found: Dict[object, Tuple[object, ...]] = {}
        missing: List[object] = []
        for seed in seeds:
            hit = cache.path_memo_get(nfa, fingerprint, seed)
            if hit is None:
                missing.append(seed)
            else:
                metrics.path_memo_hits += 1
                found[seed] = hit
        if missing:
            metrics.path_memo_misses += len(missing)
            metrics.hash_join_probes += len(missing)
            if backward:
                computed = sources_to_many(graph, nfa, missing)
            else:
                computed = targets_from_many(graph, nfa, missing)
            for seed in missing:
                reached = computed.get(seed, ())
                cache.path_memo_put(nfa, fingerprint, seed, reached)
                found[seed] = reached
        return found


# ---------------------------------------------------------------------- #
# the construction stage


class _Constructor:
    """Applies create/link/collect clauses of a query tree to a result graph.

    When a link or collect clause references a *data-graph* node (allowed:
    "each node in link or collect is either mentioned in create or is a
    node in the data graph"), that node is imported into the result graph
    together with everything reachable from it -- the site graph "models
    both the site's content and structure", so referenced content must be
    renderable from the site graph alone.  Imported nodes stay immutable.
    """

    def __init__(self, result: Graph, metrics: Metrics, source: Graph) -> None:
        self.result = result
        self.metrics = metrics
        self.source = source
        self._new_nodes: Set[Oid] = {oid for _, _, oid in result.skolems.terms()}
        self._imported: Set[Oid] = set()

    def run(self, query: Query, rows: List[Binding], engine: QueryEngine) -> None:
        for row in rows:
            self._construct_row(query, row)
        for block in query.blocks:
            block_rows = engine.bindings(block.where, initial=rows)
            self.run(block, block_rows, engine)

    # ------------------------------------------------------------ #

    def _construct_row(self, query: Query, row: Binding) -> None:
        for term in query.create:
            self._skolem(term, row)
        for link in query.link:
            self._link(link, row)
        for collect in query.collect:
            node = self._resolve_node(collect.node, row, importing=True)
            self.result.add_to_collection(collect.collection, node)

    def _skolem(self, term: SkolemTerm, row: Binding) -> Oid:
        args: List[object] = []
        for arg in term.args:
            if isinstance(arg, Const):
                args.append(arg.atom)
                continue
            value = row.get(arg.name)
            if value is None:
                raise StruqlEvaluationError(
                    f"Skolem argument {arg.name!r} unbound in {term}"
                )
            if isinstance(value, str):
                value = Atom(AtomType.STRING, value)
            args.append(value)
        before = self.result.node_count
        oid = self.result.skolem(term.function, *args)
        if self.result.node_count > before:
            self.metrics.nodes_created += 1
        self._new_nodes.add(oid)
        return oid

    def _resolve_node(
        self, ref, row: Binding, importing: bool
    ) -> Oid:
        if isinstance(ref, SkolemTerm):
            return self._skolem(ref, row)
        value = row.get(ref.name)
        if not isinstance(value, Oid):
            raise StruqlEvaluationError(
                f"variable {ref.name!r} does not denote a node (got {value!r})"
            )
        if not self.result.has_node(value):
            if not importing:
                raise StruqlEvaluationError(f"node {value} not present in result graph")
            self._import_subgraph(value)
        return value

    def _import_subgraph(self, root: Oid) -> None:
        """Copy a data-graph node and its reachable closure into the result."""
        if root in self._imported or not self.source.has_node(root):
            self.result.add_node(root)
            return
        reached = self.source.reachable(root)
        for oid in reached:
            self.result.add_node(oid)
            self._imported.add(oid)
        for oid in reached:
            for label, target in self.source.out_edges(oid):
                self.result.add_edge(oid, label, target)

    def _link(self, link: LinkClause, row: Binding) -> None:
        source = self._resolve_node(link.source, row, importing=False) \
            if isinstance(link.source, SkolemTerm) else self._resolve_source_var(link.source, row)
        if isinstance(link.label, str):
            label = link.label
        else:
            bound = row.get(link.label.name)
            if isinstance(bound, Atom):
                label = bound.as_string()
            elif isinstance(bound, str):
                label = bound
            else:
                raise StruqlEvaluationError(
                    f"arc variable {link.label.name!r} is not bound to a label"
                )
        target = self._resolve_target(link.target, row)
        before = self.result.edge_count
        self.result.add_edge(source, label, target)
        if self.result.edge_count > before:
            self.metrics.edges_created += 1

    def _resolve_source_var(self, ref: Var, row: Binding) -> Oid:
        value = row.get(ref.name)
        if not isinstance(value, Oid):
            raise StruqlEvaluationError(
                f"link source {ref.name!r} does not denote a node (got {value!r})"
            )
        if value not in self._new_nodes:
            raise ImmutableNodeError(
                f"link source {value} is an existing node; STRUQL only adds "
                "edges out of new (Skolem-created) nodes"
            )
        return value

    def _resolve_target(self, target, row: Binding) -> Target:
        if isinstance(target, SkolemTerm):
            return self._skolem(target, row)
        if isinstance(target, Const):
            return target.atom
        value = row.get(target.name)
        if value is None:
            raise StruqlEvaluationError(f"link target {target.name!r} unbound")
        if isinstance(value, Oid):
            if not self.result.has_node(value):
                self._import_subgraph(value)
            return value
        if isinstance(value, str):
            return Atom(AtomType.STRING, value)
        return value


# ---------------------------------------------------------------------- #
# engine selection

#: (predicate over graphs, engine class) pairs, latest registration wins.
_ENGINE_FACTORIES: List[Tuple[Callable[[Graph], bool], Callable[..., QueryEngine]]] = []


def register_engine_factory(
    predicate: Callable[[Graph], bool], factory: Callable[..., QueryEngine]
) -> None:
    """Register an engine class for graphs matching ``predicate``.

    :func:`make_engine` consults registrations newest-first, so a backend
    module can claim its graphs (the SQLite backend registers
    ``SqlQueryEngine`` for :class:`~repro.repository.sql.SqlGraph`)
    without this module importing the backend.
    """
    _ENGINE_FACTORIES.insert(0, (predicate, factory))


def make_engine(graph: Graph, **kwargs: object) -> QueryEngine:
    """A query engine fit for ``graph``: the first registered factory
    whose predicate matches, else the in-memory :class:`QueryEngine`."""
    for predicate, factory in _ENGINE_FACTORIES:
        if predicate(graph):
            return factory(graph, **kwargs)
    return QueryEngine(graph, **kwargs)


# ---------------------------------------------------------------------- #
# public API


def evaluate(
    program: Union[Program, Query, str],
    source: Graph,
    into: Optional[Graph] = None,
    optimize: bool = True,
    use_indexes: bool = True,
    metrics: Optional[Metrics] = None,
    engine: Optional[QueryEngine] = None,
    use_blocks: bool = True,
) -> Graph:
    """Evaluate a STRUQL program over ``source`` and return the result graph.

    ``into`` composes onto an existing graph ("queries [may] add nodes and
    arcs to a graph", section 6.2); passing ``into=source`` queries a
    graph while extending it, with the binding relation computed before
    construction starts (the where stage sees a consistent snapshot
    because rows are fully materialized per block).

    Passing ``engine`` reuses a warm :class:`QueryEngine` (its plan cache
    and statistics snapshot carry across calls); its metrics are pointed
    at this call's ``metrics`` object for the duration.
    """
    if isinstance(program, str):
        program = parse(program)
    if isinstance(program, Query):
        program = Program(queries=[program])
    result = into if into is not None else Graph()
    shared_metrics = metrics or Metrics()
    if engine is None:
        engine = make_engine(
            source,
            optimize=optimize,
            use_indexes=use_indexes,
            metrics=shared_metrics,
            use_blocks=use_blocks,
        )
    else:
        engine.metrics = shared_metrics
    for query in program.queries:
        rows = engine.bindings(query.where, initial=[{}])
        _Constructor(result, shared_metrics, source).run(query, rows, engine)
    return result


def query_bindings(
    text: Union[str, Sequence[Condition]],
    graph: Graph,
    optimize: bool = True,
    use_indexes: bool = True,
    use_blocks: bool = True,
) -> List[Binding]:
    """Evaluate just a where-clause and return its binding relation.

    Accepts either a full query text (its first query's where clause is
    used) or a pre-built condition list.  Handy for ad-hoc querying and
    for the test suite.
    """
    if isinstance(text, str):
        program = parse(text)
        conditions: Sequence[Condition] = program.queries[0].where
    else:
        conditions = text
    engine = make_engine(
        graph, optimize=optimize, use_indexes=use_indexes, use_blocks=use_blocks
    )
    return engine.bindings(conditions)
