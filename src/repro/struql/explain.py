"""EXPLAIN for STRUQL: show the plan the optimizer chose and why.

"As in traditional query processing, a query is first translated by the
query optimizer into an efficient physical-operation tree" (paper
section 2.1) -- and as in traditional query processing, site builders
need to see that plan when a query is slow.  :func:`explain` renders,
per condition in execution order: the access path the evaluator will
take given what is bound at that point, the optimizer's cardinality
estimate, and the variables the step binds.

The output is text, stable enough to assert against in tests::

    plan for: where Publications(x), x -> "year" -> y, y = "1998"
    step  est.   binds   access path
    1     30     x       collection scan Publications
    2     1      y       bind y = "1998"
    3     1.2    -       reverse value-index probe "year" -> y

``counts=True`` (EXPLAIN ANALYZE) additionally *executes* the plan with
the set-at-a-time engine and renders, per block operator, the input and
output row counts, the distinct-key index probes it ran, and how many
rows were answered from its per-key cache instead::

    step  est.  binds  rows in  rows out  probes  dedup  access path
    1     30    x      1        30        1       0      collection scan Publications
    ...
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .eval import OperatorStats

from ..graph import Graph
from ..repository.indexes import IndexStatistics, graph_statistics
from .ast import (
    CollectionCond,
    ComparisonCond,
    Condition,
    Const,
    EdgeCond,
    NotCond,
    PathCond,
    PredicateCond,
    Query,
    Var,
)
from .optimizer import _binds, estimate_cost, order_conditions
from .parser import parse


def explain(
    query: Union[str, Query, Sequence[Condition]],
    graph: Optional[Graph] = None,
    stats: Optional[IndexStatistics] = None,
    use_indexes: bool = True,
    counts: bool = False,
) -> str:
    """Render the execution plan for a where clause.

    Pass either a graph (statistics are snapshotted) or pre-built
    statistics; with neither, an empty-statistics plan is shown (all
    estimates zero -- still useful to see the ordering logic).

    ``counts=True`` requires a graph: the plan is *executed* by the
    block engine and each step gains observed rows-in/rows-out, index
    probes, and per-key cache hits.
    """
    if isinstance(query, str):
        conditions: Sequence[Condition] = parse(query).queries[0].where
        header = query.strip().splitlines()[0].strip()
    elif isinstance(query, Query):
        conditions = query.where
        header = f"query {query.name or '?'}"
    else:
        conditions = list(query)
        header = f"{len(conditions)} conditions"
    if stats is None:
        stats = graph_statistics(graph) if graph is not None else IndexStatistics()
    ordered = order_conditions(conditions, frozenset(), stats, use_indexes)

    op_stats: List["OperatorStats"] = []
    if counts:
        if graph is None:
            raise ValueError("counts=True requires a graph to execute against")
        from .eval import make_engine
        from .plancache import PlanCache

        engine = make_engine(
            graph, use_indexes=use_indexes, stats=stats, plan_cache=PlanCache()
        )
        engine.bindings(conditions)
        op_stats = engine.last_operator_stats

    out = io.StringIO()
    out.write(f"plan for: {header}\n")
    header_row = ["step", "est.", "binds"]
    if counts:
        header_row += ["rows in", "rows out", "probes", "dedup"]
    header_row.append("access path")
    rows: List[List[str]] = [header_row]
    bound: Set[str] = set()
    for index, condition in enumerate(ordered, start=1):
        cost = estimate_cost(condition, bound, stats, conditions, use_indexes)
        newly = sorted(_binds(condition, bound) - bound)
        row = [str(index), _fmt(cost), ", ".join(newly) or "-"]
        if counts:
            # the engine ran the same ordered plan; a step past an empty
            # frontier was never executed
            if index - 1 < len(op_stats):
                op = op_stats[index - 1]
                row += [
                    str(op.rows_in),
                    str(op.rows_out),
                    str(op.probes),
                    str(op.dedup_hits),
                ]
            else:
                row += ["-", "-", "-", "-"]
        row.append(_access_path(condition, bound, use_indexes))
        rows.append(row)
        bound |= set(newly)
    width_count = len(rows[0])
    widths = [max(len(row[i]) for row in rows) for i in range(width_count)]
    for row in rows:
        out.write(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            + "\n"
        )
    return out.getvalue()


def _fmt(cost: float) -> str:
    if cost == float("inf"):
        return "inf"
    if cost == int(cost):
        return str(int(cost))
    return f"{cost:.1f}"


def _access_path(condition: Condition, bound: Set[str], use_indexes: bool) -> str:
    if isinstance(condition, CollectionCond):
        if condition.var.name in bound:
            return f"membership check {condition.collection}({condition.var})"
        return f"collection scan {condition.collection}"
    if isinstance(condition, PredicateCond):
        return f"filter {condition.name}({condition.var})"
    if isinstance(condition, ComparisonCond):
        left_bound = not isinstance(condition.left, Var) or condition.left.name in bound
        right_bound = (
            not isinstance(condition.right, Var) or condition.right.name in bound
        )
        if left_bound and right_bound:
            return f"filter {condition}"
        unbound = condition.left if not left_bound else condition.right
        other = condition.right if not left_bound else condition.left
        return f"bind {unbound} = {other}"
    if isinstance(condition, NotCond):
        inner = ", ".join(str(c) for c in condition.inner)
        return f"anti-join not({inner})"
    if isinstance(condition, EdgeCond):
        return _edge_access(condition, bound, use_indexes)
    if isinstance(condition, PathCond):
        source_bound = condition.source.name in bound
        target_bound = (
            not isinstance(condition.target, Var) or condition.target.name in bound
        )
        if source_bound and target_bound:
            return f"path check {condition.path}"
        if source_bound:
            return f"path expansion {condition.source} -> {condition.path}"
        if target_bound:
            return f"reverse path expansion {condition.path} -> {condition.target}"
        return f"full path enumeration {condition.path}"
    return str(condition)


def _edge_access(condition: EdgeCond, bound: Set[str], use_indexes: bool) -> str:
    label = (
        f'"{condition.label}"' if isinstance(condition.label, str) else str(condition.label)
    )
    if not use_indexes:
        return f"FULL SCAN filtering {condition.source} -> {label} -> {condition.target}"
    source_bound = condition.source.name in bound
    target_bound = (
        not isinstance(condition.target, Var) or condition.target.name in bound
    )
    if source_bound and target_bound:
        return f"edge existence check {condition}"
    if source_bound:
        return f"forward adjacency {condition.source} -> {label}"
    if target_bound:
        return f"reverse value-index probe {label} -> {condition.target}"
    if isinstance(condition.label, str):
        return f"label-extent scan {label}"
    return "all-edges scan (arc variable)"
