"""Read footprints: what a query evaluation depended on.

A cached query result is stale only if the graph changed *where the
query looked*.  While evaluating, the engine records a
:class:`Footprint` -- the semantic dependence set of the result: which
``(source, label)`` adjacency lists it read, which label extents and
collections it scanned, which atomic values it probed in the reverse
index.  A consumer holding a cached result then asks
:meth:`Footprint.touches` whether a
:class:`~repro.graph.delta.GraphDelta` intersects that set; if not, the
cached result is still exact and survives the edit.

The footprint is *semantic*, not physical: it is recorded from the
bound/unbound pattern of each condition, before the index-vs-scan
branch, so naive and indexed evaluation of the same query record the
same footprint.  Coercing value probes are exact because
``_coercion_probes`` enumerates the complete finite set of atoms a
constant can match.

Sound over-approximations used (each errs toward invalidating):

* a regular-path condition depends on its whole label alphabet (any
  edge with a label the path can traverse), not just the reachable
  subgraph;
* a wildcard anywhere (``true``, a label predicate, a both-unbound
  path) marks the footprint ``all_edges`` -- any edge or node change
  touches it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set, Tuple, Union

from ..graph import Atom, Oid
from .ast import Alternation, AnyLabel, Concat, LabelIs, LabelPredicate, PathExpr, Star

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graph.delta import GraphDelta

#: A reverse-index probe key: the probed target plus the label filter
#: (``None`` = any label).
ProbeKey = Tuple[Union[Oid, Atom], Optional[str]]


def path_alphabet(expr: PathExpr) -> Optional[Set[str]]:
    """The set of labels a path expression can traverse.

    ``None`` means the alphabet is unbounded (``true`` or a label
    predicate appears) and the dependence must be treated as all edges.
    """
    if isinstance(expr, LabelIs):
        return {expr.label}
    if isinstance(expr, (AnyLabel, LabelPredicate)):
        return None
    if isinstance(expr, (Concat, Alternation)):
        parts = expr.parts if isinstance(expr, Concat) else expr.options
        labels: Set[str] = set()
        for part in parts:
            inner = path_alphabet(part)
            if inner is None:
                return None
            labels |= inner
        return labels
    if isinstance(expr, Star):
        return path_alphabet(expr.inner)
    return None  # unknown node type: be conservative


class Footprint:
    """The dependence set of one evaluation (or one cached entry).

    Mutable: the engine appends to it while evaluating; consumers
    freeze it implicitly by not evaluating into it again.
    """

    __slots__ = (
        "edge_reads",
        "oid_reads_all",
        "label_scans",
        "collection_scans",
        "membership_reads",
        "value_probes",
        "node_checks",
        "all_edges",
    )

    def __init__(self) -> None:
        #: read ``targets(source, label)`` -- one adjacency list
        self.edge_reads: Set[Tuple[Oid, str]] = set()
        #: read *all* out-edges of a node (arc-variable conditions)
        self.oid_reads_all: Set[Oid] = set()
        #: scanned a whole label extent
        self.label_scans: Set[str] = set()
        #: scanned a whole collection
        self.collection_scans: Set[str] = set()
        #: probed one membership ``oid in collection``
        self.membership_reads: Set[Tuple[str, Oid]] = set()
        #: probed the reverse index for a value under a label filter
        self.value_probes: Set[ProbeKey] = set()
        #: tested existence of a node (paths: zero-length matches)
        self.node_checks: Set[Oid] = set()
        #: scanned everything -- any structural change invalidates
        self.all_edges = False

    # ------------------------------------------------------------ #

    @property
    def is_empty(self) -> bool:
        """True when the evaluation read nothing from the graph
        (constant queries) -- such entries never go stale."""
        return not (
            self.all_edges
            or self.edge_reads
            or self.oid_reads_all
            or self.label_scans
            or self.collection_scans
            or self.membership_reads
            or self.value_probes
            or self.node_checks
        )

    def merge(self, other: "Footprint") -> None:
        """Union another footprint in (entries cached per group)."""
        self.edge_reads |= other.edge_reads
        self.oid_reads_all |= other.oid_reads_all
        self.label_scans |= other.label_scans
        self.collection_scans |= other.collection_scans
        self.membership_reads |= other.membership_reads
        self.value_probes |= other.value_probes
        self.node_checks |= other.node_checks
        self.all_edges = self.all_edges or other.all_edges

    # ------------------------------------------------------------ #

    def touches(self, delta: "GraphDelta") -> bool:
        """Can this delta change a result with this footprint?

        False guarantees the cached result is still byte-exact; True is
        conservative (the entry *may* have changed).
        """
        if self.all_edges:
            if (
                delta.edges_added or delta.edges_removed
                or delta.nodes_added or delta.nodes_removed
            ):
                return True
        if self.node_checks:
            for oid in delta.nodes_added:
                if oid in self.node_checks:
                    return True
            for oid in delta.nodes_removed:
                if oid in self.node_checks:
                    return True
        edge_reads = self.edge_reads
        oid_reads_all = self.oid_reads_all
        label_scans = self.label_scans
        value_probes = self.value_probes
        if edge_reads or oid_reads_all or label_scans or value_probes:
            for source, label, target in delta.edge_changes():
                if label in label_scans:
                    return True
                if source in oid_reads_all:
                    return True
                if (source, label) in edge_reads:
                    return True
                if value_probes and (
                    (target, label) in value_probes
                    or (target, None) in value_probes
                ):
                    return True
        collection_scans = self.collection_scans
        membership_reads = self.membership_reads
        if collection_scans or membership_reads:
            for name, oid in delta.member_changes():
                if name in collection_scans:
                    return True
                if (name, oid) in membership_reads:
                    return True
        return False

    def size(self) -> int:
        """Number of recorded dependence atoms (diagnostics)."""
        return (
            len(self.edge_reads)
            + len(self.oid_reads_all)
            + len(self.label_scans)
            + len(self.collection_scans)
            + len(self.membership_reads)
            + len(self.value_probes)
            + len(self.node_checks)
            + (1 if self.all_edges else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.all_edges:
            return "<Footprint all-edges>"
        return (
            f"<Footprint {len(self.edge_reads)} edge reads, "
            f"{len(self.oid_reads_all)} oid reads, "
            f"{len(self.label_scans)} label scans, "
            f"{len(self.collection_scans)} collection scans, "
            f"{len(self.value_probes)} value probes>"
        )
