"""Tokenizer for STRUQL query text.

Token kinds:

* ``ident`` -- identifiers; primes are allowed (``q'``), matching the
  paper's variable style;
* ``string`` -- double-quoted edge labels and constants, with backslash
  escapes;
* ``number`` -- integer or decimal literals;
* ``arrow`` -- ``->``;
* ``op`` -- comparison operators ``= != < <= > >=``;
* ``punct`` -- ``( ) { } , . | *``.

``//`` and ``#`` start comments running to end of line.  Keywords
(``where create link collect not true in``) are returned as ``ident``
tokens; the parser gives them meaning positionally, so they remain usable
as collection names where unambiguous.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import StruqlSyntaxError

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_']*")
_NUMBER = re.compile(r"\d+(\.\d+)?")

KEYWORDS = frozenset({"where", "create", "link", "collect", "not", "true", "in"})


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text


def tokenize(text: str) -> List[Token]:
    """Tokenize a full query text; raises StruqlSyntaxError with position."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    for line_no, line in enumerate(text.splitlines(), start=1):
        position = 0
        length = len(line)
        while position < length:
            char = line[position]
            if char in " \t\r":
                position += 1
                continue
            if char == "#" or line.startswith("//", position):
                break
            if line.startswith("->", position):
                yield Token("arrow", "->", line_no, position + 1)
                position += 2
                continue
            if line.startswith("!=", position) or line.startswith("<=", position) or line.startswith(">=", position):
                yield Token("op", line[position : position + 2], line_no, position + 1)
                position += 2
                continue
            if char in "=<>":
                yield Token("op", char, line_no, position + 1)
                position += 1
                continue
            if char == '"':
                value, end = _read_string(line, position, line_no)
                yield Token("string", value, line_no, position + 1)
                position = end
                continue
            if char.isdigit():
                match = _NUMBER.match(line, position)
                assert match is not None
                yield Token("number", match.group(0), line_no, position + 1)
                position = match.end()
                continue
            match = _IDENT.match(line, position)
            if match:
                yield Token("ident", match.group(0), line_no, position + 1)
                position = match.end()
                continue
            if char in "(){},.|*":
                yield Token("punct", char, line_no, position + 1)
                position += 1
                continue
            raise StruqlSyntaxError(f"unexpected character {char!r}", line_no, position + 1)


def _read_string(line: str, position: int, line_no: int) -> tuple:
    out: List[str] = []
    index = position + 1
    while index < len(line):
        char = line[index]
        if char == "\\":
            if index + 1 >= len(line):
                raise StruqlSyntaxError("dangling backslash in string", line_no, index + 1)
            escape = line[index + 1]
            out.append({"n": "\n", "t": "\t"}.get(escape, escape))
            index += 2
            continue
        if char == '"':
            return "".join(out), index + 1
        out.append(char)
        index += 1
    raise StruqlSyntaxError("unterminated string literal", line_no, position + 1)
