"""Condition ordering for STRUQL where-clauses.

"As in traditional query processing, a query is first translated by the
query optimizer into an efficient physical-operation tree" (paper section
2.1).  Our physical plan is an *ordering* of the where-clause conditions:
evaluation is a pipelined index-nested-loop join, so the dominant cost
decision is which condition extends the bindings next.

The planner is greedy: starting from the initially-bound variables, it
repeatedly picks the ready condition with the lowest estimated extension
cardinality, using :class:`~repro.repository.indexes.IndexStatistics`
snapshots.  Filters (predicates, comparisons with all variables bound,
negations) cost less than one and therefore run as early as they are
applicable -- classic selection push-down.

A condition is *ready* when the variables it needs bound are bound:

* negations need their variables that are shared with positive
  conditions (purely-inner variables are existential inside the not);
* order comparisons (``< <= > >=``) need both sides;
* ``=`` needs at least one side (it can bind the other);
* predicates need their argument;
* edge, path and collection conditions are always ready (they can
  generate), they just cost more when unbound.

The same estimates serve the naive mode (``use_indexes=False``) with
scan costs, which experiment E5 uses as the ablation baseline.

Two block-execution concerns also live here:

* **Learned dedup factors.**  A block operator probes the indexes once
  per *distinct* bound key, not once per input row, so its batch cost is
  ``rows x per-row-estimate x dedup-factor``.  The engine observes the
  ``distinct keys / input rows`` ratio of every condition it executes in
  block mode and feeds the exponentially-smoothed factor back through
  ``dedup_factors``; the greedy ordering then prefers conditions whose
  probes collapse under dedup.
* **Path search direction.**  For a fully-bound path check the block
  evaluator can search forward from the distinct sources or backward
  from the distinct targets; :func:`choose_path_direction` picks the
  side with the smaller estimated total frontier from
  :class:`~repro.repository.indexes.IndexStatistics` cardinalities
  instead of hardcoding the binding order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..errors import StruqlEvaluationError
from ..repository.indexes import IndexStatistics
from .ast import (
    CollectionCond,
    ComparisonCond,
    Condition,
    EdgeCond,
    NotCond,
    PathCond,
    PredicateCond,
    Var,
)

#: Cost assigned to pure filters -- always preferred once ready.
_FILTER_COST = 0.25
_NOT_READY = float("inf")

#: Smoothing weight for newly observed dedup ratios (EWMA).
_DEDUP_ALPHA = 0.5


def significant_dedup_factor(factor: Optional[float]) -> Optional[float]:
    """The quantized factor if it is worth acting on, else ``None``.

    Factors near 1.0 (no observed dedup) are ignored so they neither
    perturb the cost model nor churn plan-cache keys: a workload whose
    keys never repeat keeps exactly the unlearned plan.  Quantizing to
    one decimal keeps the plan key stable while the EWMA converges.
    """
    if factor is None:
        return None
    rounded = round(factor, 1)
    return rounded if rounded < 1.0 else None

#: Learned per-condition dedup ratios: ``distinct keys / input rows``
#: observed by the block evaluator, exponentially smoothed.
DedupFactors = Dict[Condition, float]


def learn_dedup_factor(
    factors: DedupFactors, condition: Condition, rows_in: int, distinct_keys: int
) -> None:
    """Fold one block execution's observed dedup ratio into ``factors``."""
    if rows_in <= 0:
        return
    observed = min(1.0, distinct_keys / rows_in)
    previous = factors.get(condition)
    if previous is None:
        factors[condition] = observed
    else:
        factors[condition] = previous + _DEDUP_ALPHA * (observed - previous)


def choose_path_direction(
    distinct_sources: int, distinct_targets: int, stats: IndexStatistics
) -> str:
    """``"forward"`` or ``"backward"``: which side of a fully-bound path
    check the batched search should start from.

    The estimated total work is (number of distinct seed endpoints) x
    (branching factor on that side); out-degree and in-degree come from
    the statistics snapshot, so a graph with fat reverse fan-in (many
    edges into few atoms) prefers forward search and vice versa.
    """
    forward_branch = max(stats.average_out_degree(), 1.0)
    backward_branch = max(stats.average_in_degree(), 1.0)
    forward_cost = distinct_sources * forward_branch
    backward_cost = distinct_targets * backward_branch
    return "forward" if forward_cost <= backward_cost else "backward"


def shared_not_variables(negation: NotCond, positives: Sequence[Condition]) -> FrozenSet[str]:
    """Variables of a negation that also occur in positive conditions.

    These must be bound before the negation is checked; the rest are
    existentially quantified inside it.
    """
    outside: Set[str] = set()
    for condition in positives:
        if condition is not negation and not isinstance(condition, NotCond):
            outside |= condition.variables()
    return frozenset(negation.variables() & outside)


def estimate_cost(
    condition: Condition,
    bound: Set[str],
    stats: IndexStatistics,
    positives: Sequence[Condition],
    use_indexes: bool = True,
    dedup_factors: Optional[DedupFactors] = None,
) -> float:
    """Estimated number of bindings this condition will produce per input
    binding, or ``inf`` when it is not ready.

    ``dedup_factors`` scales the *probe* cost of generating conditions by
    the learned distinct-key ratio: a condition whose bound keys repeat
    across the frontier is nearly free to re-probe in block mode, so its
    effective cost approaches the per-distinct-key cost.
    """
    cost = _raw_cost(condition, bound, stats, positives, use_indexes)
    if dedup_factors and cost not in (_FILTER_COST, _NOT_READY):
        factor = significant_dedup_factor(dedup_factors.get(condition))
        if factor is not None:
            # never below the filter floor: every row is still visited
            cost = max(_FILTER_COST + cost * factor, _FILTER_COST)
    return cost


def _raw_cost(
    condition: Condition,
    bound: Set[str],
    stats: IndexStatistics,
    positives: Sequence[Condition],
    use_indexes: bool = True,
) -> float:
    if isinstance(condition, CollectionCond):
        if condition.var.name in bound:
            return _FILTER_COST
        size = stats.estimate_collection(condition.collection)
        if not use_indexes:
            return max(size, stats.node_count)
        return max(size, 1)
    if isinstance(condition, PredicateCond):
        return _FILTER_COST if condition.var.name in bound else _NOT_READY
    if isinstance(condition, ComparisonCond):
        left_bound = not isinstance(condition.left, Var) or condition.left.name in bound
        right_bound = not isinstance(condition.right, Var) or condition.right.name in bound
        if left_bound and right_bound:
            return _FILTER_COST
        if condition.op == "=" and (left_bound or right_bound):
            return 1.0
        return _NOT_READY
    if isinstance(condition, NotCond):
        needed = shared_not_variables(condition, positives)
        if needed <= bound:
            return 2.0
        return _NOT_READY
    if isinstance(condition, EdgeCond):
        return _edge_cost(condition, bound, stats, use_indexes)
    if isinstance(condition, PathCond):
        return _path_cost(condition, bound, stats)
    raise StruqlEvaluationError(f"unknown condition type: {condition!r}")


def _edge_cost(
    condition: EdgeCond, bound: Set[str], stats: IndexStatistics, use_indexes: bool
) -> float:
    src_bound = condition.source.name in bound
    tgt_bound = not isinstance(condition.target, Var) or condition.target.name in bound
    label_known = isinstance(condition.label, str) or condition.label.name in bound
    if not use_indexes:
        # a scan examines every edge regardless of what is bound
        scan = max(stats.edge_count, 1)
        if src_bound and tgt_bound and label_known:
            return scan * 0.5
        return float(scan)
    if src_bound and tgt_bound and label_known:
        return _FILTER_COST + 0.1  # has_edge lookup
    degree = max(stats.average_out_degree(), 1.0)
    if src_bound:
        return degree
    if tgt_bound:
        # reverse value-index lookup; with a known label the classic
        # extent/distinct-values estimate applies
        if isinstance(condition.label, str):
            return max(float(stats.estimate_value_lookup(condition.label)), 1.0)
        return max(float(stats.estimate_value_lookup()), 1.0)
    if label_known and isinstance(condition.label, str):
        return max(stats.estimate_label_extent(condition.label), 1)
    return max(stats.estimate_any_label_extent(), 1)


def _path_cost(condition: PathCond, bound: Set[str], stats: IndexStatistics) -> float:
    src_bound = condition.source.name in bound
    tgt_bound = not isinstance(condition.target, Var) or condition.target.name in bound
    reachable = max(stats.average_out_degree(), 1.0) ** 2
    if src_bound and tgt_bound:
        return 1.5
    if src_bound or tgt_bound:
        return min(reachable, float(max(stats.node_count, 1)))
    return float(max(stats.node_count, 1)) * reachable


def order_conditions(
    conditions: Sequence[Condition],
    initially_bound: FrozenSet[str],
    stats: IndexStatistics,
    use_indexes: bool = True,
    dedup_factors: Optional[DedupFactors] = None,
) -> List[Condition]:
    """Greedy cost-ordered plan: cheapest ready condition first.

    Raises :class:`StruqlEvaluationError` if some condition can never
    become ready (e.g. an order comparison over variables no generator
    binds).
    """
    remaining = list(conditions)
    bound: Set[str] = set(initially_bound)
    ordered: List[Condition] = []
    while remaining:
        best_index = -1
        best_cost = _NOT_READY
        for index, condition in enumerate(remaining):
            cost = estimate_cost(
                condition, bound, stats, conditions, use_indexes, dedup_factors
            )
            if cost < best_cost:
                best_cost = cost
                best_index = index
        if best_index < 0:
            stuck = ", ".join(str(c) for c in remaining)
            raise StruqlEvaluationError(
                f"cannot order conditions; unbindable variables in: {stuck}"
            )
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= _binds(chosen, bound)
    return ordered


def _binds(condition: Condition, bound: Set[str]) -> Set[str]:
    """Variables a condition binds when executed with ``bound`` available."""
    if isinstance(condition, NotCond):
        return set()
    if isinstance(condition, ComparisonCond):
        if condition.op != "=":
            return set()
        newly: Set[str] = set()
        if isinstance(condition.left, Var) and condition.left.name not in bound:
            newly.add(condition.left.name)
        if isinstance(condition.right, Var) and condition.right.name not in bound:
            newly.add(condition.right.name)
        return newly
    return set(condition.variables())
