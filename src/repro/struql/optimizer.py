"""Condition ordering for STRUQL where-clauses.

"As in traditional query processing, a query is first translated by the
query optimizer into an efficient physical-operation tree" (paper section
2.1).  Our physical plan is an *ordering* of the where-clause conditions:
evaluation is a pipelined index-nested-loop join, so the dominant cost
decision is which condition extends the bindings next.

The planner is greedy: starting from the initially-bound variables, it
repeatedly picks the ready condition with the lowest estimated extension
cardinality, using :class:`~repro.repository.indexes.IndexStatistics`
snapshots.  Filters (predicates, comparisons with all variables bound,
negations) cost less than one and therefore run as early as they are
applicable -- classic selection push-down.

A condition is *ready* when the variables it needs bound are bound:

* negations need their variables that are shared with positive
  conditions (purely-inner variables are existential inside the not);
* order comparisons (``< <= > >=``) need both sides;
* ``=`` needs at least one side (it can bind the other);
* predicates need their argument;
* edge, path and collection conditions are always ready (they can
  generate), they just cost more when unbound.

The same estimates serve the naive mode (``use_indexes=False``) with
scan costs, which experiment E5 uses as the ablation baseline.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from ..errors import StruqlEvaluationError
from ..repository.indexes import IndexStatistics
from .ast import (
    CollectionCond,
    ComparisonCond,
    Condition,
    EdgeCond,
    NotCond,
    PathCond,
    PredicateCond,
    Var,
)

#: Cost assigned to pure filters -- always preferred once ready.
_FILTER_COST = 0.25
_NOT_READY = float("inf")


def shared_not_variables(negation: NotCond, positives: Sequence[Condition]) -> FrozenSet[str]:
    """Variables of a negation that also occur in positive conditions.

    These must be bound before the negation is checked; the rest are
    existentially quantified inside it.
    """
    outside: Set[str] = set()
    for condition in positives:
        if condition is not negation and not isinstance(condition, NotCond):
            outside |= condition.variables()
    return frozenset(negation.variables() & outside)


def estimate_cost(
    condition: Condition,
    bound: Set[str],
    stats: IndexStatistics,
    positives: Sequence[Condition],
    use_indexes: bool = True,
) -> float:
    """Estimated number of bindings this condition will produce per input
    binding, or ``inf`` when it is not ready."""
    if isinstance(condition, CollectionCond):
        if condition.var.name in bound:
            return _FILTER_COST
        size = stats.estimate_collection(condition.collection)
        if not use_indexes:
            return max(size, stats.node_count)
        return max(size, 1)
    if isinstance(condition, PredicateCond):
        return _FILTER_COST if condition.var.name in bound else _NOT_READY
    if isinstance(condition, ComparisonCond):
        left_bound = not isinstance(condition.left, Var) or condition.left.name in bound
        right_bound = not isinstance(condition.right, Var) or condition.right.name in bound
        if left_bound and right_bound:
            return _FILTER_COST
        if condition.op == "=" and (left_bound or right_bound):
            return 1.0
        return _NOT_READY
    if isinstance(condition, NotCond):
        needed = shared_not_variables(condition, positives)
        if needed <= bound:
            return 2.0
        return _NOT_READY
    if isinstance(condition, EdgeCond):
        return _edge_cost(condition, bound, stats, use_indexes)
    if isinstance(condition, PathCond):
        return _path_cost(condition, bound, stats)
    raise StruqlEvaluationError(f"unknown condition type: {condition!r}")


def _edge_cost(
    condition: EdgeCond, bound: Set[str], stats: IndexStatistics, use_indexes: bool
) -> float:
    src_bound = condition.source.name in bound
    tgt_bound = not isinstance(condition.target, Var) or condition.target.name in bound
    label_known = isinstance(condition.label, str) or condition.label.name in bound
    if not use_indexes:
        # a scan examines every edge regardless of what is bound
        scan = max(stats.edge_count, 1)
        if src_bound and tgt_bound and label_known:
            return scan * 0.5
        return float(scan)
    if src_bound and tgt_bound and label_known:
        return _FILTER_COST + 0.1  # has_edge lookup
    degree = max(stats.average_out_degree(), 1.0)
    if src_bound:
        return degree
    if tgt_bound:
        # reverse value-index lookup; with a known label the classic
        # extent/distinct-values estimate applies
        if isinstance(condition.label, str):
            return max(float(stats.estimate_value_lookup(condition.label)), 1.0)
        return max(float(stats.estimate_value_lookup()), 1.0)
    if label_known and isinstance(condition.label, str):
        return max(stats.estimate_label_extent(condition.label), 1)
    return max(stats.estimate_any_label_extent(), 1)


def _path_cost(condition: PathCond, bound: Set[str], stats: IndexStatistics) -> float:
    src_bound = condition.source.name in bound
    tgt_bound = not isinstance(condition.target, Var) or condition.target.name in bound
    reachable = max(stats.average_out_degree(), 1.0) ** 2
    if src_bound and tgt_bound:
        return 1.5
    if src_bound or tgt_bound:
        return min(reachable, float(max(stats.node_count, 1)))
    return float(max(stats.node_count, 1)) * reachable


def order_conditions(
    conditions: Sequence[Condition],
    initially_bound: FrozenSet[str],
    stats: IndexStatistics,
    use_indexes: bool = True,
) -> List[Condition]:
    """Greedy cost-ordered plan: cheapest ready condition first.

    Raises :class:`StruqlEvaluationError` if some condition can never
    become ready (e.g. an order comparison over variables no generator
    binds).
    """
    remaining = list(conditions)
    bound: Set[str] = set(initially_bound)
    ordered: List[Condition] = []
    while remaining:
        best_index = -1
        best_cost = _NOT_READY
        for index, condition in enumerate(remaining):
            cost = estimate_cost(condition, bound, stats, conditions, use_indexes)
            if cost < best_cost:
                best_cost = cost
                best_index = index
        if best_index < 0:
            stuck = ", ".join(str(c) for c in remaining)
            raise StruqlEvaluationError(
                f"cannot order conditions; unbindable variables in: {stuck}"
            )
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= _binds(chosen, bound)
    return ordered


def _binds(condition: Condition, bound: Set[str]) -> Set[str]:
    """Variables a condition binds when executed with ``bound`` available."""
    if isinstance(condition, NotCond):
        return set()
    if isinstance(condition, ComparisonCond):
        if condition.op != "=":
            return set()
        newly: Set[str] = set()
        if isinstance(condition.left, Var) and condition.left.name not in bound:
            newly.add(condition.left.name)
        if isinstance(condition.right, Var) and condition.right.name not in bound:
            newly.add(condition.right.name)
        return newly
    return set(condition.variables())
