"""Recursive-descent parser for STRUQL.

Concrete syntax (see the paper's Fig. 3 for the style)::

    where  Publications(x), x -> "year" -> y, not(isImageFile(x))
    create AbstractPage(x), PaperPresentation(x)
    link   AbstractsPage() -> "Abstract" -> AbstractPage(x),
           PaperPresentation(x) -> l -> v
    collect Pubs(x)
    {
      where x -> "category" -> c
      create CategoryPage(c)
      link   CategoryPage(c) -> "Paper" -> PaperPresentation(x)
    }

Notes on disambiguation:

* ``Name(x)`` in a where clause is a *predicate* condition when ``Name``
  is a registered object predicate, else a *collection* condition.
* Between arrows, a double-quoted string is a single-edge label constant,
  a bare identifier is an arc variable (single edge, label bound) unless
  it is a registered label predicate, ``*`` alone is "any path", and any
  composite expression (``.``, ``|``, ``*``-postfix, parentheses,
  ``true``) is a regular path expression.  This follows section 2.2:
  ``x -> R -> y`` vs. ``x -> L -> y``.
* A program is a sequence of queries; each query is a run of clauses
  (``where``/``create``/``link``/``collect`` in any order, each at most
  once) followed by zero or more ``{ ... }`` nested blocks.

Blocks are named ``Q1, Q2, ...`` in depth-first document order; those
names label site-schema edges (the paper's Fig. 7).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

from ..errors import StruqlSemanticError, StruqlSyntaxError
from ..graph import Atom, AtomType
from . import builtins
from .ast import (
    Alternation,
    AnyLabel,
    CollectClause,
    CollectionCond,
    ComparisonCond,
    Concat,
    Condition,
    Const,
    EdgeCond,
    LabelIs,
    LabelPredicate,
    LinkClause,
    NotCond,
    PathCond,
    PathExpr,
    PredicateCond,
    Program,
    Query,
    SkolemTerm,
    Star,
    Term,
    Var,
    any_path,
)
from .lexer import Token, tokenize

_CLAUSE_KEYWORDS = ("where", "create", "link", "collect")


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._index = 0
        self._block_counter = 0

    # ---------------------------------------------------------------- #
    # token plumbing

    def _peek(self, ahead: int = 0) -> Optional[Token]:
        index = self._index + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _last_position(self) -> Tuple[int, int]:
        """Line/column of the most recently consumed token (for errors at
        end of input, which otherwise have no position to report)."""
        if 0 < self._index <= len(self._tokens):
            token = self._tokens[self._index - 1]
            return token.line, token.column
        return 0, 0

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            line, column = self._last_position()
            raise StruqlSyntaxError("unexpected end of query", line, column)
        self._index += 1
        return token

    def _match(self, kind: str, text: str = "") -> Optional[Token]:
        token = self._peek()
        if token is None or token.kind != kind or (text and token.text != text):
            return None
        self._index += 1
        return token

    def _expect(self, kind: str, text: str = "") -> Token:
        token = self._peek()
        if token is None:
            line, column = self._last_position()
            raise StruqlSyntaxError(
                f"expected {text or kind!r}, got end of query", line, column
            )
        if token.kind != kind or (text and token.text != text):
            raise StruqlSyntaxError(
                f"expected {text or kind!r}, got {token.text!r}", token.line, token.column
            )
        self._index += 1
        return token

    @property
    def _exhausted(self) -> bool:
        return self._peek() is None

    # ---------------------------------------------------------------- #
    # program / query / block

    def parse_program(self) -> Program:
        queries: List[Query] = []
        while not self._exhausted:
            queries.append(self._parse_query())
        if not queries:
            raise StruqlSyntaxError("empty query text")
        return Program(queries=queries)

    def _parse_query(self) -> Query:
        """One query: clauses in canonical order, then nested blocks.

        Clause order is ``where``, ``create``, ``link``, ``collect``, each
        optional, each at most once.  A clause keyword that would be out
        of order *ends* the current query and begins the next one; this
        is how a multi-query program needs no explicit separator.
        """
        self._block_counter += 1
        query = Query(name=f"Q{self._block_counter}")
        progress = -1
        saw_any = False
        while True:
            token = self._peek()
            if token is None or token.kind != "ident" or token.text not in _CLAUSE_KEYWORDS:
                break
            rank = _CLAUSE_KEYWORDS.index(token.text)
            if rank <= progress:
                break  # next query begins
            progress = rank
            saw_any = True
            keyword = self._next().text
            if keyword == "where":
                query.where = self._parse_condition_list()
            elif keyword == "create":
                query.create = self._parse_separated(self._parse_skolem_term)
            elif keyword == "link":
                query.link = self._parse_separated(self._parse_link_clause)
            else:
                query.collect = self._parse_separated(self._parse_collect_clause)
        if not saw_any:
            token = self._peek()
            where = token.text if token else "end of query"
            raise StruqlSyntaxError(
                f"expected a clause keyword, got {where!r}",
                token.line if token else 0,
                token.column if token else 0,
            )
        while self._match("punct", "{"):
            query.blocks.append(self._parse_query())
            self._expect("punct", "}")
        return query

    def _parse_separated(self, parse_one) -> List:
        items = [parse_one()]
        while self._match("punct", ","):
            items.append(parse_one())
        return items

    # ---------------------------------------------------------------- #
    # where-clause conditions

    def _parse_condition_list(self) -> List[Condition]:
        return self._parse_separated(self._parse_condition)

    def _parse_condition(self) -> Condition:
        """Parse one condition and stamp it with its source span."""
        token = self._peek()
        condition = self._parse_condition_inner()
        if token is not None and not condition.line:
            object.__setattr__(condition, "line", token.line)
            object.__setattr__(condition, "column", token.column)
        return condition

    def _parse_condition_inner(self) -> Condition:
        token = self._peek()
        if token is None:
            line, column = self._last_position()
            raise StruqlSyntaxError(
                "expected a condition, got end of query", line, column
            )
        if token.kind == "ident" and token.text == "not":
            return self._parse_not()
        follower = self._peek(1)
        if (
            token.kind in ("ident", "string")
            and follower is not None
            and follower.kind == "punct"
            and follower.text == "("
        ):
            return self._parse_membership_or_predicate()
        left = self._parse_term()
        if self._match("arrow"):
            return self._parse_edge_or_path(left, token)
        op = self._peek()
        if op is not None and op.kind == "op":
            self._next()
            right = self._parse_term()
            return ComparisonCond(left=left, op=op.text, right=right)
        raise StruqlSyntaxError(
            f"expected '->' or a comparison after {token.text!r}", token.line, token.column
        )

    def _parse_not(self) -> Condition:
        self._expect("ident", "not")
        self._expect("punct", "(")
        inner = [self._parse_condition()]
        while self._match("punct", ","):
            inner.append(self._parse_condition())
        self._expect("punct", ")")
        return NotCond(inner=tuple(inner))

    def _parse_membership_or_predicate(self) -> Condition:
        name = self._next()  # ident, or string for quoted collection names
        self._expect("punct", "(")
        var_token = self._expect("ident")
        self._expect("punct", ")")
        var = Var(var_token.text)
        if name.kind == "ident" and builtins.is_object_predicate(name.text):
            return PredicateCond(name=name.text, var=var)
        return CollectionCond(collection=name.text, var=var)

    def _parse_edge_or_path(self, source: Term, start: Token) -> Condition:
        if not isinstance(source, Var):
            raise StruqlSyntaxError(
                "edge source must be a variable", start.line, start.column
            )
        label_or_path = self._parse_path_expression()
        self._expect("arrow")
        target = self._parse_term()
        simple = self._as_single_edge(label_or_path)
        if simple is not None:
            return EdgeCond(source=source, label=simple, target=target)
        return PathCond(source=source, path=label_or_path, target=target)

    def _as_single_edge(self, path: PathExpr) -> Optional[Union[str, Var]]:
        """Recognize x -> L -> y (arc variable) and x -> "label" -> y."""
        if isinstance(path, LabelIs):
            return path.label
        if isinstance(path, LabelPredicate) and not builtins.is_label_predicate(path.name):
            return Var(path.name)
        return None

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "ident":
            if token.text == "true":
                return Const(Atom(AtomType.BOOLEAN, True))
            if token.text == "false":
                return Const(Atom(AtomType.BOOLEAN, False))
            return Var(token.text)
        if token.kind == "string":
            return Const(Atom(AtomType.STRING, token.text))
        if token.kind == "number":
            if "." in token.text:
                return Const(Atom(AtomType.FLOAT, float(token.text)))
            return Const(Atom(AtomType.INTEGER, int(token.text)))
        raise StruqlSyntaxError(
            f"expected a variable or constant, got {token.text!r}", token.line, token.column
        )

    # ---------------------------------------------------------------- #
    # regular path expressions:  path ::= concat ('|' concat)*
    #                            concat ::= starred ('.' starred)*
    #                            starred ::= primary '*'*
    #                            primary ::= '(' path ')' | STRING | 'true'
    #                                      | IDENT | '*'

    def _parse_path_expression(self) -> PathExpr:
        options = [self._parse_path_concat()]
        while self._match("punct", "|"):
            options.append(self._parse_path_concat())
        if len(options) == 1:
            return options[0]
        return Alternation(options=tuple(options))

    def _parse_path_concat(self) -> PathExpr:
        parts = [self._parse_path_starred()]
        while self._match("punct", "."):
            parts.append(self._parse_path_starred())
        if len(parts) == 1:
            return parts[0]
        return Concat(parts=tuple(parts))

    def _parse_path_starred(self) -> PathExpr:
        expr = self._parse_path_primary()
        while self._match("punct", "*"):
            expr = Star(inner=expr)
        return expr

    def _parse_path_primary(self) -> PathExpr:
        token = self._next()
        if token.kind == "punct" and token.text == "(":
            inner = self._parse_path_expression()
            self._expect("punct", ")")
            return inner
        if token.kind == "string":
            return LabelIs(label=token.text)
        if token.kind == "punct" and token.text == "*":
            return any_path()
        if token.kind == "ident":
            if token.text == "true":
                return AnyLabel()
            return LabelPredicate(name=token.text)
        raise StruqlSyntaxError(
            f"expected a path expression, got {token.text!r}", token.line, token.column
        )

    # ---------------------------------------------------------------- #
    # construction clauses

    def _parse_skolem_term(self) -> SkolemTerm:
        name = self._expect("ident")
        self._expect("punct", "(")
        args: List[Term] = []
        if not self._match("punct", ")"):
            args.append(self._parse_skolem_arg())
            while self._match("punct", ","):
                args.append(self._parse_skolem_arg())
            self._expect("punct", ")")
        return SkolemTerm(
            function=name.text,
            args=tuple(args),
            line=name.line,
            column=name.column,
        )

    def _parse_skolem_arg(self) -> Term:
        token = self._peek()
        follower = self._peek(1)
        if (
            token is not None
            and token.kind == "ident"
            and follower is not None
            and follower.kind == "punct"
            and follower.text == "("
        ):
            raise StruqlSyntaxError(
                "nested Skolem terms are not supported as arguments",
                token.line,
                token.column,
            )
        return self._parse_term()

    def _parse_node_ref(self) -> Union[SkolemTerm, Var]:
        token = self._peek()
        follower = self._peek(1)
        if (
            token is not None
            and token.kind == "ident"
            and follower is not None
            and follower.kind == "punct"
            and follower.text == "("
        ):
            return self._parse_skolem_term()
        term = self._parse_term()
        if not isinstance(term, Var):
            line, column = self._last_position()
            raise StruqlSyntaxError(
                f"expected a node reference, got {term}", line, column
            )
        return term

    def _parse_link_clause(self) -> LinkClause:
        start = self._peek()
        source = self._parse_node_ref()
        self._expect("arrow")
        label_token = self._next()
        label: Union[str, Var]
        if label_token.kind == "string":
            label = label_token.text
        elif label_token.kind == "ident":
            label = Var(label_token.text)
        else:
            raise StruqlSyntaxError(
                f"expected an edge label, got {label_token.text!r}",
                label_token.line,
                label_token.column,
            )
        self._expect("arrow")
        target = self._parse_link_target()
        return LinkClause(
            source=source,
            label=label,
            target=target,
            line=start.line if start else 0,
            column=start.column if start else 0,
        )

    def _parse_link_target(self) -> Union[SkolemTerm, Var, Const]:
        token = self._peek()
        follower = self._peek(1)
        if (
            token is not None
            and token.kind == "ident"
            and follower is not None
            and follower.kind == "punct"
            and follower.text == "("
        ):
            return self._parse_skolem_term()
        return self._parse_term()

    def _parse_collect_clause(self) -> CollectClause:
        name = self._expect("ident")
        self._expect("punct", "(")
        node = self._parse_node_ref()
        self._expect("punct", ")")
        return CollectClause(
            collection=name.text,
            node=node,
            line=name.line,
            column=name.column,
        )


# -------------------------------------------------------------------- #
# public API


def parse(text: str) -> Program:
    """Parse STRUQL text into a :class:`~repro.struql.ast.Program`.

    The program may contain several queries; each is validated with
    :func:`validate_query` against its inherited variable scope.
    """
    program = _Parser(text).parse_program()
    program.source_text = text
    for query in program.queries:
        validate_query(query, inherited=frozenset())
    return program


def parse_query(text: str) -> Query:
    """Parse text expected to contain exactly one query."""
    program = parse(text)
    if len(program.queries) != 1:
        raise StruqlSyntaxError(
            f"expected exactly one query, found {len(program.queries)}"
        )
    return program.queries[0]


def validate_query(query: Query, inherited: frozenset) -> None:
    """Static well-formedness checks (paper section 2.2 requirements).

    * construction clauses may only use variables bound by this block's
      where clause or an ancestor's;
    * link sources must be Skolem terms or variables (variables are
      checked at run time to denote new nodes);
    * arc variables used as link labels must be bound.
    """
    scope = set(inherited) | set(query.where_variables())
    for created in query.create:
        _check_vars(created.variables(), scope, f"create {created}", created)
    for link in query.link:
        _check_vars(link.variables(), scope, f"link {link}", link)
    for collect in query.collect:
        _check_vars(collect.variables(), scope, f"collect {collect}", collect)
    for block in query.blocks:
        validate_query(block, inherited=frozenset(scope))


def _check_vars(used: frozenset, scope: Set[str], context: str, clause=None) -> None:
    unbound = sorted(used - scope)
    if unbound:
        line = getattr(clause, "line", 0)
        column = getattr(clause, "column", 0)
        raise StruqlSemanticError(
            f"unbound variable(s) {', '.join(unbound)} in {context}",
            line,
            column,
        )
