"""Evaluation of regular path expressions over labeled graphs.

STRUQL's ``x -> R -> y`` asks for a path from ``x`` to ``y`` whose label
sequence matches the regular path expression ``R``.  Regular path
expressions generalize regular expressions: the alphabet is not fixed --
leaves are *predicates* over edge labels (string equality, ``true``, or a
registered named predicate), per section 2.2 of the paper.

Implementation: Thompson-construct an NFA whose transitions carry label
predicates, then search the product of graph x NFA breadth first with a
visited set, which handles cycles in both the data and the expression
(``Star``).  The empty path is matched when the start state is accepting
-- so ``*`` (any path) relates every node to itself, which the paper's
TextOnly example relies on ("all nodes q reachable from the root p,
*including p itself*").

Five entry points serve the evaluator's binding orders:

* :func:`targets_from` -- source bound, enumerate targets;
* :func:`sources_to` -- target bound, enumerate sources (runs the
  reversed automaton over the reverse adjacency index);
* :func:`path_exists` -- both bound, early-exit check;
* :func:`targets_from_many` / :func:`sources_to_many` -- the block
  evaluator's batched variants: one product-automaton BFS seeded with
  every distinct frontier endpoint at once, states tagged by origin so
  per-origin results are *identical* (including discovery order) to the
  single-source functions, while the ``(state set, label) -> next
  states`` step computation is shared across all origins.

The backward automaton is no longer re-Thompson-constructed from
:func:`reverse_expr`: :meth:`NFA.reversed` structurally reverses the
forward NFA (flip every transition and epsilon, swap start/accept) and
caches the result on the instance.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import StruqlEvaluationError
from ..graph import Graph, Oid, Target
from ..resilience.deadline import current_deadline
from . import builtins
from .ast import Alternation, AnyLabel, Concat, LabelIs, LabelPredicate, PathExpr, Star

LabelTest = Callable[[str], bool]


class NFA:
    """A nondeterministic finite automaton over label predicates.

    States are integers.  ``transitions[state]`` lists ``(test, next)``
    pairs; ``epsilons[state]`` lists epsilon-successors.  One start state,
    one accept state (Thompson construction guarantees this shape).
    """

    def __init__(self) -> None:
        self.transitions: Dict[int, List[Tuple[LabelTest, int]]] = {}
        self.epsilons: Dict[int, List[int]] = {}
        self.start = 0
        self.accept = 0
        self._state_count = 0
        self._reversed: Optional["NFA"] = None

    def new_state(self) -> int:
        state = self._state_count
        self._state_count += 1
        self.transitions.setdefault(state, [])
        self.epsilons.setdefault(state, [])
        return state

    def add_transition(self, source: int, test: LabelTest, target: int) -> None:
        self.transitions[source].append((test, target))

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilons[source].append(target)

    def closure(self, states: FrozenSet[int]) -> FrozenSet[int]:
        """Epsilon-closure of a state set."""
        seen: Set[int] = set(states)
        queue = list(states)
        while queue:
            state = queue.pop()
            for nxt in self.epsilons.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return frozenset(seen)

    def step(self, states: FrozenSet[int], label: str) -> FrozenSet[int]:
        """States reachable by consuming one edge labeled ``label``."""
        out: Set[int] = set()
        for state in states:
            for test, nxt in self.transitions.get(state, ()):
                if test(label):
                    out.add(nxt)
        return self.closure(frozenset(out))

    def accepts_in(self, states: FrozenSet[int]) -> bool:
        return self.accept in states

    @property
    def initial(self) -> FrozenSet[int]:
        return self.closure(frozenset({self.start}))

    def reversed(self) -> "NFA":
        """The structural reversal of this automaton, computed once.

        Every transition and epsilon is flipped and start/accept are
        swapped; the label predicates are shared with the forward NFA.
        The reversal accepts exactly the reversed label sequences, so
        running it over the reverse adjacency index answers
        :func:`sources_to` without Thompson-constructing
        :func:`reverse_expr` a second time.
        """
        if self._reversed is not None:
            return self._reversed
        mirror = NFA()
        mirror._state_count = self._state_count
        for state in range(self._state_count):
            mirror.transitions.setdefault(state, [])
            mirror.epsilons.setdefault(state, [])
        for source, pairs in self.transitions.items():
            for test, target in pairs:
                mirror.add_transition(target, test, source)
        for source, targets in self.epsilons.items():
            for target in targets:
                mirror.add_epsilon(target, source)
        mirror.start = self.accept
        mirror.accept = self.start
        self._reversed = mirror
        return mirror


#: Memoized exact-label tests: one closure per distinct label string,
#: shared by every compiled NFA (they were rebuilt per compile before).
_ANY_LABEL_TEST: LabelTest = lambda label: True
_LABEL_IS_TESTS: Dict[str, LabelTest] = {}


def _label_is_test(wanted: str) -> LabelTest:
    test = _LABEL_IS_TESTS.get(wanted)
    if test is None:
        test = _LABEL_IS_TESTS[wanted] = lambda label: label == wanted
        if len(_LABEL_IS_TESTS) > 65536:  # unbounded-growth backstop
            _LABEL_IS_TESTS.clear()
            _LABEL_IS_TESTS[wanted] = test
    return test


def _leaf_test(expr: PathExpr) -> LabelTest:
    if isinstance(expr, LabelIs):
        return _label_is_test(expr.label)
    if isinstance(expr, AnyLabel):
        return _ANY_LABEL_TEST
    if isinstance(expr, LabelPredicate):
        name = expr.name

        def test(label: str) -> bool:
            fn = builtins.label_predicate(name)
            if fn is None:
                raise StruqlEvaluationError(
                    f"unknown label predicate {name!r} in path expression"
                )
            return fn(label)

        return test
    raise StruqlEvaluationError(f"not a leaf path expression: {expr!r}")


def compile_path(expr: PathExpr) -> NFA:
    """Thompson-construct an NFA for a regular path expression."""
    nfa = NFA()

    def build(node: PathExpr) -> Tuple[int, int]:
        if isinstance(node, Concat):
            first_start, previous_end = build(node.parts[0])
            for part in node.parts[1:]:
                part_start, part_end = build(part)
                nfa.add_epsilon(previous_end, part_start)
                previous_end = part_end
            return first_start, previous_end
        if isinstance(node, Alternation):
            start, end = nfa.new_state(), nfa.new_state()
            for option in node.options:
                option_start, option_end = build(option)
                nfa.add_epsilon(start, option_start)
                nfa.add_epsilon(option_end, end)
            return start, end
        if isinstance(node, Star):
            start, end = nfa.new_state(), nfa.new_state()
            inner_start, inner_end = build(node.inner)
            nfa.add_epsilon(start, inner_start)
            nfa.add_epsilon(inner_end, inner_start)
            nfa.add_epsilon(start, end)
            nfa.add_epsilon(inner_end, end)
            return start, end
        start, end = nfa.new_state(), nfa.new_state()
        nfa.add_transition(start, _leaf_test(node), end)
        return start, end

    nfa.start, nfa.accept = build(expr)
    return nfa


def reverse_expr(expr: PathExpr) -> PathExpr:
    """The reversal of a regular path expression (concatenations flipped)."""
    if isinstance(expr, Concat):
        return Concat(parts=tuple(reverse_expr(p) for p in reversed(expr.parts)))
    if isinstance(expr, Alternation):
        return Alternation(options=tuple(reverse_expr(o) for o in expr.options))
    if isinstance(expr, Star):
        return Star(inner=reverse_expr(expr.inner))
    return expr


def targets_from(graph: Graph, nfa: NFA, source: Oid) -> List[Target]:
    """All objects reachable from ``source`` along a matching path.

    Returns nodes and atoms; includes ``source`` itself when the empty
    path matches.  Deterministic order (BFS discovery order).
    """
    if not graph.has_node(source):
        return []
    results: Dict[Target, None] = {}
    start_states = nfa.initial
    visited: Set[Tuple[Target, FrozenSet[int]]] = {(source, start_states)}
    queue: deque = deque([(source, start_states)])
    if nfa.accepts_in(start_states):
        results[source] = None
    deadline = current_deadline()
    while queue:
        if deadline is not None:
            deadline.tick("paths.targets_from")
        obj, states = queue.popleft()
        if not isinstance(obj, Oid):
            continue
        for label, target in graph.out_edges(obj):
            next_states = nfa.step(states, label)
            if not next_states:
                continue
            key = (target, next_states)
            if key in visited:
                continue
            visited.add(key)
            if nfa.accepts_in(next_states) and target not in results:
                results[target] = None
            queue.append((target, next_states))
    return list(results)


def sources_to(graph: Graph, reversed_nfa: NFA, target: Target) -> List[Oid]:
    """All source nodes with a matching path to ``target``.

    ``reversed_nfa`` must be the compilation of :func:`reverse_expr` of
    the original expression; the search walks the reverse adjacency index.
    """
    results: Dict[Oid, None] = {}
    start_states = reversed_nfa.initial
    visited: Set[Tuple[Target, FrozenSet[int]]] = {(target, start_states)}
    queue: deque = deque([(target, start_states)])
    if reversed_nfa.accepts_in(start_states) and isinstance(target, Oid):
        results[target] = None
    deadline = current_deadline()
    while queue:
        if deadline is not None:
            deadline.tick("paths.sources_to")
        obj, states = queue.popleft()
        for source, label in graph.in_edges(obj):
            next_states = reversed_nfa.step(states, label)
            if not next_states:
                continue
            key = (source, next_states)
            if key in visited:
                continue
            visited.add(key)
            if reversed_nfa.accepts_in(next_states) and source not in results:
                results[source] = None
            queue.append((source, next_states))
    return list(results)


def targets_from_many(
    graph: Graph, nfa: NFA, sources: Sequence[Oid]
) -> Dict[Oid, Tuple[Target, ...]]:
    """Batched :func:`targets_from`: one BFS over the product automaton
    seeded with every distinct source at once.

    Product states are tagged with their origin, so per-origin results
    (and their discovery order) are exactly what the single-source
    search yields -- but the ``(state set, label) -> next states``
    computation, the dominant per-edge cost, is memoized once for the
    whole batch instead of once per source.
    """
    results: Dict[Oid, Dict[Target, None]] = {}
    start_states = nfa.initial
    accept = nfa.accept
    starts_accepting = accept in start_states
    step_memo: Dict[Tuple[FrozenSet[int], str], FrozenSet[int]] = {}
    visited: Set[Tuple[Oid, Target, FrozenSet[int]]] = set()
    queue: deque = deque()
    for source in sources:
        if source in results:
            continue
        found: Dict[Target, None] = {}
        results[source] = found
        if not graph.has_node(source):
            continue
        visited.add((source, source, start_states))
        queue.append((source, source, start_states))
        if starts_accepting:
            found[source] = None
    step = nfa.step
    deadline = current_deadline()
    while queue:
        if deadline is not None:
            deadline.tick("paths.targets_from_many")
        origin, obj, states = queue.popleft()
        if not isinstance(obj, Oid):
            continue
        for label, target in graph.out_edges(obj):
            step_key = (states, label)
            next_states = step_memo.get(step_key)
            if next_states is None:
                next_states = step(states, label)
                step_memo[step_key] = next_states
            if not next_states:
                continue
            key = (origin, target, next_states)
            if key in visited:
                continue
            visited.add(key)
            found = results[origin]
            if accept in next_states and target not in found:
                found[target] = None
            queue.append((origin, target, next_states))
    return {source: tuple(found) for source, found in results.items()}


def sources_to_many(
    graph: Graph, reversed_nfa: NFA, targets: Iterable[Target]
) -> Dict[Target, Tuple[Oid, ...]]:
    """Batched :func:`sources_to`: one reverse BFS seeded with every
    distinct target at once, origin-tagged like :func:`targets_from_many`."""
    results: Dict[Target, Dict[Oid, None]] = {}
    start_states = reversed_nfa.initial
    accept = reversed_nfa.accept
    starts_accepting = accept in start_states
    step_memo: Dict[Tuple[FrozenSet[int], str], FrozenSet[int]] = {}
    visited: Set[Tuple[Target, Target, FrozenSet[int]]] = set()
    queue: deque = deque()
    for target in targets:
        if target in results:
            continue
        found: Dict[Oid, None] = {}
        results[target] = found
        visited.add((target, target, start_states))
        queue.append((target, target, start_states))
        if starts_accepting and isinstance(target, Oid):
            found[target] = None
    step = reversed_nfa.step
    deadline = current_deadline()
    while queue:
        if deadline is not None:
            deadline.tick("paths.sources_to_many")
        origin, obj, states = queue.popleft()
        for source, label in graph.in_edges(obj):
            step_key = (states, label)
            next_states = step_memo.get(step_key)
            if next_states is None:
                next_states = step(states, label)
                step_memo[step_key] = next_states
            if not next_states:
                continue
            key = (origin, source, next_states)
            if key in visited:
                continue
            visited.add(key)
            found = results[origin]
            if accept in next_states and source not in found:
                found[source] = None
            queue.append((origin, source, next_states))
    return {target: tuple(found) for target, found in results.items()}


def path_exists(graph: Graph, nfa: NFA, source: Oid, target: Target) -> bool:
    """Early-exit check: is there a matching path from source to target?"""
    if not graph.has_node(source):
        return False
    start_states = nfa.initial
    if nfa.accepts_in(start_states) and source == target:
        return True
    visited: Set[Tuple[Target, FrozenSet[int]]] = {(source, start_states)}
    queue: deque = deque([(source, start_states)])
    deadline = current_deadline()
    while queue:
        if deadline is not None:
            deadline.tick("paths.path_exists")
        obj, states = queue.popleft()
        if not isinstance(obj, Oid):
            continue
        for label, next_target in graph.out_edges(obj):
            next_states = nfa.step(states, label)
            if not next_states:
                continue
            if next_target == target and nfa.accepts_in(next_states):
                return True
            key = (next_target, next_states)
            if key in visited:
                continue
            visited.add(key)
            queue.append((next_target, next_states))
    return False
