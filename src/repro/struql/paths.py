"""Evaluation of regular path expressions over labeled graphs.

STRUQL's ``x -> R -> y`` asks for a path from ``x`` to ``y`` whose label
sequence matches the regular path expression ``R``.  Regular path
expressions generalize regular expressions: the alphabet is not fixed --
leaves are *predicates* over edge labels (string equality, ``true``, or a
registered named predicate), per section 2.2 of the paper.

Implementation: Thompson-construct an NFA whose transitions carry label
predicates, then search the product of graph x NFA breadth first with a
visited set, which handles cycles in both the data and the expression
(``Star``).  The empty path is matched when the start state is accepting
-- so ``*`` (any path) relates every node to itself, which the paper's
TextOnly example relies on ("all nodes q reachable from the root p,
*including p itself*").

Three entry points serve the evaluator's binding orders:

* :func:`targets_from` -- source bound, enumerate targets;
* :func:`sources_to` -- target bound, enumerate sources (runs the
  reversed expression over the reverse adjacency index);
* :func:`path_exists` -- both bound, early-exit check.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import StruqlEvaluationError
from ..graph import Graph, Oid, Target
from . import builtins
from .ast import Alternation, AnyLabel, Concat, LabelIs, LabelPredicate, PathExpr, Star

LabelTest = Callable[[str], bool]


class NFA:
    """A nondeterministic finite automaton over label predicates.

    States are integers.  ``transitions[state]`` lists ``(test, next)``
    pairs; ``epsilons[state]`` lists epsilon-successors.  One start state,
    one accept state (Thompson construction guarantees this shape).
    """

    def __init__(self) -> None:
        self.transitions: Dict[int, List[Tuple[LabelTest, int]]] = {}
        self.epsilons: Dict[int, List[int]] = {}
        self.start = 0
        self.accept = 0
        self._state_count = 0

    def new_state(self) -> int:
        state = self._state_count
        self._state_count += 1
        self.transitions.setdefault(state, [])
        self.epsilons.setdefault(state, [])
        return state

    def add_transition(self, source: int, test: LabelTest, target: int) -> None:
        self.transitions[source].append((test, target))

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilons[source].append(target)

    def closure(self, states: FrozenSet[int]) -> FrozenSet[int]:
        """Epsilon-closure of a state set."""
        seen: Set[int] = set(states)
        queue = list(states)
        while queue:
            state = queue.pop()
            for nxt in self.epsilons.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return frozenset(seen)

    def step(self, states: FrozenSet[int], label: str) -> FrozenSet[int]:
        """States reachable by consuming one edge labeled ``label``."""
        out: Set[int] = set()
        for state in states:
            for test, nxt in self.transitions.get(state, ()):
                if test(label):
                    out.add(nxt)
        return self.closure(frozenset(out))

    def accepts_in(self, states: FrozenSet[int]) -> bool:
        return self.accept in states

    @property
    def initial(self) -> FrozenSet[int]:
        return self.closure(frozenset({self.start}))


def _leaf_test(expr: PathExpr) -> LabelTest:
    if isinstance(expr, LabelIs):
        wanted = expr.label
        return lambda label: label == wanted
    if isinstance(expr, AnyLabel):
        return lambda label: True
    if isinstance(expr, LabelPredicate):
        name = expr.name

        def test(label: str) -> bool:
            fn = builtins.label_predicate(name)
            if fn is None:
                raise StruqlEvaluationError(
                    f"unknown label predicate {name!r} in path expression"
                )
            return fn(label)

        return test
    raise StruqlEvaluationError(f"not a leaf path expression: {expr!r}")


def compile_path(expr: PathExpr) -> NFA:
    """Thompson-construct an NFA for a regular path expression."""
    nfa = NFA()

    def build(node: PathExpr) -> Tuple[int, int]:
        if isinstance(node, Concat):
            first_start, previous_end = build(node.parts[0])
            for part in node.parts[1:]:
                part_start, part_end = build(part)
                nfa.add_epsilon(previous_end, part_start)
                previous_end = part_end
            return first_start, previous_end
        if isinstance(node, Alternation):
            start, end = nfa.new_state(), nfa.new_state()
            for option in node.options:
                option_start, option_end = build(option)
                nfa.add_epsilon(start, option_start)
                nfa.add_epsilon(option_end, end)
            return start, end
        if isinstance(node, Star):
            start, end = nfa.new_state(), nfa.new_state()
            inner_start, inner_end = build(node.inner)
            nfa.add_epsilon(start, inner_start)
            nfa.add_epsilon(inner_end, inner_start)
            nfa.add_epsilon(start, end)
            nfa.add_epsilon(inner_end, end)
            return start, end
        start, end = nfa.new_state(), nfa.new_state()
        nfa.add_transition(start, _leaf_test(node), end)
        return start, end

    nfa.start, nfa.accept = build(expr)
    return nfa


def reverse_expr(expr: PathExpr) -> PathExpr:
    """The reversal of a regular path expression (concatenations flipped)."""
    if isinstance(expr, Concat):
        return Concat(parts=tuple(reverse_expr(p) for p in reversed(expr.parts)))
    if isinstance(expr, Alternation):
        return Alternation(options=tuple(reverse_expr(o) for o in expr.options))
    if isinstance(expr, Star):
        return Star(inner=reverse_expr(expr.inner))
    return expr


def targets_from(graph: Graph, nfa: NFA, source: Oid) -> List[Target]:
    """All objects reachable from ``source`` along a matching path.

    Returns nodes and atoms; includes ``source`` itself when the empty
    path matches.  Deterministic order (BFS discovery order).
    """
    if not graph.has_node(source):
        return []
    results: Dict[Target, None] = {}
    start_states = nfa.initial
    visited: Set[Tuple[Target, FrozenSet[int]]] = {(source, start_states)}
    queue: deque = deque([(source, start_states)])
    if nfa.accepts_in(start_states):
        results[source] = None
    while queue:
        obj, states = queue.popleft()
        if not isinstance(obj, Oid):
            continue
        for label, target in graph.out_edges(obj):
            next_states = nfa.step(states, label)
            if not next_states:
                continue
            key = (target, next_states)
            if key in visited:
                continue
            visited.add(key)
            if nfa.accepts_in(next_states) and target not in results:
                results[target] = None
            queue.append((target, next_states))
    return list(results)


def sources_to(graph: Graph, reversed_nfa: NFA, target: Target) -> List[Oid]:
    """All source nodes with a matching path to ``target``.

    ``reversed_nfa`` must be the compilation of :func:`reverse_expr` of
    the original expression; the search walks the reverse adjacency index.
    """
    results: Dict[Oid, None] = {}
    start_states = reversed_nfa.initial
    visited: Set[Tuple[Target, FrozenSet[int]]] = {(target, start_states)}
    queue: deque = deque([(target, start_states)])
    if reversed_nfa.accepts_in(start_states) and isinstance(target, Oid):
        results[target] = None
    while queue:
        obj, states = queue.popleft()
        for source, label in graph.in_edges(obj):
            next_states = reversed_nfa.step(states, label)
            if not next_states:
                continue
            key = (source, next_states)
            if key in visited:
                continue
            visited.add(key)
            if reversed_nfa.accepts_in(next_states) and source not in results:
                results[source] = None
            queue.append((source, next_states))
    return list(results)


def path_exists(graph: Graph, nfa: NFA, source: Oid, target: Target) -> bool:
    """Early-exit check: is there a matching path from source to target?"""
    if not graph.has_node(source):
        return False
    start_states = nfa.initial
    if nfa.accepts_in(start_states) and source == target:
        return True
    visited: Set[Tuple[Target, FrozenSet[int]]] = {(source, start_states)}
    queue: deque = deque([(source, start_states)])
    while queue:
        obj, states = queue.popleft()
        if not isinstance(obj, Oid):
            continue
        for label, next_target in graph.out_edges(obj):
            next_states = nfa.step(states, label)
            if not next_states:
                continue
            if next_target == target and nfa.accepts_in(next_states):
                return True
            key = (next_target, next_states)
            if key in visited:
                continue
            visited.add(key)
            queue.append((next_target, next_states))
    return False
