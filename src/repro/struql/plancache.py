"""Compiled-plan and NFA caches for STRUQL evaluation.

The paper's performance story (section 2.1) is that full indexing makes
query evaluation cheap; what it leaves implicit is that the *planning*
work around evaluation -- ordering the where-clause conditions against
index statistics and Thompson-compiling regular path expressions -- is
pure overhead when the same query runs again over an unchanged graph,
which is exactly the click-time server's workload.

:class:`PlanCache` amortizes both:

* **ordered-condition plans**, keyed by the *identity* of the condition
  objects, the initially-bound variable set, the index mode, and the
  statistics fingerprint ``(graph identity, graph epoch)``.  The epoch in
  the key is the invalidation rule: any graph mutation bumps the epoch,
  so stale plans can never be served -- they simply age out of the LRU.
* **compiled path NFAs**, keyed by path-expression identity.  NFAs
  depend only on the expression, never on the graph, so they are shared
  across engines, graphs, and epochs.  The backward NFA is the forward
  NFA's structural reversal (:meth:`~repro.struql.paths.NFA.reversed`),
  not a second Thompson construction.
* **path reachability memos**, keyed by ``(NFA identity, graph
  identity, graph epoch, endpoint)``.  The block evaluator's batched
  path search records, per distinct endpoint, the full answer of one
  product-automaton BFS; any later row -- in the same query or a later
  warm query over the unchanged graph -- reuses it.  The epoch in the
  key is the invalidation rule, exactly as for plans.

Cache values pin the AST objects they were keyed by, which keeps their
``id()`` values from being recycled while an entry is alive (the ABA
hazard of identity keys).  Entries are evicted LRU once ``max_entries``
is exceeded.  A process-wide cache (:func:`global_plan_cache`) is the
default for every :class:`~repro.struql.eval.QueryEngine`; engines and
benchmarks that need isolation pass their own instance.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .ast import Condition, PathExpr
from .paths import NFA, compile_path, reverse_expr

#: A plan-cache key: (condition identities, bound vars, index mode,
#: statistics fingerprint, learned-dedup-factor signature).
PlanKey = Tuple[
    Tuple[int, ...], FrozenSet[str], bool, Tuple[int, int], Tuple[Tuple[int, float], ...]
]

#: A path-memo key: (NFA identity, graph identity, graph epoch, endpoint).
PathMemoKey = Tuple[int, int, int, object]

#: A compiled-SQL key: (ordered condition identities, frame variable
#: names, statistics fingerprint, pushdown cost cutoff).
SqlPlanKey = Tuple[Tuple[int, ...], Tuple[str, ...], Tuple[int, int], float]


class PlanCache:
    """An LRU cache of ordered-condition plans, compiled path NFAs, and
    per-endpoint path reachability results."""

    def __init__(self, max_entries: int = 2048, max_path_entries: int = 16384) -> None:
        self.max_entries = max_entries
        self.max_path_entries = max_path_entries
        self.hits = 0
        self.misses = 0
        self.path_hits = 0
        self.path_misses = 0
        self.sql_hits = 0
        self.sql_misses = 0
        self._lock = Lock()
        # value pins the condition objects the key's ids refer to
        self._plans: "OrderedDict[PlanKey, Tuple[Tuple[Condition, ...], List[Condition]]]" = (
            OrderedDict()
        )
        # value pins the path expression the key's id refers to
        self._nfas: "OrderedDict[int, Tuple[PathExpr, NFA, NFA]]" = OrderedDict()
        # value pins the NFA the key's id refers to (ABA guard, as above)
        self._path_memo: "OrderedDict[PathMemoKey, Tuple[NFA, Tuple[object, ...]]]" = (
            OrderedDict()
        )
        # value pins the ordered conditions; the payload is the compiled
        # pushdown plan, or None when compilation declined the prefix
        self._sql: "OrderedDict[SqlPlanKey, Tuple[Tuple[Condition, ...], object]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------ #
    # ordered-condition plans

    @staticmethod
    def plan_key(
        conditions: Sequence[Condition],
        bound: FrozenSet[str],
        use_indexes: bool,
        fingerprint: Tuple[int, int],
        dedup_signature: Tuple[Tuple[int, float], ...] = (),
    ) -> PlanKey:
        return (
            tuple(map(id, conditions)),
            bound,
            use_indexes,
            fingerprint,
            dedup_signature,
        )

    def get_plan(self, key: PlanKey) -> Optional[List[Condition]]:
        """The cached plan for ``key``, or None.  Counts hits/misses."""
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return entry[1]

    def put_plan(
        self, key: PlanKey, conditions: Sequence[Condition], ordered: List[Condition]
    ) -> None:
        with self._lock:
            self._plans[key] = (tuple(conditions), ordered)
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)

    # ------------------------------------------------------------ #
    # compiled SQL pushdown plans

    @staticmethod
    def sql_key(
        ordered: Sequence[Condition],
        frame_names: Sequence[str],
        fingerprint: Tuple[int, int],
        cutoff: float,
    ) -> SqlPlanKey:
        return (tuple(map(id, ordered)), tuple(frame_names), fingerprint, cutoff)

    def get_sql(self, key: SqlPlanKey) -> Optional[Tuple[object]]:
        """The cached compiled-SQL entry for ``key`` wrapped in a 1-tuple,
        or None on a miss.  The wrapped payload may itself be None (a
        cached "this prefix does not push down" verdict)."""
        with self._lock:
            entry = self._sql.get(key)
            if entry is None:
                self.sql_misses += 1
                return None
            self._sql.move_to_end(key)
            self.sql_hits += 1
            return (entry[1],)

    def put_sql(
        self, key: SqlPlanKey, ordered: Sequence[Condition], plan: object
    ) -> None:
        with self._lock:
            self._sql[key] = (tuple(ordered), plan)
            self._sql.move_to_end(key)
            while len(self._sql) > self.max_entries:
                self._sql.popitem(last=False)

    # ------------------------------------------------------------ #
    # compiled path NFAs

    def nfas(self, path: PathExpr) -> Tuple[NFA, NFA]:
        """The (forward, backward) NFAs of a path expression, compiled
        once per distinct expression object."""
        key = id(path)
        with self._lock:
            entry = self._nfas.get(key)
            if entry is not None and entry[0] is path:
                self._nfas.move_to_end(key)
                return entry[1], entry[2]
        forward = compile_path(path)
        backward = forward.reversed()
        with self._lock:
            self._nfas[key] = (path, forward, backward)
            self._nfas.move_to_end(key)
            while len(self._nfas) > self.max_entries:
                self._nfas.popitem(last=False)
        return forward, backward

    # ------------------------------------------------------------ #
    # path reachability memo

    def path_memo_get(
        self, nfa: NFA, fingerprint: Tuple[int, int], endpoint: object
    ) -> Optional[Tuple[object, ...]]:
        """The memoized reachability answer for one endpoint under one
        automaton and graph epoch, or ``None``.  Counts hits/misses."""
        key = (id(nfa), fingerprint[0], fingerprint[1], endpoint)
        with self._lock:
            entry = self._path_memo.get(key)
            if entry is None or entry[0] is not nfa:
                self.path_misses += 1
                return None
            self._path_memo.move_to_end(key)
            self.path_hits += 1
            return entry[1]

    def path_memo_put(
        self,
        nfa: NFA,
        fingerprint: Tuple[int, int],
        endpoint: object,
        reached: Tuple[object, ...],
    ) -> None:
        key = (id(nfa), fingerprint[0], fingerprint[1], endpoint)
        with self._lock:
            self._path_memo[key] = (nfa, reached)
            self._path_memo.move_to_end(key)
            while len(self._path_memo) > self.max_path_entries:
                self._path_memo.popitem(last=False)

    # ------------------------------------------------------------ #

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._nfas.clear()
            self._path_memo.clear()
            self._sql.clear()
            self.hits = 0
            self.misses = 0
            self.path_hits = 0
            self.path_misses = 0
            self.sql_hits = 0
            self.sql_misses = 0

    def stats(self) -> Dict[str, int]:
        """Counters for diagnostics (``repro stats`` prints these)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "plans": len(self._plans),
                "nfas": len(self._nfas),
                "path_hits": self.path_hits,
                "path_misses": self.path_misses,
                "path_entries": len(self._path_memo),
                "sql_hits": self.sql_hits,
                "sql_misses": self.sql_misses,
                "sql_plans": len(self._sql),
            }


_GLOBAL_PLAN_CACHE = PlanCache()


def global_plan_cache() -> PlanCache:
    """The process-wide plan cache every engine shares by default."""
    return _GLOBAL_PLAN_CACHE


def clear_plan_cache() -> None:
    """Drop every cached plan and NFA (tests and benchmarks)."""
    _GLOBAL_PLAN_CACHE.clear()
